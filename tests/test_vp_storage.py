"""Storage-cost model tests: the paper's hardware argument in numbers."""

import pytest

from repro.vp import (
    ContextPredictor,
    DynamicRVP,
    GabbayRegisterPredictor,
    LastValuePredictor,
    MemoryRenamingPredictor,
    NoPredictor,
    StaticRVP,
    StridePredictor,
)
from repro.vp.storage import estimate_storage


def test_rvp_is_counters_only():
    est = estimate_storage(DynamicRVP(entries=1024))
    assert est.value_bits == 0 and est.tag_bits == 0
    assert est.total_bits == 3 * 1024  # 384 bytes


def test_static_rvp_costs_nothing():
    assert estimate_storage(StaticRVP()).total_bits == 0
    assert estimate_storage(NoPredictor()).total_bits == 0


def test_gabbay_is_tiny():
    assert estimate_storage(GabbayRegisterPredictor()).total_bits == 3 * 64


def test_lvp_matches_paper_arithmetic():
    """The paper: a 2K-entry 64-bit value buffer is 16KB of values plus
    9-13KB of tags."""
    est = estimate_storage(LastValuePredictor(entries=2048))
    assert est.value_bits == 64 * 2048  # 16 KiB
    assert 9 * 1024 * 8 <= est.tag_bits + est.counter_bits <= 13 * 1024 * 8


def test_storage_ordering_matches_the_papers_cost_story():
    rvp = estimate_storage(DynamicRVP()).total_bits
    lvp = estimate_storage(LastValuePredictor()).total_bits
    stride = estimate_storage(StridePredictor()).total_bits
    context = estimate_storage(ContextPredictor()).total_bits
    memren = estimate_storage(MemoryRenamingPredictor()).total_bits
    # RVP is >20x cheaper than the cheapest buffer-based scheme...
    assert lvp > 20 * rvp
    # ...and the schemes the paper excluded are costlier still.
    assert stride > lvp and context > lvp and memren > lvp


def test_tagged_rvp_charges_tags():
    untagged = estimate_storage(DynamicRVP(entries=1024, tagged=False))
    tagged = estimate_storage(DynamicRVP(entries=1024, tagged=True))
    assert tagged.total_bits > untagged.total_bits
    assert tagged.tag_bits == (48 - 10) * 1024


def test_describe_is_readable():
    text = estimate_storage(LastValuePredictor()).describe()
    assert "KiB" in text and "values" in text


def test_unknown_predictor_rejected():
    class Mystery:
        pass

    with pytest.raises(ValueError, match="no storage model"):
        estimate_storage(Mystery())
