"""Tier-1 fuzz smoke: a fixed-seed 40-program campaign over all oracle
families.  Deterministic (fixed seed, no time/entropy inputs) and fast —
the full campaign budget is a few seconds; anything slower is a regression
in the harness itself."""

from __future__ import annotations

import time

import pytest

from repro.testing import ORACLE_FAMILIES, run_fuzz

SMOKE_SEED = 0
SMOKE_RUNS = 40


@pytest.mark.fuzz
def test_fuzz_smoke_fixed_seed_clean():
    started = time.monotonic()
    report = run_fuzz(seed=SMOKE_SEED, runs=SMOKE_RUNS)
    elapsed = time.monotonic() - started

    assert report.ok, [failure.to_dict() for failure in report.failures]
    assert report.checked == SMOKE_RUNS
    assert report.invalid == 0
    assert list(report.oracles) == list(ORACLE_FAMILIES)
    assert elapsed < 10.0, f"smoke campaign took {elapsed:.1f}s (budget 10s)"


@pytest.mark.fuzz
def test_fuzz_report_shape():
    report = run_fuzz(seed=SMOKE_SEED, runs=2)
    payload = report.to_dict()
    assert payload["ok"] is True
    assert payload["seed"] == SMOKE_SEED
    assert payload["runs"] == 2
    assert payload["failures"] == []
    assert set(payload) >= {"ok", "seed", "runs", "oracles", "checked", "invalid", "failures"}


@pytest.mark.fuzz
def test_fuzz_unknown_oracle_rejected():
    with pytest.raises(ValueError, match="unknown oracle"):
        run_fuzz(seed=0, runs=1, oracles=["not-an-oracle"])
