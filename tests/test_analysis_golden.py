"""Golden: verifier-approved pass outputs execute identically everywhere.

For two workloads, the realloc and stride/insertion outputs must (a) pass
the verifier with their pass-supplied context and (b) produce byte-identical
traces and final state under the eager ``run`` path and the streaming
``iter_run`` path — transformation plus verification must not perturb
execution semantics.
"""

from __future__ import annotations

import pytest

from repro.analysis.verifier import verify_program
from repro.compiler import apply_stride_pass, reallocate
from repro.core.session import SimSession
from repro.profiling import StrideProfile
from repro.sim import FunctionalSimulator
from repro.workloads.suite import make_workload

BUDGET = 3_000
TRAIN_BUDGET = 20_000
WORKLOADS = ["m88ksim", "hydro2d"]

_session = SimSession()


def realloc_output(name):
    base = _session.workload(name).program
    artifacts = _session.train_artifacts(name, 1.0, TRAIN_BUDGET)
    lists = _session.profile_lists(name, 1.0, TRAIN_BUDGET, 0.8, loads_only=False)
    program, report = reallocate(base, lists, artifacts.critical)
    return program, lists, report


def stride_output(name):
    workload = make_workload(name)
    trace = FunctionalSimulator(workload.program, memory=workload.memory("train")).run(
        max_instructions=TRAIN_BUDGET, collect_trace=True
    ).trace
    strides = StrideProfile.from_trace(trace).strided_pcs(0.9, loads_only=True)
    lists = _session.profile_lists(name, 1.0, TRAIN_BUDGET, 0.8, loads_only=True)
    program, new_lists, report = apply_stride_pass(workload.program, strides, lists)
    return program, new_lists, report


def assert_streaming_matches_eager(name, program):
    workload = make_workload(name)
    eager_sim = FunctionalSimulator(program, memory=workload.memory("ref"))
    eager = eager_sim.run(max_instructions=BUDGET, collect_trace=True)

    stream_sim = FunctionalSimulator(program, memory=workload.memory("ref"))
    streamed = list(stream_sim.iter_run(max_instructions=BUDGET))

    assert streamed == eager.trace
    assert stream_sim.last_result.instructions == eager.instructions
    assert stream_sim.last_result.halted == eager.halted
    assert stream_sim.state.pc == eager_sim.state.pc
    assert stream_sim.state.state_equal(eager_sim.state)


@pytest.mark.parametrize("name", WORKLOADS)
def test_realloc_output_verifies_and_runs_identically(name):
    program, lists, report = realloc_output(name)
    diags = verify_program(program, lists=lists, lvr_pcs=report.lvr_pcs)
    assert not any(d.is_error for d in diags), [str(d) for d in diags]
    assert_streaming_matches_eager(name, program)


@pytest.mark.parametrize("name", WORKLOADS)
def test_stride_output_verifies_and_runs_identically(name):
    program, lists, report = stride_output(name)
    diags = verify_program(program, lists=lists)
    assert not any(d.is_error for d in diags), [str(d) for d in diags]
    assert_streaming_matches_eager(name, program)


@pytest.mark.parametrize("name", WORKLOADS)
def test_realloc_output_matches_base_architectural_effect(name):
    """Reallocation renames registers but must not change control flow or
    memory traffic: instruction count, halt status, and the executed pc
    sequence all match the base program's run."""
    base = _session.workload(name).program
    program, _, _ = realloc_output(name)
    workload = make_workload(name)

    base_run = FunctionalSimulator(base, memory=workload.memory("ref")).run(
        max_instructions=BUDGET, collect_trace=True
    )
    new_run = FunctionalSimulator(program, memory=workload.memory("ref")).run(
        max_instructions=BUDGET, collect_trace=True
    )
    assert new_run.instructions == base_run.instructions
    assert new_run.halted == base_run.halted
    assert [r.pc for r in new_run.trace] == [r.pc for r in base_run.trace]
    assert [r.addr for r in new_run.trace] == [r.addr for r in base_run.trace]
