"""Last-value profiler tests."""

from repro.isa import assemble
from repro.profiling import ValueProfile
from repro.sim import Memory, run_program


def profile_of(text, memory=None):
    result = run_program(assemble(text), memory=memory, max_instructions=20_000, collect_trace=True)
    return ValueProfile.from_trace(result.trace)


def test_constant_site_fully_lv_predictable():
    profile = profile_of(
        """
        li r2, #10
    loop:
        add r1, r31, #5
        sub r2, r2, #1
        bne r2, loop
        halt
        """
    )
    site = profile.sites[1]
    assert site.count == 10 and site.lv_hits == 9
    assert abs(site.lv_rate() - 0.9) < 1e-9
    assert 1 in profile.predictable_pcs(threshold=0.85)


def test_changing_site_not_predictable():
    profile = profile_of(
        """
        li r2, #10
    loop:
        add r1, r2, #0
        sub r2, r2, #1
        bne r2, loop
        halt
        """
    )
    site = profile.sites[1]  # copies the (changing) counter
    assert site.lv_hits == 0
    assert site.distinct_cap == site.count - 1
    assert 1 not in profile.predictable_pcs(threshold=0.5)


def test_loads_only_selection():
    memory = Memory()
    memory.store(0x100, 9)
    profile = profile_of(
        """
        li r2, #12
    loop:
        ld r3, 0x100(r31)
        add r1, r31, #5
        sub r2, r2, #1
        bne r2, loop
        halt
        """,
        memory,
    )
    loads = profile.predictable_pcs(threshold=0.8, loads_only=True)
    everything = profile.predictable_pcs(threshold=0.8, loads_only=False)
    assert 1 in loads and 2 not in loads
    assert {1, 2} <= everything


def test_stores_and_branches_not_sites():
    profile = profile_of("li r1, #1\nst r1, 0x10(r31)\nbeq r31, end\nend: halt")
    ops = {site.op_name for site in profile.sites.values()}
    assert "st" not in ops and "beq" not in ops
