"""Program construction, CFG and natural-loop tests."""

import pytest

from repro.isa import Instruction, Procedure, Program, ProgramBuilder, R, opcode


def build_simple():
    b = ProgramBuilder("p")
    with b.procedure("main"):
        b.li(R[1], 3)
        b.label("loop")
        b.subi(R[1], R[1], 1)
        b.bne(R[1], "loop")
        b.halt()
    return b.build()


def test_pc_assignment_and_target_resolution():
    p = build_simple()
    assert [inst.pc for inst in p] == list(range(len(p)))
    bne = p[2]
    assert bne.target == "loop" and bne.target_pc == 1


def test_undefined_label_rejected():
    with pytest.raises(ValueError, match="undefined label"):
        Program([Instruction(op=opcode("br"), target="nowhere")], {})


def test_default_procedure_covers_everything():
    p = Program([Instruction(op=opcode("halt"))], {})
    assert p.procedures == (Procedure("main", 0, 1),)
    assert p.procedure_of(0).name == "main"


def test_overlapping_procedures_rejected():
    insts = [Instruction(op=opcode("halt")), Instruction(op=opcode("halt"))]
    with pytest.raises(ValueError, match="two procedures"):
        Program(insts, {}, procedures=[Procedure("a", 0, 2), Procedure("b", 1, 2)])


def test_uncovered_pc_rejected():
    insts = [Instruction(op=opcode("halt")), Instruction(op=opcode("halt"))]
    with pytest.raises(ValueError, match="not covered"):
        Program(insts, {}, procedures=[Procedure("a", 0, 1)])


def test_basic_blocks_split_at_branches_and_targets():
    p = build_simple()
    blocks = p.basic_blocks(p.procedures[0])
    starts = [blk.start for blk in blocks]
    assert starts == [0, 1, 3]
    # Fallthrough + branch-taken successors.
    loop_block = blocks[1]
    assert set(loop_block.successors) == {1, 3}


def test_single_loop_detection():
    p = build_simple()
    loops = p.loops(p.procedures[0])
    assert len(loops) == 1
    loop = loops[0]
    assert loop.header == 1 and loop.depth == 1
    assert 0 not in loop.body and 1 in loop.body and 2 in loop.body


def test_nested_loop_depths():
    b = ProgramBuilder("nested")
    with b.procedure("main"):
        b.li(R[1], 4)
        b.label("outer")
        b.li(R[2], 3)
        b.label("inner")
        b.subi(R[2], R[2], 1)
        b.bne(R[2], "inner")
        b.subi(R[1], R[1], 1)
        b.bne(R[1], "outer")
        b.halt()
    p = b.build()
    assert p.loop_depth(2) == 2  # inner body
    assert p.loop_depth(4) == 1  # outer body, outside inner
    assert p.loop_depth(6) == 0  # halt
    inner = p.innermost_loop(2)
    assert inner is not None and inner.depth == 2


def test_rewrite_preserves_structure():
    p = build_simple()
    q = p.rewrite(lambda inst: inst.rewrite_registers({R[1]: R[5]}), name="renamed")
    assert q.name == "renamed" and len(q) == len(p)
    assert q[0].dst == R[5] and q[2].src1 == R[5]
    assert q[2].target_pc == p[2].target_pc
    # Original untouched.
    assert p[0].dst == R[1]


def test_call_is_fallthrough_in_cfg():
    b = ProgramBuilder("withcall")
    with b.procedure("main"):
        b.jsr("callee")
        b.halt()
    with b.procedure("callee"):
        b.ret()
    p = b.build()
    blocks = p.basic_blocks(p.procedure("main"))
    assert blocks[0].successors == (1,)  # call falls through to halt
    callee_blocks = p.basic_blocks(p.procedure("callee"))
    assert callee_blocks[0].successors == ()  # ret exits


def test_render_marks_procedures():
    b = ProgramBuilder("two")
    with b.procedure("main"):
        b.jsr("f")
        b.halt()
    with b.procedure("f"):
        b.ret()
    text = b.build().render()
    assert ".proc main" in text and ".proc f" in text
