"""Value-stream generator tests (repro.workloads.data)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads import data


def rng(seed=0):
    return np.random.default_rng(seed)


def test_run_lengths_draws_from_pool():
    pool = [3, 7, 11]
    values = data.run_lengths(rng(), 500, pool, mean_run=4.0)
    assert len(values) == 500
    assert set(values) <= set(pool)
    # Mean run should be in the right ballpark.
    changes = sum(1 for a, b in zip(values, values[1:]) if a != b)
    mean_run = len(values) / max(1, changes + 1)
    assert 2.0 < mean_run < 9.0


def test_run_lengths_rejects_bad_mean():
    with pytest.raises(ValueError):
        data.run_lengths(rng(), 10, [1], mean_run=0.5)


def test_sparse_values_density():
    values = data.sparse_values(rng(), 5000, density=0.1)
    nonzero = sum(1 for v in values if v != 0)
    assert 0.06 < nonzero / 5000 < 0.15
    assert all(v >= 0 for v in values)


def test_sparse_values_custom_fill():
    values = data.sparse_values(rng(), 100, density=0.0, fill=7)
    assert values == [7] * 100


def test_sparse_values_rejects_bad_density():
    with pytest.raises(ValueError):
        data.sparse_values(rng(), 10, density=1.5)


def test_zipf_pool_skewed():
    indices = data.zipf_pool(rng(), 5000, pool_size=16, exponent=1.3)
    assert all(0 <= i < 16 for i in indices)
    counts = np.bincount(indices, minlength=16)
    assert counts[0] > counts[8] > 0  # head much hotter than tail


def test_correlated_copy_matches_source():
    source = list(range(100, 600))
    copy = data.correlated_copy(rng(), source, correlation=0.8)
    matches = sum(1 for a, b in zip(source, copy) if a == b)
    assert 0.7 < matches / len(source) <= 1.0
    with pytest.raises(ValueError):
        data.correlated_copy(rng(), source, correlation=-0.1)


def test_smooth_field_neighbours_usually_equal():
    field = data.smooth_field(rng(), 2000, levels=10, step_prob=0.1)
    equal = sum(1 for a, b in zip(field, field[1:]) if a == b)
    assert equal / len(field) > 0.75


def test_cons_heap_structure():
    base = 0x10000
    words, root = data.cons_heap(rng(), base, n_cells=400, n_atoms=400)
    assert len(words) == 800  # two words per cell
    assert root != 0 and (root - base) % 16 == 0
    # Walk the master list: cars are either aligned pointers or odd atoms.
    def word(addr):
        return words[(addr - base) // 8]

    seen = 0
    node = root
    while node and seen < 10_000:
        car, cdr = word(node), word(node + 8)
        assert car == 0 or car % 2 == 1 or (car - base) % 16 == 0
        node = cdr
        seen += 1
    assert seen > 3  # master chain has multiple roots


def test_cons_heap_atoms_run():
    words, _ = data.cons_heap(rng(), 0x1000, 600, 600, repeat_prob=0.95, nest_prob=0.0)
    cars = [words[2 * i] for i in range(600) if words[2 * i] % 2 == 1]
    equal = sum(1 for a, b in zip(cars, cars[1:]) if a == b)
    assert equal / max(1, len(cars)) > 0.6


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=1000))
def test_generators_deterministic_per_seed(seed):
    a = data.smooth_field(np.random.default_rng(seed), 100)
    b = data.smooth_field(np.random.default_rng(seed), 100)
    assert a == b
