"""Instruction-budget guards: strict-budget simulators and the stream cap.

A runaway program (or an over-budget trace source) must become a
*deterministic, classifiable* fault — the campaign taxonomy's fail-fast
path — instead of a silently truncated result or a hung worker."""

from __future__ import annotations

import pytest

from repro.runtime.errors import DETERMINISTIC, classify_failure
from repro.sim.functional import BudgetExceeded, FunctionalSimulator, SimulationError
from repro.uarch.stream import prepare_stream
from repro.vp.base import NoPredictor
from repro.workloads.suite import make_workload

#: Small enough that every workload's ref run overruns it.
TINY_BUDGET = 50


def _sim(engine: str, strict: bool) -> FunctionalSimulator:
    program, memory = make_workload("li").build("ref")
    return FunctionalSimulator(program, memory=memory, engine=engine, strict_budget=strict)


@pytest.mark.parametrize("engine", ["reference", "decoded"])
def test_default_budget_truncates(engine):
    result = _sim(engine, strict=False).run(max_instructions=TINY_BUDGET)
    assert result.instructions == TINY_BUDGET
    assert not result.halted


@pytest.mark.parametrize("engine", ["reference", "decoded"])
@pytest.mark.parametrize("collect_trace", [False, True])
def test_strict_budget_raises_in_both_engines(engine, collect_trace):
    with pytest.raises(BudgetExceeded, match=f"budget {TINY_BUDGET}"):
        _sim(engine, strict=True).run(
            max_instructions=TINY_BUDGET, collect_trace=collect_trace
        )


def test_strict_budget_streaming_path():
    sim = _sim("decoded", strict=True)
    seen = 0
    with pytest.raises(BudgetExceeded):
        for _ in sim.iter_run(max_instructions=TINY_BUDGET):
            seen += 1
    assert seen == TINY_BUDGET  # every in-budget record was still delivered


def test_strict_budget_silent_when_program_halts():
    # A budget comfortably past natural termination never fires the guard.
    program, memory = make_workload("li").build("ref")
    full = FunctionalSimulator(program, memory=memory).run(max_instructions=10_000_000)
    assert full.halted
    program, memory = make_workload("li").build("ref")
    strict = FunctionalSimulator(program, memory=memory, strict_budget=True)
    result = strict.run(max_instructions=full.instructions + 1)
    assert result.halted and result.instructions == full.instructions


def test_budget_exceeded_is_a_deterministic_simulator_fault():
    exc = BudgetExceeded("over budget")
    assert isinstance(exc, SimulationError)
    assert classify_failure(exc) == DETERMINISTIC


# ----------------------------------------------------------------------
# Per-lane budgets in the batched engine
# ----------------------------------------------------------------------
def test_batched_strict_budget_names_the_exhausted_lane():
    # Lane 0 gets room to halt naturally; lane 1 is starved.  The strict
    # guard must name lane 1 and report *that lane's* pc — which we pin by
    # running the same program/input scalar with the same tiny budget.
    program, _ = make_workload("li").build("ref")
    scalar = _sim("decoded", strict=False)
    scalar.run(max_instructions=TINY_BUDGET)
    expected_pc = scalar.state.pc

    from repro.sim.batched import run_batch

    workload = make_workload("li")
    memories = [workload.memory("ref"), workload.memory("ref")]
    with pytest.raises(
        BudgetExceeded,
        match=rf"budget {TINY_BUDGET}, pc {expected_pc}\) \[lane 1\]",
    ):
        run_batch(
            program, memories,
            max_instructions=[10_000_000, TINY_BUDGET],
            strict_budget=True,
        )


def test_batched_per_lane_budgets_retire_at_scalar_pcs():
    # Non-strict: each lane truncates independently at its own budget, at
    # exactly the pc the scalar decoded engine reaches under that budget.
    from repro.sim.batched import run_batch

    workload = make_workload("li")
    budgets = [TINY_BUDGET, 3 * TINY_BUDGET, 10_000_000]
    lanes = run_batch(
        workload.program,
        [workload.memory("ref") for _ in budgets],
        max_instructions=budgets,
    )
    for lane, budget in zip(lanes, budgets):
        scalar = FunctionalSimulator(
            workload.program, memory=workload.memory("ref"), engine="decoded"
        )
        result = scalar.run(max_instructions=budget)
        assert lane.instructions == result.instructions
        assert lane.halted == result.halted
        assert lane.state.pc == scalar.state.pc
        assert tuple(lane.state.int_regs) == tuple(scalar.state.int_regs)
    assert lanes[2].halted and not lanes[0].halted and not lanes[1].halted


# ----------------------------------------------------------------------
# JIT budget guard: mid-superinstruction exits
# ----------------------------------------------------------------------
@pytest.mark.parametrize("budget", [TINY_BUDGET, 137, 1000])
def test_jit_budget_exit_matches_decoded_state(budget):
    # A budget that lands mid-hot-block forces the JIT's guard to fall back
    # to single-instruction handlers; commit count, pc, and register state
    # must be indistinguishable from the decoded engine at the same budget.
    import repro.sim.jit as jit_tier

    old = jit_tier.JIT_THRESHOLD
    jit_tier.JIT_THRESHOLD = 1  # compile every block so the guard actually fires
    try:
        decoded = _sim("decoded", strict=False)
        dres = decoded.run(max_instructions=budget)
        jit = _sim("jit", strict=False)
        jres = jit.run(max_instructions=budget)
    finally:
        jit_tier.JIT_THRESHOLD = old
    assert jres.instructions == dres.instructions == budget
    assert jres.halted == dres.halted
    assert jit.state.pc == decoded.state.pc
    assert tuple(jit.state.int_regs) == tuple(decoded.state.int_regs)
    assert tuple(jit.state.fp_regs) == tuple(decoded.state.fp_regs)
    assert jit.memory._words == decoded.memory._words


def test_jit_strict_budget_raises_like_decoded():
    with pytest.raises(BudgetExceeded) as jit_exc:
        _sim("jit", strict=True).run(max_instructions=TINY_BUDGET)
    with pytest.raises(BudgetExceeded) as dec_exc:
        _sim("decoded", strict=True).run(max_instructions=TINY_BUDGET)
    assert str(jit_exc.value) == str(dec_exc.value)


def test_jit_default_budget_truncates():
    result = _sim("jit", strict=False).run(max_instructions=TINY_BUDGET)
    assert result.instructions == TINY_BUDGET
    assert not result.halted


def test_prepare_stream_entry_cap():
    program, memory = make_workload("li").build("ref")
    sim = FunctionalSimulator(program, memory=memory)
    trace = sim.run(max_instructions=200, collect_trace=True).trace
    assert prepare_stream(trace, NoPredictor()) is not None  # uncapped: fine
    assert len(prepare_stream(trace, NoPredictor(), max_entries=len(trace))) == len(trace)
    with pytest.raises(BudgetExceeded, match="stream budget exhausted"):
        prepare_stream(trace, NoPredictor(), max_entries=len(trace) - 1)
