"""Instruction-budget guards: strict-budget simulators and the stream cap.

A runaway program (or an over-budget trace source) must become a
*deterministic, classifiable* fault — the campaign taxonomy's fail-fast
path — instead of a silently truncated result or a hung worker."""

from __future__ import annotations

import pytest

from repro.runtime.errors import DETERMINISTIC, classify_failure
from repro.sim.functional import BudgetExceeded, FunctionalSimulator, SimulationError
from repro.uarch.stream import prepare_stream
from repro.vp.base import NoPredictor
from repro.workloads.suite import make_workload

#: Small enough that every workload's ref run overruns it.
TINY_BUDGET = 50


def _sim(engine: str, strict: bool) -> FunctionalSimulator:
    program, memory = make_workload("li").build("ref")
    return FunctionalSimulator(program, memory=memory, engine=engine, strict_budget=strict)


@pytest.mark.parametrize("engine", ["reference", "decoded"])
def test_default_budget_truncates(engine):
    result = _sim(engine, strict=False).run(max_instructions=TINY_BUDGET)
    assert result.instructions == TINY_BUDGET
    assert not result.halted


@pytest.mark.parametrize("engine", ["reference", "decoded"])
@pytest.mark.parametrize("collect_trace", [False, True])
def test_strict_budget_raises_in_both_engines(engine, collect_trace):
    with pytest.raises(BudgetExceeded, match=f"budget {TINY_BUDGET}"):
        _sim(engine, strict=True).run(
            max_instructions=TINY_BUDGET, collect_trace=collect_trace
        )


def test_strict_budget_streaming_path():
    sim = _sim("decoded", strict=True)
    seen = 0
    with pytest.raises(BudgetExceeded):
        for _ in sim.iter_run(max_instructions=TINY_BUDGET):
            seen += 1
    assert seen == TINY_BUDGET  # every in-budget record was still delivered


def test_strict_budget_silent_when_program_halts():
    # A budget comfortably past natural termination never fires the guard.
    program, memory = make_workload("li").build("ref")
    full = FunctionalSimulator(program, memory=memory).run(max_instructions=10_000_000)
    assert full.halted
    program, memory = make_workload("li").build("ref")
    strict = FunctionalSimulator(program, memory=memory, strict_budget=True)
    result = strict.run(max_instructions=full.instructions + 1)
    assert result.halted and result.instructions == full.instructions


def test_budget_exceeded_is_a_deterministic_simulator_fault():
    exc = BudgetExceeded("over budget")
    assert isinstance(exc, SimulationError)
    assert classify_failure(exc) == DETERMINISTIC


def test_prepare_stream_entry_cap():
    program, memory = make_workload("li").build("ref")
    sim = FunctionalSimulator(program, memory=memory)
    trace = sim.run(max_instructions=200, collect_trace=True).trace
    assert prepare_stream(trace, NoPredictor()) is not None  # uncapped: fine
    assert len(prepare_stream(trace, NoPredictor(), max_entries=len(trace))) == len(trace)
    with pytest.raises(BudgetExceeded, match="stream budget exhausted"):
        prepare_stream(trace, NoPredictor(), max_entries=len(trace) - 1)
