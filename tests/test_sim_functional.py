"""Functional simulator semantics tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import MASK64, ProgramBuilder, R, F, assemble
from repro.sim import FunctionalSimulator, Memory, SimulationError, run_program

from conftest import random_memory, random_program


def run_asm(text, memory=None, max_instructions=10_000):
    return run_program(assemble(text), memory=memory, max_instructions=max_instructions, collect_trace=True)


def test_alu_and_halt():
    res = run_asm("li r1, #6\nli r2, #7\nmul r3, r1, r2\nhalt")
    assert res.halted and res.state.read(R[3]) == 42


def test_load_store():
    res = run_asm("li r1, #123\nst r1, 0x100(r31)\nld r2, 0x100(r31)\nhalt")
    assert res.state.read(R[2]) == 123
    assert res.memory.load(0x100) == 123


def test_branch_taken_and_not_taken():
    res = run_asm(
        """
        li r1, #1
        beq r1, skip      ; not taken
        li r2, #10
    skip:
        li r3, #0
        beq r3, done      ; taken
        li r2, #99
    done:
        halt
        """
    )
    assert res.state.read(R[2]) == 10


def test_call_and_return():
    res = run_asm(
        """
    .proc main
    main:
        li  r16, #5
        jsr r26, double
        mov r7, r0
        halt
    .proc double
    double:
        add r0, r16, r16
        ret r26
        """
    )
    assert res.state.read(R[7]) == 10


def test_jsr_records_return_address():
    res = run_asm(".proc main\nmain:\n jsr r26, f\n halt\n.proc f\nf:\n ret r26")
    records = {r.pc: r for r in res.trace}
    assert records[0].result == 1  # return pc
    assert records[1].next_pc == 1  # ret jumps back


def test_trace_old_dest_captures_prior_value():
    res = run_asm("li r1, #5\nli r1, #5\nli r1, #9\nhalt")
    assert res.trace[0].old_dest == 0
    assert res.trace[1].old_dest == 5 and res.trace[1].register_value_reused
    assert res.trace[2].old_dest == 5 and not res.trace[2].register_value_reused


def test_zero_register_reads_zero_and_ignores_writes():
    res = run_asm("li r31, #7\nadd r1, r31, #3\nhalt")
    assert res.state.read(R[31]) == 0
    assert res.state.read(R[1]) == 3


def test_fp_file_separate_from_int():
    res = run_asm("li r1, #3\nfli f1, #9\nitof f2, r1\nftoi r2, f1\nhalt")
    assert res.state.read(F[2]) == 3
    assert res.state.read(R[2]) == 9


def test_max_instructions_truncates():
    res = run_asm("loop: br loop\nhalt", max_instructions=25)
    assert not res.halted and res.instructions == 25


def test_pc_out_of_range_raises():
    b = ProgramBuilder()
    b.li(R[1], 0)  # no halt: runs off the end
    with pytest.raises(SimulationError):
        run_program(b.build(), max_instructions=10)


def test_observers_see_every_record():
    seen = []
    sim = FunctionalSimulator(assemble("li r1, #1\nadd r1, r1, #1\nhalt"))
    sim.add_observer(lambda record, state: seen.append(record.pc))
    sim.run()
    assert seen == [0, 1, 2]


def test_store_value_recorded():
    res = run_asm("li r1, #9\nst r1, 0x80(r31)\nhalt")
    store = res.trace[1]
    assert store.store_value == 9 and store.addr == 0x80


def test_effective_address_uses_base_plus_offset():
    mem = Memory()
    mem.store(0x108, 77)
    res = run_asm("li r2, #0x100\nld r1, 8(r2)\nhalt", memory=mem)
    assert res.state.read(R[1]) == 77


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_random_programs_terminate_and_are_deterministic(seed):
    program = random_program(seed)
    r1 = run_program(program, memory=random_memory(seed), max_instructions=50_000)
    r2 = run_program(program, memory=random_memory(seed), max_instructions=50_000)
    assert r1.halted and r2.halted
    assert r1.instructions == r2.instructions
    assert r1.state.state_equal(r2.state)
    assert r1.memory == r2.memory


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_trace_is_architecturally_consistent(seed):
    """Replaying the trace's writes reproduces the final register file."""
    program = random_program(seed)
    result = run_program(program, memory=random_memory(seed), max_instructions=50_000, collect_trace=True)
    regs = {}
    for record in result.trace:
        dst = record.inst.writes
        if dst is not None and record.result is not None:
            assert record.old_dest == regs.get(dst, 0), record
            regs[dst] = record.result
    for reg, value in regs.items():
        assert result.state.read(reg) == value
