"""Opcode table and ALU semantics tests."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import MASK64, OPCODES, FuClass, OpKind, opcode, to_signed, to_unsigned

u64 = st.integers(min_value=0, max_value=MASK64)


def test_table_contains_core_opcodes():
    for name in ("add", "sub", "mul", "ld", "st", "beq", "br", "jsr", "ret", "halt", "rvp_ld", "rvp_fld"):
        assert name in OPCODES


def test_unknown_opcode_raises():
    with pytest.raises(KeyError):
        opcode("frobnicate")


def test_rvp_marked_flags():
    assert opcode("rvp_ld").rvp_marked and opcode("rvp_fld").rvp_marked
    assert not opcode("ld").rvp_marked
    assert opcode("rvp_fld").fp_dest


def test_kind_predicates():
    assert opcode("ld").is_load and opcode("ld").is_mem
    assert opcode("st").is_store and not opcode("st").is_load
    assert opcode("beq").is_control and opcode("jsr").is_control
    assert opcode("add").writes_dest and not opcode("st").writes_dest
    assert opcode("jsr").writes_dest  # link register


def test_fu_classes():
    assert opcode("fadd").fu is FuClass.FP
    assert opcode("add").fu is FuClass.INT
    assert opcode("ld").fu is FuClass.LDST
    assert opcode("halt").fu is FuClass.NONE


@given(u64, u64)
def test_add_sub_inverse(a, b):
    add = OPCODES["add"].alu_fn
    sub = OPCODES["sub"].alu_fn
    assert sub(add(a, b), b) == a


@given(u64, u64)
def test_alu_results_stay_in_domain(a, b):
    for name in ("add", "sub", "mul", "and", "or", "xor", "sll", "srl", "sra", "div", "rem"):
        result = OPCODES[name].alu_fn(a, b)
        assert 0 <= result <= MASK64, name


@given(u64)
def test_signed_conversion_roundtrip(a):
    assert to_unsigned(to_signed(a)) == a


def test_signed_interpretation():
    assert to_signed(MASK64) == -1
    assert to_signed(1 << 63) == -(1 << 63)
    assert to_signed(5) == 5


def test_comparisons_are_signed():
    cmplt = OPCODES["cmplt"].alu_fn
    minus_one = MASK64
    assert cmplt(minus_one, 0) == 1  # -1 < 0
    assert cmplt(0, minus_one) == 0
    cmpult = OPCODES["cmpult"].alu_fn
    assert cmpult(minus_one, 0) == 0  # unsigned: max > 0


def test_division_by_zero_yields_zero():
    assert OPCODES["div"].alu_fn(42, 0) == 0
    assert OPCODES["rem"].alu_fn(42, 0) == 0


def test_division_truncates_toward_zero():
    div = OPCODES["div"].alu_fn
    assert to_signed(div(to_unsigned(-7), 2)) == -3
    assert div(7, 2) == 3


def test_shift_amount_masked_to_six_bits():
    sll = OPCODES["sll"].alu_fn
    assert sll(1, 64) == 1  # 64 & 63 == 0
    assert sll(1, 65) == 2


def test_branch_conditions():
    assert OPCODES["beq"].cond_fn(0) and not OPCODES["beq"].cond_fn(1)
    assert OPCODES["bne"].cond_fn(1) and not OPCODES["bne"].cond_fn(0)
    assert OPCODES["blt"].cond_fn(MASK64)  # -1 < 0
    assert OPCODES["bge"].cond_fn(0)
    assert OPCODES["bgt"].cond_fn(1) and not OPCODES["bgt"].cond_fn(0)
    assert OPCODES["ble"].cond_fn(0)


def test_fp_ops_mirror_int_semantics():
    assert OPCODES["fadd"].alu_fn(3, 4) == 7
    assert OPCODES["fmul"].alu_fn(3, 4) == 12
    assert OPCODES["fadd"].fp_dest and not OPCODES["ftoi"].fp_dest
