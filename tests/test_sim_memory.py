"""Sparse memory model tests."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import MASK64
from repro.sim import Memory, WORD_BYTES

aligned = st.integers(min_value=0, max_value=1 << 30).map(lambda i: i * WORD_BYTES)
words = st.integers(min_value=0, max_value=MASK64)


def test_unwritten_reads_zero():
    assert Memory().load(0x1000) == 0


def test_store_load_roundtrip():
    m = Memory()
    m.store(0x1000, 42)
    assert m.load(0x1000) == 42


def test_unaligned_access_rejected():
    m = Memory()
    with pytest.raises(ValueError, match="unaligned"):
        m.load(0x1001)
    with pytest.raises(ValueError, match="unaligned"):
        m.store(0x1004, 1)


def test_values_wrap_to_64_bits():
    m = Memory()
    m.store(0x8, (1 << 64) + 5)
    assert m.load(0x8) == 5


def test_bulk_write_read():
    m = Memory()
    m.write_words(0x100, range(10))
    assert m.read_words(0x100, 10) == tuple(range(10))
    assert m.load(0x100 + 9 * 8) == 9


def test_copy_is_independent():
    m = Memory()
    m.store(0x8, 1)
    c = m.copy()
    c.store(0x8, 2)
    assert m.load(0x8) == 1 and c.load(0x8) == 2


def test_equality_ignores_explicit_zeros():
    a, b = Memory(), Memory()
    a.store(0x8, 0)
    assert a == b
    a.store(0x10, 7)
    assert a != b
    b.store(0x10, 7)
    assert a == b


def test_nonzero_words_iteration():
    m = Memory()
    m.write_words(0x40, [1, 0, 3])
    entries = dict(m.nonzero_words())
    assert entries[0x40] == 1 and entries[0x50] == 3


@given(st.dictionaries(aligned, words, max_size=20))
def test_memory_behaves_like_dict(model):
    m = Memory()
    for addr, value in model.items():
        m.store(addr, value)
    for addr, value in model.items():
        assert m.load(addr) == value


def test_word_index_fast_path_matches_checked_api():
    m = Memory()
    m.store(0x100, 5)
    assert m.load_word_index(0x100 >> 3) == 5
    m.store_word_index(2, 7)
    assert m.load(0x10) == 7
    assert m.load_word_index(999) == 0  # untouched words read as zero
