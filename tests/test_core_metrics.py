"""Unit tests for the counter/timer registry behind ``--profile``."""

from __future__ import annotations

import time

from repro.core.metrics import MetricsRegistry, get_metrics, reset_metrics


def test_counters_increment_and_read():
    m = MetricsRegistry()
    assert m.get("sim.runs") == 0
    m.inc("sim.runs")
    m.inc("sim.runs", 3)
    assert m.get("sim.runs") == 4


def test_timer_accumulates_wall_time():
    m = MetricsRegistry()
    with m.timer("sim.wall"):
        time.sleep(0.01)
    with m.timer("sim.wall"):
        pass
    assert m.seconds("sim.wall") >= 0.01
    snap = m.snapshot()
    assert snap["timers"]["sim.wall"]["count"] == 2
    assert snap["timers"]["sim.wall"]["seconds"] == m.seconds("sim.wall")
    assert snap["timers"]["sim.wall"]["mean_seconds"] == m.seconds("sim.wall") / 2


def test_timer_records_on_exception():
    m = MetricsRegistry()
    try:
        with m.timer("sim.wall"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert m.snapshot()["timers"]["sim.wall"]["count"] == 1


def test_snapshot_derived_rates():
    m = MetricsRegistry()
    m.inc("session.trace.hits", 3)
    m.inc("session.trace.misses", 1)
    m.inc("sim.instructions", 10_000)
    m.add_time("sim.wall", 2.0)
    snap = m.snapshot()
    assert snap["derived"]["session.trace.hit_rate"] == 0.75
    assert snap["derived"]["sim.instructions_per_sec"] == 5_000.0


def test_snapshot_without_activity_has_no_rates():
    snap = MetricsRegistry().snapshot()
    assert snap["counters"] == {}
    assert "session.trace.hit_rate" not in snap["derived"]
    assert "sim.instructions_per_sec" not in snap["derived"]


def test_reset_clears_everything():
    m = MetricsRegistry()
    m.inc("x")
    m.add_time("y", 1.0)
    m.reset()
    assert m.get("x") == 0
    assert m.seconds("y") == 0.0
    assert m.snapshot()["counters"] == {}


def test_global_registry_is_process_wide():
    assert get_metrics() is get_metrics()
    before = get_metrics().get("test.marker")
    get_metrics().inc("test.marker")
    assert get_metrics().get("test.marker") == before + 1


def test_sim_run_populates_global_metrics():
    from repro.sim import FunctionalSimulator
    from repro.workloads.suite import make_workload

    m = get_metrics()
    runs_before = m.get("sim.runs")
    insts_before = m.get("sim.instructions")
    workload = make_workload("li")
    result = FunctionalSimulator(workload.program, memory=workload.memory("ref")).run(
        max_instructions=1_000
    )
    assert m.get("sim.runs") == runs_before + 1
    assert m.get("sim.instructions") == insts_before + result.instructions
