"""Shared test fixtures and the random-program generator used by the
property-based tests.

:func:`random_program` builds structurally-valid programs (straight-line
arithmetic, memory traffic to a small address pool, and bounded counted
loops), guaranteeing termination — which lets hypothesis explore the
functional simulator, the compiler passes and the pipeline without
hand-written termination proofs.
"""

from __future__ import annotations

import random
from typing import List, Tuple

import pytest

from repro.isa import F, ProgramBuilder, R
from repro.isa.program import Program
from repro.sim import Memory

#: Registers the generator plays with (avoids special registers).
GEN_INT_REGS = [R[i] for i in (1, 2, 3, 4, 5, 6, 7, 8)]
GEN_FP_REGS = [F[i] for i in (1, 2, 3, 4, 5, 6)]
#: Small word-aligned address pool for generated loads/stores.
GEN_ADDRS = [0x2000 + 8 * i for i in range(16)]

_INT_OPS = ("add", "sub", "and", "or", "xor", "mul", "cmpeq", "cmplt", "sll", "srl")
_FP_OPS = ("fadd", "fsub", "fmul")


def random_program(seed: int, max_blocks: int = 4, max_ops: int = 10) -> Program:
    """A deterministic random, always-terminating program for ``seed``."""
    rng = random.Random(seed)
    b = ProgramBuilder(f"random_{seed}")
    with b.procedure("main"):
        # Seed some register values.
        for reg in GEN_INT_REGS[:4]:
            b.li(reg, rng.randrange(0, 1 << 16))
        for reg in GEN_FP_REGS[:3]:
            b.fli(reg, rng.randrange(0, 1 << 12))

        def emit_ops(count: int) -> None:
            for _ in range(count):
                kind = rng.random()
                if kind < 0.55:
                    op = rng.choice(_INT_OPS)
                    dst = rng.choice(GEN_INT_REGS)
                    a = rng.choice(GEN_INT_REGS)
                    if rng.random() < 0.5:
                        b.emit(op, dst=dst, src1=a, src2=rng.choice(GEN_INT_REGS))
                    else:
                        b.emit(op, dst=dst, src1=a, imm=rng.randrange(0, 64))
                elif kind < 0.7:
                    op = rng.choice(_FP_OPS)
                    b.emit(op, dst=rng.choice(GEN_FP_REGS), src1=rng.choice(GEN_FP_REGS), src2=rng.choice(GEN_FP_REGS))
                elif kind < 0.85:
                    addr = rng.choice(GEN_ADDRS)
                    if rng.random() < 0.5:
                        b.ld(rng.choice(GEN_INT_REGS), R[31], addr)
                    else:
                        b.fld(rng.choice(GEN_FP_REGS), R[31], addr)
                else:
                    addr = rng.choice(GEN_ADDRS)
                    if rng.random() < 0.5:
                        b.st(rng.choice(GEN_INT_REGS), R[31], addr)
                    else:
                        b.fst(rng.choice(GEN_FP_REGS), R[31], addr)

        for block in range(rng.randrange(1, max_blocks + 1)):
            if rng.random() < 0.6:
                # Bounded counted loop (r9 is reserved as the loop counter).
                trips = rng.randrange(1, 6)
                label = b.fresh_label(f"loop{block}")
                b.li(R[9], trips)
                b.label(label)
                emit_ops(rng.randrange(1, max_ops))
                b.subi(R[9], R[9], 1)
                b.bne(R[9], label)
            else:
                emit_ops(rng.randrange(1, max_ops))
                if rng.random() < 0.5:
                    skip = b.fresh_label(f"skip{block}")
                    b.beq(rng.choice(GEN_INT_REGS), skip)
                    emit_ops(rng.randrange(1, 4))
                    b.label(skip)
        b.halt()
    return b.build()


def random_memory(seed: int) -> Memory:
    rng = random.Random(seed ^ 0x5EED)
    memory = Memory()
    for addr in GEN_ADDRS:
        memory.store(addr, rng.randrange(0, 1 << 20))
    return memory


@pytest.fixture
def tiny_loop_program() -> Program:
    """A small well-understood loop used across several test modules."""
    b = ProgramBuilder("tiny_loop")
    with b.procedure("main"):
        b.li(R[1], 0)  # accumulator
        b.li(R[2], 0x2000)  # cursor
        b.li(R[3], 8)  # trip count
        b.label("loop")
        b.ld(R[4], R[2], 0)
        b.add(R[1], R[1], R[4])
        b.addi(R[2], R[2], 8)
        b.subi(R[3], R[3], 1)
        b.bne(R[3], "loop")
        b.st(R[1], R[31], 0x3000)
        b.halt()
    return b.build()


@pytest.fixture
def tiny_loop_memory() -> Memory:
    memory = Memory()
    memory.write_words(0x2000, [3, 1, 4, 1, 5, 9, 2, 6])
    return memory
