"""Chaos matrix for the supervised campaign service.

Every scenario runs the real simulator under a scripted
:class:`~repro.testing.faults.ChaosHarness`: worker kills, heartbeat stalls,
torn store writes, pool collapse and supervisor death are dispatch-slot
scripts on a :class:`ManualClock`, so each race replays identically on every
run.  The common acceptance bar is *exactly-once*: every cell reaches exactly
one terminal ``ok`` journal record, and the result set is byte-identical to a
fault-free serial campaign over the same grid.
"""

import json

import pytest

from repro.core.metrics import get_metrics, reset_metrics
from repro.runtime.campaign import CampaignSpec, run_campaign
from repro.runtime.journal import journal_path
from repro.runtime.service import (
    CampaignSupervisor,
    resume_service_campaign,
    run_service_campaign,
)
from repro.runtime.store import ResultStore
from repro.testing.faults import (
    CHAOS_INTERRUPT,
    CHAOS_KILL,
    CHAOS_SLOW,
    CHAOS_STALL,
    CHAOS_TORN_STORE,
    ChaosHarness,
    ChaosPolicy,
)


SPEC = CampaignSpec(
    workloads=("li", "go"),
    configs=("no_predict", "lvp"),
    recoveries=("selective",),
    max_instructions=1500,
    jobs=2,
)


@pytest.fixture(autouse=True)
def _fresh_metrics():
    reset_metrics()
    yield
    reset_metrics()


@pytest.fixture(scope="module")
def serial_payloads(tmp_path_factory):
    """Result payloads from a fault-free serial campaign — the golden run."""
    out = tmp_path_factory.mktemp("serial")
    report = run_campaign(SPEC.with_jobs(1), str(out), run_id="golden")
    assert report.complete
    return _payloads(report)


def _payloads(report):
    return sorted(json.dumps(r.to_dict(), sort_keys=True) for r in report.results)


def _supervised(tmp_path, harness, name="runs", **kwargs):
    defaults = dict(workers=2, poll_interval=0.1, lease_duration=30.0, retries=3)
    defaults.update(kwargs)
    supervisor = CampaignSupervisor(
        SPEC, str(tmp_path / name), **defaults, **harness.supervisor_kwargs()
    )
    harness.attach(supervisor)
    return supervisor


def _ok_record_counts(journal_file):
    counts = {}
    with open(journal_file) as handle:
        for line in handle:
            entry = json.loads(line)
            if entry.get("type") == "cell" and entry.get("status") == "ok":
                counts[entry["id"]] = counts.get(entry["id"], 0) + 1
    return counts


def _assert_exactly_once(supervisor, run_id="r1"):
    journal_file = journal_path(supervisor.out_dir, run_id)
    counts = _ok_record_counts(journal_file)
    assert counts == {cell_id: 1 for cell_id in SPEC.cell_ids()}


# ----------------------------------------------------------------------
# Baseline: a fault-free supervised run is just a parallel serial run
# ----------------------------------------------------------------------
def test_fault_free_supervised_run_matches_serial(tmp_path, serial_payloads):
    harness = ChaosHarness(ChaosPolicy())
    supervisor = _supervised(tmp_path, harness)
    report = supervisor.run(run_id="r1")
    assert report.complete
    assert _payloads(report) == serial_payloads
    _assert_exactly_once(supervisor)
    assert supervisor.stats.steals == 0
    assert supervisor.stats.pool_rebuilds == 0


# ----------------------------------------------------------------------
# Worker SIGKILL: the pool breaks; leases are reclaimed; survivors finish
# ----------------------------------------------------------------------
def test_worker_kill_reclaims_leases_and_completes(tmp_path, serial_payloads):
    harness = ChaosHarness(ChaosPolicy(script={0: CHAOS_KILL}))
    supervisor = _supervised(tmp_path, harness)
    report = supervisor.run(run_id="r1")

    assert report.complete
    assert _payloads(report) == serial_payloads
    _assert_exactly_once(supervisor)
    assert supervisor.stats.pool_rebuilds == 1
    assert not supervisor.stats.degraded_serial
    # Pool collapse reclaimed every in-flight lease, not just the victim's.
    assert supervisor.stats.lease["reclaims"] >= 2
    assert len(harness.executors) == 2  # original pool + one rebuild


def test_two_workers_killed_mid_flight(tmp_path, serial_payloads):
    """The CI chaos-smoke scenario: two kills across the campaign."""
    harness = ChaosHarness(ChaosPolicy(script={0: CHAOS_KILL, 3: CHAOS_KILL}))
    supervisor = _supervised(tmp_path, harness, max_pool_rebuilds=3)
    report = supervisor.run(run_id="r1")

    assert report.complete
    assert _payloads(report) == serial_payloads
    _assert_exactly_once(supervisor)
    assert supervisor.stats.pool_rebuilds == 2


# ----------------------------------------------------------------------
# Heartbeat stall: lease expires, the cell is stolen and re-dispatched
# ----------------------------------------------------------------------
def test_heartbeat_stall_past_lease_expiry_is_stolen(tmp_path, serial_payloads):
    harness = ChaosHarness(ChaosPolicy(script={0: CHAOS_STALL}))
    supervisor = _supervised(tmp_path, harness, lease_duration=1.0)
    report = supervisor.run(run_id="r1")

    assert report.complete
    assert _payloads(report) == serial_payloads
    _assert_exactly_once(supervisor)
    assert supervisor.stats.steals >= 1
    assert supervisor.stats.lease["expirations"] >= 1
    # The stolen cell's journal trail shows the steal event.
    events = [
        json.loads(line)
        for line in open(journal_path(supervisor.out_dir, "r1"))
        if '"event"' in line
    ]
    assert any(e.get("event") == "lease_stolen" for e in events)


def test_healthy_slow_worker_keeps_its_lease_via_heartbeats(tmp_path, serial_payloads):
    """A slow-but-heartbeating worker must NOT be stolen from: renewal works."""
    harness = ChaosHarness(ChaosPolicy(script={0: CHAOS_SLOW}, slow_ticks=25))
    # Lease far shorter than the cell's 2.5s runtime: only renewal saves it.
    supervisor = _supervised(tmp_path, harness, lease_duration=0.5, cell_timeout=60.0)
    report = supervisor.run(run_id="r1")

    assert report.complete
    assert _payloads(report) == serial_payloads
    assert supervisor.stats.steals == 0
    assert supervisor.stats.lease["renewals"] >= 1


# ----------------------------------------------------------------------
# Livelock: heartbeating forever but past the wall-clock cap -> stolen,
# and the late result from the superseded epoch is discarded
# ----------------------------------------------------------------------
def test_livelocked_worker_is_stolen_and_late_result_discarded(tmp_path, serial_payloads):
    harness = ChaosHarness(ChaosPolicy(script={0: CHAOS_SLOW}, slow_ticks=22))
    supervisor = _supervised(tmp_path, harness, lease_duration=30.0, cell_timeout=2.0)
    report = supervisor.run(run_id="r1")

    assert report.complete
    assert _payloads(report) == serial_payloads
    _assert_exactly_once(supervisor)  # the stale result never double-commits
    assert supervisor.stats.steals >= 1
    assert supervisor.stats.stale_results_discarded >= 1


# ----------------------------------------------------------------------
# Torn store write: the half-written entry is detected, discarded, re-run
# ----------------------------------------------------------------------
def test_torn_store_write_is_detected_and_healed(tmp_path, serial_payloads):
    store = ResultStore(str(tmp_path / "store"))
    harness = ChaosHarness(ChaosPolicy(script={0: CHAOS_TORN_STORE}))
    supervisor = _supervised(tmp_path, harness, store=store)
    report = supervisor.run(run_id="r1")

    assert report.complete
    assert _payloads(report) == serial_payloads
    _assert_exactly_once(supervisor)
    assert get_metrics().get("store.corrupt") >= 1  # the torn entry was caught
    # The slot healed: every cell's entry now reads back clean.
    for cell in SPEC.cells():
        assert store.get(supervisor.store_key(cell)) is not None


# ----------------------------------------------------------------------
# Pool collapse beyond the rebuild budget: degrade to serial, still finish
# ----------------------------------------------------------------------
def test_repeated_kills_degrade_to_serial_and_complete(tmp_path, serial_payloads):
    harness = ChaosHarness(ChaosPolicy(script={0: CHAOS_KILL, 2: CHAOS_KILL}))
    supervisor = _supervised(tmp_path, harness, max_pool_rebuilds=1)
    report = supervisor.run(run_id="r1")

    assert report.complete
    assert _payloads(report) == serial_payloads
    _assert_exactly_once(supervisor)
    assert supervisor.stats.degraded_serial
    assert supervisor.stats.pool_rebuilds == 2


# ----------------------------------------------------------------------
# Supervisor death mid-campaign: restart + --resume finishes the grid
# ----------------------------------------------------------------------
def test_supervisor_interrupt_then_resume_completes(tmp_path, serial_payloads):
    harness = ChaosHarness(ChaosPolicy(script={1: CHAOS_INTERRUPT}))
    supervisor = _supervised(tmp_path, harness)
    with pytest.raises(KeyboardInterrupt):
        supervisor.run(run_id="r1")

    # A fresh supervisor (fresh harness: the old one died with its process)
    # resumes from the journal alone.
    harness2 = ChaosHarness(ChaosPolicy())
    supervisor2 = _supervised(tmp_path, harness2)
    report = supervisor2.resume("r1")

    assert report.complete
    assert report.resumed
    assert report.restored >= 1  # the cell committed before the interrupt
    assert _payloads(report) == serial_payloads
    _assert_exactly_once(supervisor2)


def test_resume_service_campaign_rebuilds_spec_from_journal(tmp_path, serial_payloads):
    harness = ChaosHarness(ChaosPolicy(script={1: CHAOS_INTERRUPT}))
    supervisor = _supervised(tmp_path, harness)
    with pytest.raises(KeyboardInterrupt):
        supervisor.run(run_id="r1")

    # workers=1 takes the serial path: no pool, no harness needed — this is
    # exactly what `repro serve` does after a supervisor host restart.
    report = resume_service_campaign(str(tmp_path / "runs"), "r1", workers=1)
    assert report.complete
    assert _payloads(report) == serial_payloads


# ----------------------------------------------------------------------
# Shared store: identical cells are never simulated twice
# ----------------------------------------------------------------------
def test_warm_store_runs_zero_simulations(tmp_path, serial_payloads):
    store = ResultStore(str(tmp_path / "store"))
    harness = ChaosHarness(ChaosPolicy())
    cold = _supervised(tmp_path, harness, name="cold", store=store)
    cold_report = cold.run(run_id="r1")
    assert cold_report.complete
    assert len(store) == len(SPEC.cell_ids())

    runs_before = get_metrics().get("sim.runs")
    harness2 = ChaosHarness(ChaosPolicy())
    warm = _supervised(tmp_path, harness2, name="warm", store=store)
    warm_report = warm.run(run_id="r2")

    assert warm_report.complete
    assert get_metrics().get("sim.runs") == runs_before  # zero re-simulation
    assert warm.stats.store_hits == len(SPEC.cell_ids())
    assert warm.stats.dispatched == 0  # pre-pass satisfied the whole grid
    assert warm_report.store_hits == len(SPEC.cell_ids())
    assert _payloads(warm_report) == serial_payloads


def test_store_is_shared_across_entry_points(tmp_path, serial_payloads):
    """run_campaign fills the store; run_service_campaign drains it (and back)."""
    store = ResultStore(str(tmp_path / "store"))
    run_campaign(SPEC.with_jobs(1), str(tmp_path / "a"), run_id="a", store=store)

    runs_before = get_metrics().get("sim.runs")
    report = run_service_campaign(
        SPEC, str(tmp_path / "b"), run_id="b", workers=1, store=store
    )
    assert report.complete
    assert get_metrics().get("sim.runs") == runs_before
    assert _payloads(report) == serial_payloads
