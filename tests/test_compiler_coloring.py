"""Interference-graph and Chaitin colouring tests."""

from repro.isa import F, R, assemble
from repro.compiler import ColorNode, build_interference, build_webs, color_graph, compute_liveness, interferes


def analysis_of(text):
    program = assemble(text)
    proc = program.procedures[0]
    liveness = compute_liveness(program, proc)
    webs = build_webs(program, proc, liveness)
    return webs, build_interference(webs.webs)


def test_overlapping_webs_interfere():
    webs, adj = analysis_of(
        """
        li r1, #1
        li r2, #2
        add r3, r1, r2
        halt
        """
    )
    a = webs.web_of_def(0).index
    b = webs.web_of_def(1).index
    assert interferes(adj, a, b) and interferes(adj, b, a)


def test_sequential_webs_do_not_interfere():
    webs, adj = analysis_of(
        """
        li r1, #1
        add r2, r1, #1
        li r3, #2
        add r4, r3, #1
        halt
        """
    )
    # r1's web dies at pc1 before r3's web is born at pc2.
    a = webs.web_of_def(0).index
    b = webs.web_of_def(2).index
    assert not interferes(adj, a, b)


def test_int_and_fp_never_interfere():
    webs, adj = analysis_of(
        """
        li r1, #1
        fli f1, #2
        add r2, r1, #1
        fadd f2, f1, f1
        halt
        """
    )
    a = webs.web_of_def(0).index
    b = webs.web_of_def(1).index
    assert not interferes(adj, a, b)


def test_color_simple_graph():
    nodes = [
        ColorNode(0, "int", preferred=R[1]),
        ColorNode(1, "int", preferred=R[2]),
        ColorNode(2, "int", preferred=R[1]),
    ]
    adjacency = {0: {1}, 1: {0, 2}, 2: {1}}
    result = color_graph(nodes, adjacency)
    assert result.ok
    assert result.assignment[0] != result.assignment[1]
    assert result.assignment[1] != result.assignment[2]
    # Preferences honoured where legal.
    assert result.assignment[0] == R[1] and result.assignment[2] == R[1]


def test_fixed_nodes_keep_their_register():
    nodes = [
        ColorNode(0, "int", preferred=R[5], fixed=R[5]),
        ColorNode(1, "int", preferred=R[5]),
    ]
    result = color_graph(nodes, {0: {1}, 1: {0}})
    assert result.ok
    assert result.assignment[0] == R[5] and result.assignment[1] != R[5]


def test_uncolorable_clique_reported():
    from repro.isa.registers import ALLOCATABLE_INT

    k = len(ALLOCATABLE_INT)
    n = k + 1
    nodes = [ColorNode(i, "int", preferred=ALLOCATABLE_INT[i % k]) for i in range(n)]
    adjacency = {i: set(range(n)) - {i} for i in range(n)}
    result = color_graph(nodes, adjacency)
    assert not result.ok and len(result.uncolored) >= 1
    # Everything colored is still conflict-free.
    for node, reg in result.assignment.items():
        for other in adjacency[node]:
            if other in result.assignment:
                assert result.assignment[other] != reg


def test_coloring_respects_fp_pool():
    nodes = [ColorNode(0, "fp", preferred=F[2])]
    result = color_graph(nodes, {0: set()})
    assert result.assignment[0].is_fp


def test_zero_free_color_node_rejected_with_diagnostic():
    from repro.isa.registers import ALLOCATABLE_INT

    # One free node whose fixed neighbours occupy the whole int pool: it must
    # be rejected with an RVP009 diagnostic, not handed a clashing register.
    k = len(ALLOCATABLE_INT)
    nodes = [ColorNode(i, "int", preferred=ALLOCATABLE_INT[i], fixed=ALLOCATABLE_INT[i]) for i in range(k)]
    nodes.append(ColorNode(k, "int", preferred=ALLOCATABLE_INT[0]))
    adjacency = {i: {k} for i in range(k)}
    adjacency[k] = set(range(k))
    result = color_graph(nodes, adjacency, proc_name="proc")
    assert not result.ok
    assert result.uncolored == {k}
    assert k not in result.assignment
    (diag,) = result.diagnostics
    assert diag.rule == "RVP009" and diag.severity.name == "ERROR"
    assert diag.procedure == "proc" and f"group {k}" in diag.message


def test_conflicting_precolored_neighbours_rejected():
    nodes = [
        ColorNode(0, "int", preferred=R[5], fixed=R[5]),
        ColorNode(1, "int", preferred=R[5], fixed=R[5]),
    ]
    result = color_graph(nodes, {0: {1}, 1: {0}}, proc_name="proc")
    assert not result.ok
    assert result.uncolored == {0, 1}
    assert any("pinned to r5" in d.message for d in result.diagnostics)


def test_diagnostics_alone_make_result_not_ok():
    from repro.analysis.diagnostics import Diagnostic, Severity
    from repro.compiler.coloring import ColoringResult

    result = ColoringResult(assignment={0: R[1]})
    assert result.ok
    result.diagnostics.append(
        Diagnostic(rule="RVP009", severity=Severity.ERROR, pc=None, procedure="p", message="x")
    )
    assert not result.ok
