"""SSA construction tests: raising, phi placement, renaming, conventions."""

import pytest

from repro.isa import assemble
from repro.ir import IRError, Value, raise_program, verify_ssa
from repro.ir.passes import phi_webs


def raised(text):
    return raise_program(assemble(text))


def phis_of(func):
    return [(block.label, phi) for block in func.blocks for phi in block.phis]


def test_straightline_code_has_no_phis():
    module = raised(
        """
        li r1, #1
        add r2, r1, #2
        st r2, 0(r31)
        halt
        """
    )
    func = module.functions[0]
    verify_ssa(func)
    assert not phis_of(func)


def test_join_gets_pruned_phi():
    module = raised(
        """
        li r1, #1
        beq r31, other
        li r2, #10
        br join
    other:
        li r2, #20
    join:
        add r3, r2, #1
        halt
        """
    )
    func = module.functions[0]
    verify_ssa(func)
    placed = phis_of(func)
    # Exactly the r2 join phi: r1/r3 have single defs, and phis are pruned
    # to live-in vregs only.
    join_phis = [phi for label, phi in placed if label == "join"]
    assert len(join_phis) == 1
    assert all(label == "join" for label, _ in placed)


def test_entry_path_at_join_uses_pinned_entry_value():
    """A register defined on only one join path merges with the *entry*
    value on the other path — the entry-path-at-joins bug class."""
    module = raised(
        """
        beq r1, skip
        li r2, #10
    skip:
        add r3, r2, #1
        halt
        """
    )
    func = module.functions[0]
    verify_ssa(func)
    join_phis = [phi for label, phi in phis_of(func) if label == "skip"]
    assert len(join_phis) == 1
    args = [v for v in join_phis[0].args.values() if isinstance(v, Value)]
    assert len(args) == 2
    # One path flows the entry value, which is pinned to r2.
    pins = {v.pin.name for v in args if v.pin is not None}
    assert "r2" in pins


def test_loop_carried_variable_gets_header_phi():
    module = raised(
        """
        li r1, #10
    loop:
        sub r1, r1, #1
        bne r1, loop
        halt
        """
    )
    func = module.functions[0]
    verify_ssa(func)
    loop_phis = [phi for label, phi in phis_of(func) if label == "loop"]
    assert len(loop_phis) == 1
    # The two phi args (init, back edge) plus the phi dst form one web.
    webs = phi_webs(func)
    vids = {loop_phis[0].dst.vid} | {v.vid for v in loop_phis[0].args.values() if isinstance(v, Value)}
    assert len({webs.web_of[vid] for vid in vids}) == 1


def test_loop_depth_metadata():
    module = raised(
        """
        li r1, #3
    outer:
        li r2, #2
    inner:
        sub r2, r2, #1
        bne r2, inner
        sub r1, r1, #1
        bne r1, outer
        halt
        """
    )
    func = module.functions[0]
    depth = {block.label: func.loop_depth(block.label) for block in func.blocks}
    assert depth["inner"] == 2
    assert depth["outer"] == 1
    assert depth[func.blocks[0].label] == 0


def test_each_procedure_raises_to_its_own_function():
    module = raised(
        """
    .proc main
    main:
        li r16, #1
        jsr r26, callee
        halt
    .proc callee
    callee:
        add r0, r16, #1
        ret r26
        """
    )
    assert [f.name for f in module.functions] == ["main", "callee"]
    for func in module.functions:
        verify_ssa(func)


def test_call_boundary_values_are_pinned():
    module = raised(
        """
    .proc main
    main:
        li r16, #1
        jsr r26, callee
        halt
    .proc callee
    callee:
        add r0, r16, #1
        ret r26
        """
    )
    main = module.function("main")
    call = next(
        instr for block in main.blocks for instr in block.instrs if instr.op.name == "jsr"
    )
    assert any(v.pin is not None and v.pin.name == "r16" for v in call.implicit_uses)


def test_verify_ssa_rejects_double_definition():
    module = raised("li r1, #1\nadd r2, r1, #1\nhalt")
    func = module.functions[0]
    # Manually break single definition by aliasing two instructions' dsts.
    defs = [i for b in func.blocks for i in b.instrs if isinstance(i.dst, Value)]
    assert len(defs) >= 2
    defs[1].dst = defs[0].dst
    with pytest.raises(IRError):
        verify_ssa(func)
