"""Stride profiling and the stride-insertion pass (Section 3, Et Cetera)."""

from repro.compiler import apply_stride_pass
from repro.isa import assemble
from repro.profiling import StrideProfile
from repro.sim import Memory, run_program
from repro.uarch import simulate, table1_config
from repro.vp import DynamicRVP, NoPredictor

POINTER_WALK = """
    li r2, #0x1000
    li r3, #200
loop:
    ld r1, 0(r2)        ; v[i]: values stride by 16
    ld r4, 0(r1)        ; pointer chase
    add r5, r5, r4
    add r2, r2, #8
    sub r3, r3, #1
    bne r3, loop
    st r5, 0(r31)
    halt
"""


def build():
    memory = Memory()
    memory.write_words(0x1000, [0x8000 + 16 * i for i in range(200)])
    for i in range(500):
        memory.store(0x8000 + 8 * i, i * 3)
    program = assemble(POINTER_WALK)
    return program, memory


def test_stride_profile_finds_the_vector_load():
    program, memory = build()
    trace = run_program(program, memory=memory, max_instructions=10_000, collect_trace=True).trace
    strides = StrideProfile.from_trace(trace).strided_pcs(0.9, loads_only=True)
    assert strides.get(2) == 16  # v[i]


def test_stride_profile_ignores_irregular_sites():
    program, memory = build()
    trace = run_program(program, memory=memory, max_instructions=10_000, collect_trace=True).trace
    profile = StrideProfile.from_trace(trace)
    # The accumulator add (pc 4) advances by the chased values: irregular.
    assert 4 not in profile.strided_pcs(0.9, loads_only=False)
    # The loop counter strides by -1.
    assert profile.strided_pcs(0.9, loads_only=False).get(6) == -1


def test_pass_inserts_shadow_add_and_preserves_semantics():
    program, memory = build()
    trace = run_program(program, memory=memory.copy(), max_instructions=10_000, collect_trace=True).trace
    strides = {2: 16}
    new_program, lists, report = apply_stride_pass(program, strides)
    assert report.applied == 1
    assert len(new_program) == len(program) + 1
    shadow_add = new_program[3]
    assert shadow_add.op.name == "add" and shadow_add.imm == 16
    assert shadow_add.src1 == new_program[2].dst
    # Hint registered against the (remapped) load pc.
    assert 2 in lists.dead and lists.dead[2].reg == shadow_add.dst
    before = run_program(program, memory=memory.copy(), max_instructions=10_000)
    after = run_program(new_program, memory=memory.copy(), max_instructions=10_000)
    assert before.memory == after.memory


def test_pass_skips_fp_and_reports():
    program = assemble("fld f1, 0x100(r31)\nhalt")
    _, _, report = apply_stride_pass(program, {0: 8})
    assert report.applied == 0 and report.not_writable == 1


def test_stride_hint_predicts_perfectly_in_pipeline():
    program, memory = build()
    trace = run_program(program, memory=memory.copy(), max_instructions=10_000, collect_trace=True).trace
    strides = StrideProfile.from_trace(trace).strided_pcs(0.9, loads_only=True)
    new_program, lists, _ = apply_stride_pass(program, strides)
    new_trace = run_program(new_program, memory=memory.copy(), max_instructions=10_000, collect_trace=True).trace
    machine = table1_config()
    base = simulate(new_trace, NoPredictor(), machine)
    rvp = simulate(new_trace, DynamicRVP(lists=lists, use_dead=True), machine)
    assert rvp.predictions > 100
    assert rvp.accuracy > 0.98  # the shadow register is exact
    assert rvp.ipc >= base.ipc  # never hurts; usually helps the chase
