"""Register file specification tests."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    ALLOCATABLE_INT,
    F,
    NUM_FP_REGS,
    NUM_INT_REGS,
    R,
    RETURN_ADDRESS,
    STACK_POINTER,
    ZERO,
    Reg,
    is_volatile,
    parse_reg,
)
from repro.isa.registers import ALLOCATABLE_FP, CALLEE_SAVED_INT, FZERO


def test_bank_sizes():
    assert len(R) == NUM_INT_REGS == 32
    assert len(F) == NUM_FP_REGS == 32


def test_value_semantics():
    assert R[4] == Reg("int", 4)
    assert R[4] is not Reg("int", 4)  # equality, not identity
    assert hash(R[4]) == hash(Reg("int", 4))
    assert R[4] != F[4]


def test_zero_registers():
    assert ZERO.is_zero and FZERO.is_zero
    assert not R[0].is_zero
    assert ZERO.name == "r31" and FZERO.name == "f31"


def test_kind_predicates():
    assert R[3].is_int and not R[3].is_fp
    assert F[3].is_fp and not F[3].is_int


def test_special_registers():
    assert RETURN_ADDRESS == R[26]
    assert STACK_POINTER == R[30]


def test_allocatable_excludes_specials():
    assert ZERO not in ALLOCATABLE_INT
    assert RETURN_ADDRESS not in ALLOCATABLE_INT
    assert STACK_POINTER not in ALLOCATABLE_INT
    assert FZERO not in ALLOCATABLE_FP
    assert len(ALLOCATABLE_INT) == 27
    assert len(ALLOCATABLE_FP) == 31


def test_volatility():
    assert is_volatile(R[1])
    assert not is_volatile(R[9])  # callee-saved
    assert not is_volatile(ZERO)
    assert all(not is_volatile(r) for r in CALLEE_SAVED_INT)


def test_out_of_range_rejected():
    with pytest.raises(ValueError):
        Reg("int", 32)
    with pytest.raises(ValueError):
        Reg("int", -1)
    with pytest.raises(ValueError):
        Reg("vector", 0)


@given(st.integers(min_value=0, max_value=31), st.sampled_from(["r", "f"]))
def test_parse_reg_roundtrip(index, prefix):
    reg = parse_reg(f"{prefix}{index}")
    assert reg.index == index
    assert reg.name == f"{prefix}{index}"


@pytest.mark.parametrize("bad", ["x3", "r", "r32", "f99", "", "3r", "rf2"])
def test_parse_reg_rejects(bad):
    with pytest.raises(ValueError):
        parse_reg(bad)
