"""Static RVP marking tests."""

import pytest

from repro.compiler import MARKING_LEVELS, mark_static_rvp, marked_pcs
from repro.isa import R, assemble
from repro.profiling import DeadHint, ProfileLists
from repro.sim import Memory, run_program

PROGRAM_TEXT = """
    li r2, #8
loop:
    ld r1, 0x100(r31)
    ld r3, 0x108(r31)
    add r4, r1, r3
    sub r2, r2, #1
    bne r2, loop
    halt
"""


def make_lists():
    lists = ProfileLists(threshold=0.8)
    lists.same.add(1)  # first load
    lists.dead[2] = DeadHint(reg=R[4], producer_pc=3)  # second load
    lists.last_value.add(2)
    return lists


def test_levels_are_cumulative():
    program = assemble(PROGRAM_TEXT)
    lists = make_lists()
    same = marked_pcs(program, lists, "same")
    dead = marked_pcs(program, lists, "dead")
    live_lv = marked_pcs(program, lists, "live_lv")
    assert same == {1}
    assert dead == {1, 2}
    assert same <= dead <= live_lv


def test_only_loads_get_marked():
    program = assemble(PROGRAM_TEXT)
    lists = make_lists()
    lists.same.add(3)  # the add: predictable but not a load
    assert 3 not in marked_pcs(program, lists, "same")


def test_marking_swaps_opcode_and_preserves_semantics():
    program = assemble(PROGRAM_TEXT)
    marked = mark_static_rvp(program, make_lists(), "dead")
    assert marked[1].op.name == "rvp_ld" and marked[2].op.name == "rvp_ld"
    assert marked[3].op.name == "add"
    memory = Memory()
    memory.store(0x100, 5)
    memory.store(0x108, 6)
    base = run_program(program, memory=memory.copy(), max_instructions=1000)
    out = run_program(marked, memory=memory.copy(), max_instructions=1000)
    assert base.state.state_equal(out.state)
    assert base.instructions == out.instructions


def test_unknown_level_rejected():
    program = assemble(PROGRAM_TEXT)
    with pytest.raises(ValueError, match="unknown marking level"):
        mark_static_rvp(program, make_lists(), "turbo")
    assert set(MARKING_LEVELS) == {"same", "dead", "live", "live_lv"}


def test_fp_loads_get_fp_twin():
    program = assemble("fld f1, 0x100(r31)\nhalt")
    lists = ProfileLists(threshold=0.8)
    lists.same.add(0)
    marked = mark_static_rvp(program, lists, "same")
    assert marked[0].op.name == "rvp_fld"
