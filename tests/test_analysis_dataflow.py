"""Shared CFG dataflow engine: directions, meets, chains, dominance."""

from repro.analysis import solve
from repro.analysis.facts import ProcedureFacts, ProgramFacts
from repro.compiler import compute_liveness, defs_and_uses
from repro.isa import R, assemble


def facts_of(text, proc_name=None):
    program = assemble(text)
    proc = program.procedure(proc_name) if proc_name else program.procedures[0]
    return program, ProcedureFacts(program, proc)


# ----------------------------------------------------------------------
# Reaching definitions (forward / union)
# ----------------------------------------------------------------------
def test_redefinition_kills_earlier_def():
    program, facts = facts_of(
        """
        li r1, #1
        li r1, #2
        add r2, r1, #0
        halt
        """
    )
    use = facts.use_sites(2)[0]
    assert facts.reaching_defs_of_use(use) == {(1, R[1])}


def test_defs_merge_at_join():
    program, facts = facts_of(
        """
        li r2, #0
        beq r2, other
        li r1, #1
        br join
    other:
        li r1, #2
    join:
        add r3, r1, #0
        halt
        """
    )
    use = next(u for u in facts.use_sites(5) if u.reg == R[1])
    assert facts.reaching_defs_of_use(use) == {(2, R[1]), (4, R[1])}


def test_entry_pseudo_def_reaches_undefined_use():
    program, facts = facts_of(
        """
        add r2, r1, #0
        halt
        """
    )
    use = facts.use_sites(0)[0]
    assert facts.reaching_defs_of_use(use) == {(None, R[1])}


def test_loop_def_reaches_around_back_edge():
    program, facts = facts_of(
        """
        li r1, #10
    loop:
        sub r1, r1, #1
        bne r1, loop
        halt
        """
    )
    use = facts.use_sites(1)[0]
    # Both the init and the loop's own redefinition reach the loop header.
    assert facts.reaching_defs_of_use(use) == {(0, R[1]), (1, R[1])}


# ----------------------------------------------------------------------
# Available copies (forward / intersection)
# ----------------------------------------------------------------------
def test_copy_available_on_every_path_only():
    program, facts = facts_of(
        """
        li r1, #7
        li r4, #0
        beq r4, skip
        mov r2, r1
    skip:
        add r5, r1, #0
        halt
        """
    )
    # The mov happens on one path only -> not available at the join.
    assert (R[2], R[1]) not in facts.available_copies_at(4)

    program, facts = facts_of(
        """
        li r1, #7
        mov r2, r1
        add r5, r1, #0
        halt
        """
    )
    assert (R[2], R[1]) in facts.available_copies_at(2)


def test_copy_killed_by_redefinition_of_either_side():
    program, facts = facts_of(
        """
        li r1, #7
        mov r2, r1
        li r1, #8
        halt
        """
    )
    assert (R[2], R[1]) in facts.available_copies_at(2)
    assert (R[2], R[1]) not in facts.copies.out_facts[2]


# ----------------------------------------------------------------------
# Liveness expressed through the shared engine
# ----------------------------------------------------------------------
def test_liveness_satisfies_dataflow_equations_on_workload():
    from repro.workloads.suite import make_workload

    program = make_workload("m88ksim").program
    for proc in program.procedures:
        info = compute_liveness(program, proc)
        succs_of = {}
        for block in program.basic_blocks(proc):
            for pc in block.pcs():
                succs_of[pc] = [pc + 1] if pc + 1 < block.end else list(block.successors)
        for pc in range(proc.start, proc.end):
            defs, uses = defs_and_uses(program[pc])
            # live_in = uses ∪ (live_out − defs)
            assert info.live_in[pc] == frozenset(uses | (set(info.live_out[pc]) - defs))
            # live_out = ∪ live_in(succ)
            expected = set()
            for succ in succs_of[pc]:
                expected |= info.live_in[succ]
            assert info.live_out[pc] == frozenset(expected)


# ----------------------------------------------------------------------
# Chains, dominance, reachability
# ----------------------------------------------------------------------
def test_du_chains_invert_ud_chains():
    program, facts = facts_of(
        """
        li r1, #1
        add r2, r1, #1
        add r3, r1, r2
        halt
        """
    )
    du = facts.du_chains()
    assert du[(0, R[1])] == {(1, "src1"), (2, "src1")}
    assert du[(1, R[2])] == {(2, "src2")}


def test_dominance_and_unreachable_blocks():
    program, facts = facts_of(
        """
        li r1, #0
        beq r1, end
        li r2, #1
    end:
        halt
        br end
        """
    )
    # Entry dominates everything reachable; the trailing br is dead code.
    assert facts.dominates(0, 3)
    assert not facts.dominates(2, 3)
    dead = facts.unreachable_blocks()
    assert [block.start for block in dead] == [4]


def test_program_facts_cached_per_procedure():
    program = assemble(
        """
    .proc main
    main:
        halt
    .proc other
    other:
        ret r26
        """
    )
    facts = ProgramFacts(program)
    main = program.procedure("main")
    assert facts.for_proc(main) is facts.for_proc(main)
    assert len(list(facts)) == 2
