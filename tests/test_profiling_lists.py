"""ProfileLists hint-selection tests."""

from repro.isa import F, R
from repro.profiling import DeadHint, HintKind, ProfileLists


def make_lists():
    lists = ProfileLists(threshold=0.8)
    lists.same.add(10)
    lists.dead[20] = DeadHint(reg=R[4], producer_pc=5)
    lists.live[30] = DeadHint(reg=R[6])
    lists.last_value.update({40, 20})
    return lists


def test_same_takes_priority():
    lists = make_lists()
    lists.dead[10] = DeadHint(reg=R[2])
    assert lists.hint_for(10, use_dead=True, use_lv=True) is HintKind.SAME


def test_dead_hint_requires_flag():
    lists = make_lists()
    assert lists.hint_for(20) is None
    assert lists.hint_for(20, use_dead=True) is HintKind.REG
    assert lists.hint_reg(20) == R[4]


def test_live_hint_ordering():
    lists = make_lists()
    assert lists.hint_for(30, use_dead=True) is None
    assert lists.hint_for(30, use_dead=True, use_live=True) is HintKind.REG
    assert lists.hint_reg(30, use_live=True) == R[6]
    assert lists.hint_reg(30, use_live=False) is None


def test_lv_hint_is_last_resort():
    lists = make_lists()
    assert lists.hint_for(40, use_dead=True, use_live=True) is None
    assert lists.hint_for(40, use_lv=True) is HintKind.LAST_VALUE
    # pc 20 is in both dead and lv: dead wins when enabled.
    assert lists.hint_for(20, use_dead=True, use_lv=True) is HintKind.REG
    assert lists.hint_for(20, use_lv=True) is HintKind.LAST_VALUE


def test_unknown_pc_has_no_hint():
    assert make_lists().hint_for(999, use_dead=True, use_live=True, use_lv=True) is None


def test_candidate_pcs_accumulate():
    lists = make_lists()
    assert lists.candidate_pcs() == {10}
    assert lists.candidate_pcs(use_dead=True) == {10, 20}
    assert lists.candidate_pcs(use_dead=True, use_live=True, use_lv=True) == {10, 20, 30, 40}
