"""Machine configuration tests."""

import pytest

from repro.uarch import MachineConfig, RecoveryScheme, aggressive_config, table1_config


def test_table1_defaults_frozen():
    cfg = table1_config()
    with pytest.raises(Exception):
        cfg.fetch_width = 4  # frozen dataclass


def test_validate_rejects_inconsistent_fus():
    from dataclasses import replace

    bad = replace(table1_config(), fu_ldst=9)
    with pytest.raises(ValueError, match="subset"):
        bad.validate()


def test_validate_rejects_zero_widths():
    from dataclasses import replace

    with pytest.raises(ValueError):
        replace(table1_config(), fetch_width=0).validate()


def test_aggressive_doubles_the_right_things():
    narrow, wide = table1_config(), aggressive_config()
    assert wide.fetch_width == 2 * narrow.fetch_width
    assert wide.iq_int == 2 * narrow.iq_int and wide.iq_fp == 2 * narrow.iq_fp
    assert wide.fu_int == 2 * narrow.fu_int and wide.fu_fp == 2 * narrow.fu_fp
    assert wide.fu_ldst == 2 * narrow.fu_ldst
    assert wide.rename_regs == 2 * narrow.rename_regs
    assert wide.fetch_blocks == 3
    # Caches are unchanged (the paper only scales the core).
    assert wide.l1d == narrow.l1d and wide.l2 == narrow.l2


def test_recovery_scheme_parse():
    assert RecoveryScheme.parse("refetch") is RecoveryScheme.REFETCH
    assert RecoveryScheme.parse("selective") is RecoveryScheme.SELECTIVE
    with pytest.raises(ValueError, match="unknown recovery scheme"):
        RecoveryScheme.parse("rollback")


def test_front_depth_produces_paper_mispredict_penalty():
    cfg = table1_config()
    # fetched at F, earliest issue F+front_depth, resolve >= +1, redirect +1:
    # a minimum misprediction shadow of ~7 cycles, per Table 1.
    assert cfg.front_depth + 1 in (6, 7, 8)
