"""Context (FCM) predictor tests."""

import pytest

from repro.isa import Instruction, R, opcode
from repro.vp import ContextPredictor


def load(pc):
    return Instruction(op=opcode("ld"), dst=R[1], src1=R[2], imm=0, pc=pc)


def test_learns_repeating_sequence_beyond_last_value():
    cp = ContextPredictor(entries=64, order=2)
    sequence = [1, 2, 3] * 30
    predicted = correct = 0
    for value in sequence:
        if cp.confident(5):
            predicted += 1
            correct += cp.stored_value(5) == value
        cp.update(5, True, value)
    assert predicted > 40
    assert correct == predicted  # the period-3 sequence is exact under order 2


def test_needs_full_context_before_predicting():
    cp = ContextPredictor(entries=64, order=3)
    cp.update(5, True, 1)
    cp.update(5, True, 2)
    assert cp.stored_value(5) is None  # history shorter than the order


def test_constant_sequence_is_easy():
    cp = ContextPredictor(entries=64, order=2)
    for _ in range(12):
        cp.update(5, True, 42)
    assert cp.confident(5) and cp.stored_value(5) == 42


def test_context_change_resets_confidence():
    cp = ContextPredictor(entries=64, order=1)
    for _ in range(10):
        cp.update(5, True, 7)
    assert cp.confident(5)
    cp.update(5, False, 8)  # context (7) now maps to 8, cold
    cp.update(5, False, 7)
    assert not cp.confident(5)


def test_source_filters():
    assert ContextPredictor(loads_only=True).source(load(1)) is not None
    add = Instruction(op=opcode("add"), dst=R[1], src1=R[2], imm=1, pc=2)
    assert ContextPredictor(loads_only=True).source(add) is None
    assert ContextPredictor(loads_only=False).source(add) is not None


def test_bad_configs_rejected():
    with pytest.raises(ValueError):
        ContextPredictor(entries=100)
    with pytest.raises(ValueError):
        ContextPredictor(vpt_entries=3)
    with pytest.raises(ValueError):
        ContextPredictor(order=0)


def test_reset():
    cp = ContextPredictor(entries=64, order=1)
    for _ in range(10):
        cp.update(5, True, 7)
    cp.reset()
    assert not cp.confident(5) and cp.stored_value(5) is None


def test_runs_through_experiment_runner():
    from repro.core import ExperimentRunner

    runner = ExperimentRunner("m88ksim", max_instructions=10_000)
    result = runner.run("context_all")
    assert result.stats.committed == 10_000
    if result.stats.predictions:
        assert result.stats.accuracy > 0.5
