"""Symbolic (absint-backed) reuse classification and candidate selection."""

from __future__ import annotations

from repro.analysis.reuse_static import ReuseClass, StaticReuseEstimator
from repro.analysis.reuse_symbolic import (
    SymbolicReuseEstimator,
    _no_store_procedures,
    candidate_overlap,
    select_rvp_candidates,
    symbolic_reuse_by_depth,
)
from repro.isa import R, assemble
from repro.profiling.lists import ProfileLists


def sym_classify(text):
    program = assemble(text)
    estimator = SymbolicReuseEstimator(program)
    return program, estimator, estimator.estimate()


# ----------------------------------------------------------------------
# Where the symbolic domain beats the base-register-name heuristic
# ----------------------------------------------------------------------
def test_symbolic_sees_through_base_register_rename():
    program, _, estimate = sym_classify(
        """
        li r9, #8
        li r2, #64
    loop:
        mov r4, r2
        ld r3, 0(r4)
        sub r9, r9, #1
        bne r9, loop
        halt
        """
    )
    # The base register is a fresh copy every iteration; the symbolic
    # address expression still resolves to the loop-invariant r2 value.
    assert estimate.loads[3].reuse is ReuseClass.SAME
    heuristic = StaticReuseEstimator(program).estimate()
    assert heuristic.loads[3].reuse is ReuseClass.NONE


def test_strided_store_disproved_by_congruence_keeps_same():
    program, _, estimate = sym_classify(
        """
        li r9, #8
        li r2, #1064
        li r4, #1068
    loop:
        ld r3, 0(r2)
        st r9, 0(r4)
        add r4, r4, #8
        sub r9, r9, #1
        bne r9, loop
        halt
        """
    )
    # Store orbit 1068 + 8n mod 2**64 never hits 1064 (offset -4 is not a
    # multiple of the stride): provably no alias, so the load stays SAME.
    assert estimate.loads[3].reuse is ReuseClass.SAME


def test_store_on_the_orbit_kills_reuse():
    program, _, estimate = sym_classify(
        """
        li r9, #8
        li r2, #1064
        li r4, #1064
    loop:
        ld r3, 0(r2)
        st r9, 0(r4)
        add r4, r4, #8
        sub r9, r9, #1
        bne r9, loop
        halt
        """
    )
    # The strided store starts ON the load's cell.  The base-register-name
    # heuristic never sees different-base stores, so it keeps SAME; the
    # symbolic estimator follows the orbit and correctly refuses.
    assert estimate.loads[3].reuse is ReuseClass.NONE
    heuristic = StaticReuseEstimator(program).estimate()
    assert heuristic.loads[3].reuse is ReuseClass.SAME


def test_call_clobber_depends_on_callee_stores():
    # Base and counter live in callee-saved registers so the call itself
    # does not clobber the address; only the callee's stores matter.
    clean = """
    .proc main
        li r9, #8
        li r10, #64
    loop:
        ld r3, 0(r10)
        jsr r26, callee
        sub r9, r9, #1
        bne r9, loop
        halt
    .proc callee
    callee:
        ret r26
    """
    dirty = clean.replace("ret r26", "st r9, 8(r10)\n        ret r26", 1)
    _, _, clean_est = sym_classify(clean)
    _, _, dirty_est = sym_classify(dirty)
    assert clean_est.loads[2].reuse is not ReuseClass.NONE
    assert dirty_est.loads[2].reuse is ReuseClass.NONE


def test_no_store_procedures_transitive_closure():
    program = assemble(
        """
        .proc main
            li r2, #64
            jsr r26, clean
            halt
        .proc clean
        clean:
            ld r3, 0(r2)
            ret r26
        .proc dirty
        dirty:
            st r3, 0(r2)
            ret r26
        .proc wraps
        wraps:
            jsr r26, dirty
            ret r26
        """
    )
    assert _no_store_procedures(program) == {"main", "clean"}


# ----------------------------------------------------------------------
# Candidate selection for the marking pass
# ----------------------------------------------------------------------
def test_select_candidates_excludes_zero_dest_loads():
    program, _, estimate = sym_classify(
        """
        li r9, #8
        li r2, #64
    loop:
        ld r31, 0(r2)   ; r31 is the hardwired zero register
        ld r3, 0(r2)
        sub r9, r9, #1
        bne r9, loop
        halt
        """
    )
    lists = select_rvp_candidates(program, estimate)
    assert lists.threshold == 0.0
    assert 3 in lists.same
    assert 2 not in lists.same and 2 not in lists.dead and 2 not in lists.last_value


def test_select_candidates_dead_hint_names_sibling_holder():
    program, _, estimate = sym_classify(
        """
        li r9, #16
        li r2, #64
    loop:
        ld r3, 0(r2)
        ld r4, 0(r2)
        add r3, r3, #1
        sub r9, r9, #1
        bne r9, loop
        halt
        """
    )
    lists = select_rvp_candidates(program, estimate)
    hint = lists.dead[2]
    assert hint.reg == R[4]
    assert hint.producer_pc == 3
    assert 3 in lists.same


def test_candidate_overlap_counts():
    static = ProfileLists(threshold=0.0)
    static.same.update({1, 2, 3})
    profiled = ProfileLists(threshold=0.8)
    profiled.same.update({2, 3, 4})
    overlap = candidate_overlap(static, profiled)
    assert overlap["same"] == {"static": 3, "profiled": 3, "both": 2}
    assert overlap["dead"] == {"static": 0, "profiled": 0, "both": 0}


# ----------------------------------------------------------------------
# Per-loop-depth attribution without a source map
# ----------------------------------------------------------------------
def test_depth_buckets_with_trip_weighted_reuse():
    _, estimator, estimate = sym_classify(
        """
        li r9, #16
        li r2, #64
    loop:
        ld r3, 0(r2)
        sub r9, r9, #1
        bne r9, loop
        ld r5, 8(r2)
        halt
        """
    )
    out = symbolic_reuse_by_depth(estimator.absint, estimate)
    assert set(out) == {"0", "1"}
    inner = out["1"]
    assert inner["loads"] == 1 and inner["same"] == 1
    assert inner["proven_trip_loads"] == 1
    assert inner["trip_weighted_reuse"] == round(15 / 16, 4)
    assert out["0"]["trip_weighted_reuse"] is None


# ----------------------------------------------------------------------
# Acceptance spot-check: symbolic never behind the heuristic on workloads
# ----------------------------------------------------------------------
def test_symbolic_candidates_match_or_beat_heuristic_on_workloads():
    from repro.profiling.reuse import ReuseProfile
    from repro.sim.functional import run_program
    from repro.workloads import make_workload

    for name in ("ijpeg", "turb3d", "hydro2d"):
        workload = make_workload(name)
        result = run_program(
            workload.program, memory=workload.memory(), max_instructions=40_000, collect_trace=True
        )
        profile = ReuseProfile.from_trace(result.trace)
        lists = profile.profile_lists(0.8, loads_only=True, min_count=8)
        heuristic = select_rvp_candidates(
            workload.program, StaticReuseEstimator(workload.program).estimate()
        )
        symbolic = select_rvp_candidates(workload.program)
        h = candidate_overlap(heuristic, lists)
        s = candidate_overlap(symbolic, lists)
        for cls in ("same", "dead"):
            assert s[cls]["both"] >= h[cls]["both"], (name, cls, s[cls], h[cls])
