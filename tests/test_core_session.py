"""SimSession memoization, canonical cache keys, and the parallel suite runner."""

from __future__ import annotations

import pytest

from repro.core import (
    ExperimentRunner,
    ParallelSuiteRunner,
    SimSession,
    SuiteCell,
    canonical_variant_key,
    get_metrics,
    get_session,
)
from repro.uarch.config import table1_config
from repro.uarch.recovery import RecoveryScheme

MAX_INSTS = 4_000


# ----------------------------------------------------------------------
# Canonical keys (the fix for the threshold cache-key asymmetry)
# ----------------------------------------------------------------------
def test_canonical_key_base_drops_threshold():
    assert canonical_variant_key("base", 0.8, 0.8) == ("base", None)
    assert canonical_variant_key("base", 0.5, 0.8) == ("base", None)
    assert canonical_variant_key("base", None, 0.8) == ("base", None)


def test_canonical_key_resolves_default_threshold():
    assert canonical_variant_key("srvp_dead", None, 0.8) == ("srvp_dead", 0.8)
    assert canonical_variant_key("srvp_dead", 0.8, 0.8) == ("srvp_dead", 0.8)
    assert canonical_variant_key("realloc", 0.5, 0.8) == ("realloc", 0.5)


def test_canonical_key_symmetric_across_threshold_spellings():
    """Regression: explicit-default and implicit-default spellings of the
    same variant MUST collide on one cache key for every srvp level (the
    seed bug keyed a trace as 'srvp_dead' but the program as 'srvp_dead@0.8',
    so the two spellings silently doubled the cache)."""
    for variant in ("srvp_same", "srvp_dead", "srvp_live", "srvp_live_lv", "realloc"):
        for default in (0.5, 0.8):
            implicit = canonical_variant_key(variant, None, default)
            explicit = canonical_variant_key(variant, default, default)
            assert implicit == explicit == (variant, default), (variant, default)
    # but a non-default explicit threshold is a distinct key
    assert canonical_variant_key("srvp_dead", 0.5, 0.8) != canonical_variant_key("srvp_dead", None, 0.8)
    # and base is threshold-free under every spelling
    assert canonical_variant_key("base", None, 0.8) == canonical_variant_key("base", 0.5, 0.8)


# ----------------------------------------------------------------------
# Identity caching
# ----------------------------------------------------------------------
def test_session_returns_identical_cached_objects():
    session = SimSession()
    w1 = session.workload("m88ksim", 1.0)
    w2 = session.workload("m88ksim", 1.0)
    assert w1 is w2

    t1 = session.ref_trace("m88ksim", 1.0, MAX_INSTS, "base", None, 0.8)
    t2 = session.ref_trace("m88ksim", 1.0, MAX_INSTS, "base", None, 0.8)
    assert t1 is t2
    assert isinstance(t1, tuple)

    p1 = session.train_artifacts("m88ksim", 1.0, MAX_INSTS)
    p2 = session.train_artifacts("m88ksim", 1.0, MAX_INSTS)
    assert p1 is p2


def test_base_trace_shared_across_thresholds():
    """'base' ignores the threshold, so any threshold maps to one trace."""
    session = SimSession()
    t1 = session.ref_trace("go", 1.0, MAX_INSTS, "base", None, 0.8)
    t2 = session.ref_trace("go", 1.0, MAX_INSTS, "base", None, 0.5)
    t3 = session.ref_trace("go", 1.0, MAX_INSTS, "base", 0.9, 0.8)
    assert t1 is t2 is t3


def test_variant_trace_none_threshold_resolves_to_default():
    session = SimSession()
    t_default = session.ref_trace("m88ksim", 1.0, MAX_INSTS, "srvp_dead", None, 0.8)
    t_explicit = session.ref_trace("m88ksim", 1.0, MAX_INSTS, "srvp_dead", 0.8, 0.8)
    assert t_default is t_explicit
    t_other = session.ref_trace("m88ksim", 1.0, MAX_INSTS, "srvp_dead", 0.5, 0.8)
    assert t_other is not t_default


def test_second_runner_runs_zero_additional_sims():
    """Two runners on one workload share every functional-sim artifact."""
    session = SimSession()
    metrics = get_metrics()
    first = ExperimentRunner("ijpeg", max_instructions=MAX_INSTS, session=session)
    first.run("no_predict")
    runs_after_first = metrics.get("sim.runs")

    second = ExperimentRunner("ijpeg", max_instructions=MAX_INSTS, session=session)
    second.run("lvp_all")
    assert metrics.get("sim.runs") == runs_after_first  # same train+ref, zero new sims


def test_runner_uses_global_session_by_default():
    runner = ExperimentRunner("li", max_instructions=MAX_INSTS)
    assert runner.session is get_session()


# ----------------------------------------------------------------------
# LRU bounding
# ----------------------------------------------------------------------
def test_trace_cache_lru_eviction():
    session = SimSession(trace_capacity=2)
    t_go = session.ref_trace("go", 1.0, MAX_INSTS, "base", None, 0.8)
    session.ref_trace("li", 1.0, MAX_INSTS, "base", None, 0.8)
    # Touch go so li becomes the LRU entry, then insert a third trace.
    assert session.ref_trace("go", 1.0, MAX_INSTS, "base", None, 0.8) is t_go
    session.ref_trace("ijpeg", 1.0, MAX_INSTS, "base", None, 0.8)
    assert len(session._traces) == 2
    assert ("go", 1.0, MAX_INSTS, "base", None, "ref") in session._traces
    assert ("li", 1.0, MAX_INSTS, "base", None, "ref") not in session._traces


# ----------------------------------------------------------------------
# Parallel suite runner
# ----------------------------------------------------------------------
SUITE_KW = dict(
    workloads=("m88ksim", "li"),
    configs=("no_predict", "lvp_all"),
    recoveries=(RecoveryScheme.SELECTIVE,),
    machine=table1_config(),
    max_instructions=2_000,
)


def _check_report(report, runner):
    assert not report.failures
    assert len(report.results) == len(runner.cells) == 4
    got = {(r.workload, r.config) for r in report.results}
    assert got == {(w, c) for w in SUITE_KW["workloads"] for c in SUITE_KW["configs"]}
    for result in report.results:
        assert result.ipc > 0


def test_suite_runner_serial():
    runner = ParallelSuiteRunner(jobs=1, **SUITE_KW)
    report = runner.run()
    _check_report(report, runner)
    assert not report.used_processes


def test_suite_runner_parallel_smoke():
    runner = ParallelSuiteRunner(jobs=2, **SUITE_KW)
    report = runner.run()
    _check_report(report, runner)
    assert report.used_processes


def test_suite_runner_matches_serial_results():
    serial = ParallelSuiteRunner(jobs=1, **SUITE_KW).run()
    parallel = ParallelSuiteRunner(jobs=2, **SUITE_KW).run()
    want = {(r.workload, r.config): r.ipc for r in serial.results}
    got = {(r.workload, r.config): r.ipc for r in parallel.results}
    assert got == want


def test_suite_cell_is_hashable():
    cell = SuiteCell("m88ksim", "no_predict", "selective")
    assert cell in {cell}


# ----------------------------------------------------------------------
# Fused batch digests
# ----------------------------------------------------------------------
def test_batch_digests_cached_and_scalar_consistent():
    from repro.sim.functional import FunctionalSimulator

    session = SimSession()
    metrics = get_metrics()
    misses = metrics.get("session.batch.misses")
    digests = session.batch_digests("li", 1.0, MAX_INSTS)
    assert sorted(digests) == ["ref", "train"]
    assert metrics.get("session.batch.misses") == misses + 1
    assert session.cache_stats()["batch_digests"] == 1

    # Identity-cached on the canonical key.
    hits = metrics.get("session.batch.hits")
    assert session.batch_digests("li", 1.0, MAX_INSTS) is digests
    assert metrics.get("session.batch.hits") == hits + 1

    # Each lane's digest pins the same outcome a scalar run produces.
    workload = session.workload("li", 1.0)
    for input_name in ("ref", "train"):
        sim = FunctionalSimulator(workload.program, memory=workload.memory(input_name))
        result = sim.run(max_instructions=MAX_INSTS)
        assert digests[input_name]["instructions"] == result.instructions
        assert digests[input_name]["halted"] == result.halted
        assert digests[input_name]["digest"] == SimSession._lane_digest(
            type("L", (), {
                "state": sim.state,
                "memory": sim.memory,
                "instructions": result.instructions,
                "halted": result.halted,
            })()
        )


def test_batch_digests_key_includes_inputs_and_variant():
    session = SimSession()
    base = session.batch_digests("li", 1.0, MAX_INSTS)
    ref_only = session.batch_digests("li", 1.0, MAX_INSTS, input_names=("ref",))
    assert ref_only is not base
    assert ref_only["ref"] == base["ref"]  # same lane outcome either way
    assert session.cache_stats()["batch_digests"] == 2
    session.reset()
    assert session.cache_stats()["batch_digests"] == 0


# ----------------------------------------------------------------------
# Shared result store under the suite runner (L2 beneath the session L1)
# ----------------------------------------------------------------------
def test_suite_runner_restores_from_store_without_resimulating(tmp_path):
    from repro.core.session import reset_session
    from repro.runtime.store import ResultStore

    store = ResultStore(str(tmp_path / "store"))
    first = ParallelSuiteRunner(jobs=1, store=store, **SUITE_KW)
    report = first.run()
    _check_report(report, first)
    assert report.store_hits == 0
    assert len(store) == 4  # every fresh result was published

    # Drop the in-process session L1 so only the persistent L2 can explain
    # a zero-simulation warm run.
    reset_session()
    runs_before = get_metrics().get("sim.runs")
    second = ParallelSuiteRunner(jobs=1, store=store, **SUITE_KW)
    warm = second.run()
    _check_report(warm, second)
    assert warm.store_hits == 4
    assert get_metrics().get("sim.runs") == runs_before  # zero re-simulation
    want = {(r.workload, r.config): r.ipc for r in report.results}
    got = {(r.workload, r.config): r.ipc for r in warm.results}
    assert got == want


def test_suite_runner_retry_deadline_defaults_to_cell_timeout():
    runner = ParallelSuiteRunner(jobs=1, **SUITE_KW)
    assert runner.retry_deadline == runner.cell_timeout
    capped = ParallelSuiteRunner(jobs=1, retry_deadline=0.25, **SUITE_KW)
    assert capped.retry_deadline == 0.25
