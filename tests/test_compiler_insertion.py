"""Instruction-insertion tests (label/procedure remapping)."""

import pytest

from repro.compiler import insert_after
from repro.isa import Instruction, R, assemble, opcode
from repro.sim import Memory, run_program

PROGRAM = """
.proc main
main:
    li r1, #3
loop:
    sub r1, r1, #1
    bne r1, loop
    jsr r26, tail
    halt
.proc tail
tail:
    ret r26
"""


def nop():
    return Instruction(op=opcode("nop"))


def test_insertion_shifts_pcs_and_labels():
    program = assemble(PROGRAM)
    new_program, pc_map = insert_after(program, {0: [nop()]})
    assert len(new_program) == len(program) + 1
    assert pc_map[0] == 0 and pc_map[1] == 2
    # 'loop' label still points at the original sub.
    assert new_program[new_program.labels["loop"]].op.name == "sub"
    # The branch target resolves to the shifted label.
    bne = next(i for i in new_program if i.op.name == "bne")
    assert bne.target_pc == new_program.labels["loop"]


def test_insertion_preserves_procedures():
    program = assemble(PROGRAM)
    new_program, pc_map = insert_after(program, {1: [nop(), nop()]})
    main = new_program.procedure("main")
    tail = new_program.procedure("tail")
    assert main.end == tail.start
    assert new_program[tail.start].op.name == "ret"
    # Inserted nops belong to main.
    assert new_program[pc_map[1] + 1].op.name == "nop"
    assert pc_map[1] + 1 in main


def test_insertion_after_last_instruction_of_procedure():
    program = assemble(PROGRAM)
    halt_pc = next(i.pc for i in program if i.is_halt)
    new_program, _ = insert_after(program, {halt_pc: [nop()]})
    main = new_program.procedure("main")
    assert new_program[main.end - 1].op.name == "nop"


def test_out_of_range_rejected():
    program = assemble(PROGRAM)
    with pytest.raises(ValueError, match="out of range"):
        insert_after(program, {99: [nop()]})


def test_inserted_dead_code_preserves_semantics():
    program = assemble(PROGRAM)
    # Insert a write to an otherwise-unused register everywhere.
    shadow = Instruction(op=opcode("add"), dst=R[20], src1=R[1], imm=7)
    insertions = {pc: [shadow] for pc in range(len(program) - 2)}
    new_program, _ = insert_after(program, insertions)
    a = run_program(program, memory=Memory(), max_instructions=1000)
    b = run_program(new_program, memory=Memory(), max_instructions=1000)
    assert a.memory == b.memory and a.halted and b.halted
    assert b.instructions > a.instructions  # the shadows execute
