"""Unit tests for the batched vectorized engine: lanes, masks, faults.

Cross-engine equivalence on real workloads lives in the matrix test; here
we pin the batched-specific mechanics — per-lane independence under
divergence, lane-local fault retirement with scalar-identical errors,
single-run dispatch through ``engine="batched"``, and input validation.
"""

from __future__ import annotations

import pytest

from repro.isa.assembler import assemble
from repro.sim.batched import LaneResult, run_batch
from repro.sim.functional import FunctionalSimulator
from repro.sim.memory import Memory
from repro.workloads.suite import make_workload

_DIVERGE = """
    ld r1, 0x0(r31)
    li r2, #0
    li r3, #0
    bne r1, taken
    li r2, #1111
    st r2, 0x8(r31)
    br done
taken:
    li r3, #2222
    st r3, 0x10(r31)
done:
    add r4, r2, r3
    mul r5, r1, r4
    halt
"""

_FAULTY = """
    ld r1, 0x0(r31)
    ld r2, 0x0(r1)
    st r2, 0x8(r31)
    halt
"""


def _mem(word0: int) -> Memory:
    memory = Memory()
    memory.store(0, word0)
    return memory


def _scalar(program, memory):
    sim = FunctionalSimulator(program, memory=memory, engine="decoded")
    result = sim.run(max_instructions=1_000)
    return sim, result


def _assert_lane_matches_scalar(lane, program, word0):
    sim, result = _scalar(program, _mem(word0))
    assert lane.instructions == result.instructions
    assert lane.halted == result.halted
    assert lane.state.pc == sim.state.pc
    assert tuple(lane.state.int_regs) == tuple(sim.state.int_regs)
    # Memory.__eq__ compares modulo zero-valued words: the decoded engine
    # records explicit zero stores in its backing dict, the batched
    # writeback does not — loads of absent words read 0 either way.
    assert lane.memory == sim.memory


# ----------------------------------------------------------------------
# Divergence and reconvergence
# ----------------------------------------------------------------------
def test_divergent_lanes_each_match_scalar():
    program = assemble(_DIVERGE, name="diverge")
    values = (0, 1, 0, 7, 0, 123456)  # alternate both sides of the branch
    lanes = run_batch(program, [_mem(v) for v in values], max_instructions=1_000)
    assert [lane.lane for lane in lanes] == list(range(len(values)))
    for lane, value in zip(lanes, values):
        assert isinstance(lane, LaneResult)
        assert lane.error is None
        _assert_lane_matches_scalar(lane, program, value)


def test_uniform_lanes_match_scalar_on_real_workload():
    workload = make_workload("mgrid")
    lanes = run_batch(
        workload.program,
        [workload.memory("ref") for _ in range(4)],
        max_instructions=2_000,
    )
    sim, result = FunctionalSimulator(
        workload.program, memory=workload.memory("ref"), engine="decoded"
    ), None
    result = sim.run(max_instructions=2_000)
    for lane in lanes:
        assert lane.instructions == result.instructions
        assert tuple(lane.state.int_regs) == tuple(sim.state.int_regs)
        assert tuple(lane.state.fp_regs) == tuple(sim.state.fp_regs)


# ----------------------------------------------------------------------
# Per-lane fault retirement
# ----------------------------------------------------------------------
def test_faulting_lane_retires_without_aborting_batch():
    program = assemble(_FAULTY, name="faulty")
    # Lane 1 loads through an unaligned pointer; lanes 0/2 stay healthy.
    lanes = run_batch(program, [_mem(8), _mem(3), _mem(16)], max_instructions=1_000)

    assert lanes[0].error is None and lanes[2].error is None
    _assert_lane_matches_scalar(lanes[0], program, 8)
    _assert_lane_matches_scalar(lanes[2], program, 16)

    bad = lanes[1]
    assert not bad.halted
    # The recorded exception is scalar-identical: same type, same message,
    # same commit count and pc as the decoded engine on the same image.
    sim = FunctionalSimulator(program, memory=_mem(3), engine="decoded")
    with pytest.raises(ValueError, match="unaligned access at address 0x3") as scalar_exc:
        sim.run(max_instructions=1_000)
    assert type(bad.error) is type(scalar_exc.value)
    assert str(bad.error) == str(scalar_exc.value)
    assert bad.instructions == sim.last_result.instructions
    assert bad.state.pc == sim.state.pc


# ----------------------------------------------------------------------
# Engine plumbing and validation
# ----------------------------------------------------------------------
def test_engine_batched_single_run_matches_decoded():
    workload = make_workload("dotprod")
    decoded_sim = FunctionalSimulator(
        workload.program, memory=workload.memory("ref"), engine="decoded"
    )
    decoded = decoded_sim.run(max_instructions=50_000)
    batched_sim = FunctionalSimulator(
        workload.program, memory=workload.memory("ref"), engine="batched"
    )
    batched = batched_sim.run(max_instructions=50_000)
    assert batched.instructions == decoded.instructions
    assert batched.halted == decoded.halted
    assert tuple(batched_sim.state.int_regs) == tuple(decoded_sim.state.int_regs)
    assert batched_sim.memory._words == decoded_sim.memory._words


def test_run_batch_counts_metrics():
    from repro.core.metrics import get_metrics

    metrics = get_metrics()
    runs, lanes_before = metrics.get("sim.runs_batched"), metrics.get("sim.batch_lanes")
    program = assemble(_DIVERGE, name="diverge")
    run_batch(program, [_mem(0), _mem(1), _mem(2)], max_instructions=1_000)
    assert metrics.get("sim.runs_batched") == runs + 1
    assert metrics.get("sim.batch_lanes") == lanes_before + 3


def test_budget_length_mismatch_rejected():
    program = assemble(_DIVERGE, name="diverge")
    with pytest.raises(ValueError, match="length mismatch"):
        run_batch(program, [_mem(0), _mem(1)], max_instructions=[100])
