"""Critical-path profile tests."""

from repro.isa import assemble
from repro.profiling import critical_path_profile
from repro.sim import Memory, run_program


def crit_of(text, memory=None):
    result = run_program(assemble(text), memory=memory, max_instructions=20_000, collect_trace=True)
    return critical_path_profile(result.trace)


def test_empty_trace():
    assert critical_path_profile([]) == {}


def test_serial_chain_dominates():
    crit = crit_of(
        """
        li r2, #20
    loop:
        add r1, r1, #1     ; serial accumulator: two links per iteration,
        add r1, r1, #1     ; twice as deep as the loop-counter chain
        add r3, r31, #7    ; independent, off-chain
        sub r2, r2, #1
        bne r2, loop
        halt
        """
    )
    # The accumulator (pcs 1-2) dominates the path; the independent add
    # (pc 3) never appears on it.
    assert crit[1] + crit[2] > crit.get(4, 0)
    assert crit.get(3, 0) == 0
    assert crit[1] + crit[2] >= 30


def test_memory_dependence_on_path():
    memory = Memory()
    crit = crit_of(
        """
        li r2, #16
    loop:
        ld r1, 0x40(r31)
        add r1, r1, #1
        st r1, 0x40(r31)
        sub r2, r2, #1
        bne r2, loop
        halt
        """,
        memory,
    )
    # The load-add-store recurrence through memory forms the critical path.
    assert crit[1] >= 10 and crit[2] >= 10 and crit[3] >= 10
    assert crit.get(4, 0) < crit[1]


def test_total_path_length_bounded_by_trace():
    crit = crit_of("li r1, #1\nadd r1, r1, #1\nadd r1, r1, #1\nhalt")
    assert sum(crit.values()) <= 4
    assert crit[1] == 1 and crit[2] == 1
