"""End-to-end integration tests: the paper's headline results in miniature."""

import pytest

from repro.core import ExperimentRunner, ResultTable
from repro.uarch import RecoveryScheme

BUDGET = 25_000


@pytest.fixture(scope="module")
def m88k():
    return ExperimentRunner("m88ksim", max_instructions=BUDGET)


@pytest.fixture(scope="module")
def mgrid():
    return ExperimentRunner("mgrid", max_instructions=BUDGET)


def test_rvp_speeds_up_the_interpreter(m88k):
    """m88ksim: dynamic RVP with the dead list captures the store-load pc
    chain (Figure 2b) and delivers the suite's largest speedup."""
    base = m88k.run("no_predict").ipc
    lvp = m88k.run("lvp_all").ipc
    dead = m88k.run("drvp_all_dead").ipc
    assert dead / base > 1.15
    assert dead > lvp


def test_confidence_keeps_accuracy_high(m88k):
    for config in ("drvp_all", "lvp_all"):
        stats = m88k.run(config).stats
        assert stats.accuracy > 0.9, config


def test_static_rvp_pipeline_runs_marked_program(mgrid):
    result = mgrid.run("srvp_dead")
    assert result.stats.predictions > 0
    assert result.stats.accuracy > 0.8


def test_recovery_ordering_on_interpreter(m88k):
    base = m88k.run("no_predict").ipc
    results = {
        scheme: m88k.run("drvp_all_dead", recovery=scheme).ipc / base for scheme in RecoveryScheme
    }
    # Selective reissue is the best of the three (paper Section 7.1.1).
    assert results[RecoveryScheme.SELECTIVE] >= max(results.values()) - 1e-9
    # All three still deliver gains here.
    assert min(results.values()) > 1.0


def test_gabbay_interference_hurts_coverage(m88k):
    grp = m88k.run("grp_all").stats
    rvp = m88k.run("drvp_all").stats
    # Per-register counters lose coverage to per-pc counters on code whose
    # temps are shared by many instructions.
    assert grp.coverage < rvp.coverage


def test_realistic_realloc_between_base_and_ideal(mgrid):
    base = mgrid.run("drvp_all").ipc
    realloc = mgrid.run("drvp_all_realloc").ipc
    ideal = mgrid.run("drvp_all_dead_lv").ipc
    assert realloc >= base - 0.01
    assert realloc <= max(ideal, base) * 1.03


def test_train_ref_profile_transfer(mgrid):
    """Profiles collected on train transfer to ref (the paper's finding that
    value locality is stable across inputs)."""
    stats = mgrid.run("drvp_all_dead").stats
    assert stats.accuracy > 0.9  # hints learned on train hold on ref
