"""Pipeline simulator tests: commit integrity, timing sanity, prediction and
recovery behaviour."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import ProgramBuilder, R, assemble
from repro.sim import Memory, run_program
from repro.uarch import PipelineSimulator, RecoveryScheme, simulate, table1_config
from repro.vp import DynamicRVP, LastValuePredictor, NoPredictor

from conftest import random_memory, random_program

CFG = table1_config()


def trace_of(text_or_program, memory=None, budget=50_000):
    program = assemble(text_or_program) if isinstance(text_or_program, str) else text_or_program
    return run_program(program, memory=memory, max_instructions=budget, collect_trace=True).trace


def test_commits_every_traced_instruction(tiny_loop_program, tiny_loop_memory):
    trace = trace_of(tiny_loop_program, tiny_loop_memory)
    stats = simulate(trace, NoPredictor(), CFG)
    assert stats.committed == len(trace)
    assert stats.fetched >= stats.committed
    assert stats.cycles > 0


def test_ipc_bounded_by_machine_width(tiny_loop_program, tiny_loop_memory):
    trace = trace_of(tiny_loop_program, tiny_loop_memory)
    stats = simulate(trace, NoPredictor(), CFG)
    assert 0 < stats.ipc <= CFG.commit_width


def test_serial_chain_limits_ipc():
    # A pure dependence chain can't run faster than 1 IPC.
    b = ProgramBuilder("chain")
    with b.procedure("main"):
        b.li(R[1], 0)
        b.li(R[2], 200)
        b.label("loop")
        for _ in range(8):
            b.addi(R[1], R[1], 1)
        b.subi(R[2], R[2], 1)
        b.bne(R[2], "loop")
        b.halt()
    trace = trace_of(b.build())
    stats = simulate(trace, NoPredictor(), CFG)
    assert stats.ipc < 1.6  # chain + loop overhead


def test_independent_work_exceeds_one_ipc():
    b = ProgramBuilder("wide")
    with b.procedure("main"):
        b.li(R[8], 300)
        b.label("loop")
        for i in range(1, 7):
            b.addi(R[i], R[31], i)
        b.subi(R[8], R[8], 1)
        b.bne(R[8], "loop")
        b.halt()
    trace = trace_of(b.build())
    stats = simulate(trace, NoPredictor(), CFG)
    assert stats.ipc > 2.0


def test_cache_misses_slow_execution():
    # Loads striding far apart miss every time vs hitting one line.
    def run(stride):
        b = ProgramBuilder("mem")
        with b.procedure("main"):
            b.li(R[2], 0x10000)
            b.li(R[3], 400)
            b.label("loop")
            b.ld(R[1], R[2], 0)
            b.addi(R[2], R[2], stride)
            b.subi(R[3], R[3], 1)
            b.bne(R[3], "loop")
            b.halt()
        trace = trace_of(b.build(), Memory())
        return simulate(trace, NoPredictor(), CFG)

    hits = run(0)
    misses = run(4096)
    assert misses.l1d_misses > hits.l1d_misses + 100
    assert misses.cycles > hits.cycles


def test_branch_mispredicts_counted(tiny_loop_program, tiny_loop_memory):
    trace = trace_of(tiny_loop_program, tiny_loop_memory)
    stats = simulate(trace, NoPredictor(), CFG)
    assert stats.branch_mispredicts >= 1  # cold loop exit at least


def _predictable_loop_trace():
    memory = Memory()
    memory.store(0x100, 7)
    text = """
        li r2, #400
    loop:
        ld r1, 0x100(r31)
        add r3, r1, #1
        sub r2, r2, #1
        bne r2, loop
        halt
        """
    return trace_of(text, memory)


def test_prediction_stats_and_speedup():
    trace = _predictable_loop_trace()
    base = simulate(trace, NoPredictor(), CFG)
    rvp_stats = simulate(trace, DynamicRVP(), CFG)
    assert rvp_stats.committed == base.committed
    assert rvp_stats.predictions > 100
    assert rvp_stats.accuracy > 0.95
    assert rvp_stats.coverage <= 1.0


@pytest.mark.parametrize("scheme", list(RecoveryScheme))
def test_all_recovery_schemes_commit_everything(scheme):
    trace = _predictable_loop_trace()
    stats = simulate(trace, DynamicRVP(), CFG, scheme)
    assert stats.committed == len(trace)


def test_mispredictions_trigger_recovery():
    # A load whose value changes every 4th iteration at high confidence.
    memory = Memory()
    b = ProgramBuilder("flaky")
    with b.procedure("main"):
        b.li(R[2], 0x10000)
        b.li(R[3], 300)
        b.label("loop")
        b.ld(R[1], R[2], 0)
        b.add(R[4], R[1], R[1])
        b.addi(R[2], R[2], 8)
        b.subi(R[3], R[3], 1)
        b.bne(R[3], "loop")
        b.halt()
    # Runs of 16 equal values -> confident predictions, periodic misses.
    values = []
    v = 1
    for i in range(300):
        if i % 16 == 0:
            v += 1
        values.append(v)
    memory.write_words(0x10000, values)
    trace = trace_of(b.build(), memory)

    refetch = simulate(trace, DynamicRVP(), CFG, RecoveryScheme.REFETCH)
    selective = simulate(trace, DynamicRVP(), CFG, RecoveryScheme.SELECTIVE)
    assert refetch.value_squashes > 5
    assert selective.value_squashes == 0 and selective.reissued_instructions > 5
    assert refetch.committed == selective.committed == len(trace)
    # Both predict substantially despite the periodic misses (refetch predicts
    # less: every squash restarts the front end and the confidence warmup).
    assert refetch.predictions > 50 and selective.predictions > 50
    assert refetch.accuracy > 0.8 and selective.accuracy > 0.8


def test_predictions_only_for_candidates():
    trace = _predictable_loop_trace()
    loads_only = simulate(trace, DynamicRVP(loads_only=True), CFG)
    all_insts = simulate(trace, DynamicRVP(loads_only=False), CFG)
    assert 0 < loads_only.predictions < all_insts.predictions


def test_lvp_predicts_from_table():
    trace = _predictable_loop_trace()
    stats = simulate(trace, LastValuePredictor(loads_only=True), CFG)
    assert stats.predictions > 100 and stats.accuracy > 0.95


def test_runaway_guard():
    trace = _predictable_loop_trace()
    with pytest.raises(RuntimeError, match="exceeded"):
        simulate(trace, NoPredictor(), CFG, max_cycles=10)


def test_truncated_trace_drains():
    trace = _predictable_loop_trace()[:100]  # no halt record
    stats = simulate(trace, NoPredictor(), CFG)
    assert stats.committed == 100


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=3_000))
def test_pipeline_commits_random_programs_under_all_predictors(seed):
    """Co-simulation integrity: the pipeline commits exactly the functional
    trace for random programs, for every predictor and recovery scheme."""
    program = random_program(seed)
    trace = trace_of(program, random_memory(seed))
    for predictor in (NoPredictor(), LastValuePredictor(loads_only=False), DynamicRVP()):
        for scheme in RecoveryScheme:
            stats = simulate(trace, predictor, CFG, scheme)
            assert stats.committed == len(trace), (predictor.name, scheme)
            assert stats.correct_predictions <= stats.predictions <= stats.committed
            if hasattr(predictor, "reset"):
                predictor.reset()
