"""Deadness analysis tests against hand-built traces."""

from repro.isa import R, assemble
from repro.profiling import reg_id, resolve_deadness
from repro.sim import run_program


def trace_of(text):
    return run_program(assemble(text), max_instructions=1000, collect_trace=True).trace


def test_reg_id_layout():
    from repro.isa import F

    assert reg_id(R[0]) == 0 and reg_id(R[31]) == 31
    assert reg_id(F[0]) == 32 and reg_id(F[31]) == 63


def test_read_before_write_is_live():
    # r1 written at 0, read at 2 -> live at seq 1.
    trace = trace_of("li r1, #5\nli r2, #0\nadd r3, r1, #1\nhalt")
    result = resolve_deadness(trace, [(1, reg_id(R[1]))])
    assert result[(1, reg_id(R[1]))] is False


def test_write_before_read_is_dead():
    # r1 overwritten at 2 without an intervening read -> dead at seq 1.
    trace = trace_of("li r1, #5\nli r2, #0\nli r1, #9\nhalt")
    result = resolve_deadness(trace, [(1, reg_id(R[1]))])
    assert result[(1, reg_id(R[1]))] is True


def test_never_touched_again_is_dead():
    trace = trace_of("li r1, #5\nli r2, #0\nhalt")
    result = resolve_deadness(trace, [(1, reg_id(R[1]))])
    assert result[(1, reg_id(R[1]))] is True


def test_own_instruction_read_keeps_register_live():
    # Query at the very seq where the instruction reads r1.
    trace = trace_of("li r1, #5\nadd r2, r1, #1\nli r1, #0\nhalt")
    result = resolve_deadness(trace, [(1, reg_id(R[1]))])
    assert result[(1, reg_id(R[1]))] is False


def test_own_instruction_write_means_dead():
    # At seq 1 the instruction overwrites r2 without reading it.
    trace = trace_of("li r2, #3\nli r2, #4\nhalt")
    result = resolve_deadness(trace, [(1, reg_id(R[2]))])
    assert result[(1, reg_id(R[2]))] is True


def test_queries_past_trace_end_default_dead():
    trace = trace_of("li r1, #5\nhalt")
    result = resolve_deadness(trace, [(99, reg_id(R[1]))])
    assert result[(99, reg_id(R[1]))] is True


def test_multiple_queries_one_pass():
    trace = trace_of("li r1, #1\nli r2, #2\nadd r3, r1, r2\nli r1, #0\nhalt")
    queries = [(2, reg_id(R[1])), (2, reg_id(R[2])), (3, reg_id(R[2]))]
    result = resolve_deadness(trace, queries)
    # At seq 2, both r1 and r2 are read by the add itself -> live.
    assert result[(2, reg_id(R[1]))] is False
    assert result[(2, reg_id(R[2]))] is False
    # After the add, r2 is never touched again -> dead at seq 3.
    assert result[(3, reg_id(R[2]))] is True
