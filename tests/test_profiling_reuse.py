"""Register-reuse profiler tests with hand-constructed value patterns."""

from repro.isa import F, ProgramBuilder, R, assemble
from repro.profiling import ReuseProfile
from repro.sim import Memory, run_program


def profile_of(text, memory=None, budget=20_000):
    result = run_program(assemble(text), memory=memory, max_instructions=budget, collect_trace=True)
    return ReuseProfile.from_trace(result.trace)


def test_same_register_reuse_counted():
    # The load at pc 2 reloads the same (constant) word every iteration.
    memory = Memory()
    memory.store(0x100, 77)
    profile = profile_of(
        """
        li r2, #16
    loop:
        ld r1, 0x100(r31)
        sub r2, r2, #1
        bne r2, loop
        halt
        """,
        memory,
    )
    site = profile.sites[1]
    assert site.is_load and site.count == 16
    assert site.same_hits == 15  # all but the first execution
    assert site.lv_hits == 15


def test_dead_register_correlation_found_with_producer():
    # r1 holds 55 (dead after pc1's use); the load at pc3 loads 55 too.
    memory = Memory()
    memory.store(0x100, 55)
    profile = profile_of(
        """
        li r4, #12
    loop:
        li r1, #55
        add r2, r1, #0
        ld r3, 0x100(r31)
        add r5, r3, r2
        sub r4, r4, #1
        bne r4, loop
        halt
        """,
        memory,
    )
    load_site = next(s for s in profile.sites.values() if s.is_load)
    best = load_site.best_dead()
    assert best is not None
    reg, rate, producer = best
    assert reg == R[1] and rate > 0.9
    assert producer == 1  # the `li r1, #55` inside the loop


def test_live_register_correlation_separated_from_dead():
    # r1 is read *after* the load every iteration -> live at load time.
    memory = Memory()
    memory.store(0x100, 55)
    profile = profile_of(
        """
        li r4, #12
    loop:
        li r1, #55
        ld r3, 0x100(r31)
        add r2, r1, r3
        sub r4, r4, #1
        bne r4, loop
        halt
        """,
        memory,
    )
    load_site = next(s for s in profile.sites.values() if s.is_load)
    assert not load_site.dead_hits or load_site.best_dead()[1] < 0.5
    any_best = load_site.best_any_reg()
    assert any_best is not None and any_best[0] == R[1] and any_best[1] > 0.9


def test_matches_restricted_to_destination_register_class():
    # An fp load whose value sits in an int register must not be hinted to it.
    memory = Memory()
    memory.store(0x100, 55)
    profile = profile_of(
        """
        li r4, #12
    loop:
        li r1, #55
        fld f3, 0x100(r31)
        fadd f2, f3, f3
        sub r4, r4, #1
        bne r4, loop
        halt
        """,
        memory,
    )
    load_site = next(s for s in profile.sites.values() if s.is_load)
    best = load_site.best_dead()
    assert best is None or best[0].is_fp


def test_fig1_fractions_cumulative_on_workload():
    from repro.workloads import make_workload

    workload = make_workload("mgrid")
    result = run_program(*workload.build("ref"), max_instructions=30_000, collect_trace=True)
    f = ReuseProfile.from_trace(result.trace).fig1.fractions()
    assert 0 <= f["same"] <= f["dead"] <= f["any"] <= f["any_or_lvp"] <= 1


def test_profile_lists_threshold_and_min_count():
    memory = Memory()
    memory.store(0x100, 7)
    text = """
        li r2, #20
    loop:
        ld r1, 0x100(r31)
        sub r2, r2, #1
        bne r2, loop
        halt
        """
    profile = profile_of(text, memory)
    lists = profile.profile_lists(threshold=0.8, min_count=8)
    assert 1 in lists.same and 1 in lists.last_value
    # Raising the threshold beyond the hit rate (19/20) excludes the site.
    strict = profile.profile_lists(threshold=0.96, min_count=8)
    assert 1 not in strict.same
    # A high min_count excludes everything in this short run.
    sparse = profile.profile_lists(threshold=0.8, min_count=1000)
    assert not sparse.same and not sparse.dead and not sparse.last_value


def test_loads_only_filter():
    profile = profile_of(
        """
        li r2, #20
    loop:
        add r1, r31, #5
        sub r2, r2, #1
        bne r2, loop
        halt
        """
    )
    all_lists = profile.profile_lists(0.8, loads_only=False)
    load_lists = profile.profile_lists(0.8, loads_only=True)
    assert 1 in all_lists.same  # the constant add
    assert 1 not in load_lists.same


def test_zero_registers_never_matched():
    # Loads of value 0 must not match r31/f31.
    memory = Memory()  # all zeros
    profile = profile_of(
        """
        li r2, #10
    loop:
        ld r1, 0x300(r31)
        sub r2, r2, #1
        bne r2, loop
        halt
        """,
        memory,
    )
    site = next(s for s in profile.sites.values() if s.is_load)
    assert 31 not in site.dead_hits and 31 not in site.live_hits
