"""IRBuilder front-end and the generator's IR frontend."""

import pytest

from repro.analysis.verifier import verify_program
from repro.ir import FP, INT, IRBuilder
from repro.sim import run_program
from repro.sim.memory import Memory
from repro.testing import GeneratorConfig, generate_case


def build_countdown(n=5):
    b = IRBuilder("countdown")
    f = b.function("main")
    f.block("main")
    i = f.var("i", INT)
    f.li(i, n)
    acc = f.var("acc", INT)
    f.li(acc, 0)
    f.block("loop")
    f.add(acc, acc, i)
    f.sub(i, i, 1)
    f.bne(i, "loop")
    f.block("end")
    out = f.var("out", INT)
    f.li(out, 0x2000)
    f.st(acc, out, 0)
    f.halt()
    return b


def test_builder_authors_runnable_program():
    program = build_countdown().program()
    assert verify_program(program) == []
    memory = Memory()
    result = run_program(program, memory=memory, max_instructions=100)
    assert result.halted
    assert memory.read_words(0x2000, 1)[0] == 15


def test_builder_loop_variables_become_phis():
    module = build_countdown().build()
    func = module.functions[0]
    loop_phis = [phi for block in func.blocks if block.label == "loop" for phi in block.phis]
    # i and acc are both loop-carried: SSA construction inserts their phis.
    assert len(loop_phis) == 2


def test_builder_fp_variables_use_fp_file():
    b = IRBuilder("fp")
    f = b.function("main")
    f.block("main")
    x = f.var("x", FP)
    f.fli(x, 3)
    y = f.var("y", FP)
    f.fadd(y, x, x)
    p = f.var("p", INT)
    f.li(p, 0x2000)
    f.fst(y, p, 0)
    f.halt()
    program = b.program()
    assert verify_program(program) == []
    assert any(inst.dst is not None and inst.dst.is_fp for inst in program)


def test_generator_ir_frontend_is_deterministic_and_clean():
    cfg = GeneratorConfig(frontend="ir")
    a = generate_case(7, cfg)
    b = generate_case(7, cfg)
    assert a.program.render() == b.program.render()
    assert verify_program(a.program) == []
    result = run_program(a.program, memory=a.memory(), max_instructions=200_000)
    assert result.halted


def test_generator_ir_frontend_differs_from_flat():
    flat = generate_case(7, GeneratorConfig(frontend="flat"))
    ir = generate_case(7, GeneratorConfig(frontend="ir"))
    # Same seed, different pipeline: the IR case came through the allocator.
    assert flat.program.render() != ir.program.render()
    assert ir.program.source_map is not None


def test_generator_rejects_unknown_frontend():
    with pytest.raises(ValueError, match="frontend"):
        GeneratorConfig(frontend="llvm").validated()
