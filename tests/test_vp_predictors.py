"""Value-predictor unit tests: confidence counters, LVP, RVP, Gabbay, static."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import F, Instruction, R, opcode
from repro.profiling import DeadHint, ProfileLists
from repro.vp import (
    COUNTER_MAX,
    DEFAULT_THRESHOLD,
    DynamicRVP,
    GabbayRegisterPredictor,
    LastValuePredictor,
    NoPredictor,
    ResettingCounterTable,
    SourceKind,
    StaticRVP,
)


def load(pc, dst=R[1]):
    return Instruction(op=opcode("ld"), dst=dst, src1=R[2], imm=0, pc=pc)


def add(pc, dst=R[1]):
    return Instruction(op=opcode("add"), dst=dst, src1=R[2], imm=1, pc=pc)


def store(pc):
    return Instruction(op=opcode("st"), src1=R[2], src2=R[3], imm=0, pc=pc)


# ----------------------------------------------------------------------
# Resetting counters
# ----------------------------------------------------------------------
def test_counter_needs_seven_consecutive_hits():
    table = ResettingCounterTable(64)
    for i in range(DEFAULT_THRESHOLD):
        assert not table.confident(5)
        table.update(5, True)
    assert table.confident(5)


def test_counter_resets_on_miss():
    table = ResettingCounterTable(64)
    for _ in range(10):
        table.update(5, True)
    table.update(5, False)
    assert not table.confident(5) and table.value(5) == 0


def test_counter_saturates():
    table = ResettingCounterTable(64)
    for _ in range(100):
        table.update(5, True)
    assert table.value(5) == COUNTER_MAX


def test_counter_untagged_indexing_aliases():
    table = ResettingCounterTable(64)
    for _ in range(8):
        table.update(3, True)
    assert table.confident(3 + 64)  # aliases to the same counter


def test_counter_rejects_bad_config():
    with pytest.raises(ValueError):
        ResettingCounterTable(100)  # not a power of two
    with pytest.raises(ValueError):
        ResettingCounterTable(64, threshold=9)


@given(st.lists(st.booleans(), max_size=60))
def test_counter_value_is_clipped_streak(outcomes):
    table = ResettingCounterTable(64)
    streak = 0
    for outcome in outcomes:
        table.update(7, outcome)
        streak = min(streak + 1, COUNTER_MAX) if outcome else 0
        assert table.value(7) == streak


# ----------------------------------------------------------------------
# LVP
# ----------------------------------------------------------------------
def test_lvp_learns_and_predicts():
    lvp = LastValuePredictor(entries=64, loads_only=True)
    inst = load(pc=10)
    assert lvp.source(inst) is not None
    for _ in range(8):
        lvp.update(10, True, 42)
    assert lvp.confident(10)
    assert lvp.stored_value(10) == 42


def test_lvp_value_change_resets_confidence():
    lvp = LastValuePredictor(entries=64)
    for _ in range(8):
        lvp.update(10, True, 42)
    lvp.update(10, False, 99)
    assert not lvp.confident(10)
    assert lvp.stored_value(10) == 99  # value still updated


def test_lvp_tag_conflict_steals_entry():
    lvp = LastValuePredictor(entries=64)
    for _ in range(8):
        lvp.update(10, True, 42)
    lvp.update(10 + 64, True, 7)  # same index, different pc
    assert lvp.stored_value(10) is None  # tag mismatch -> no prediction
    assert not lvp.confident(10)
    assert lvp.stored_value(10 + 64) == 7


def test_lvp_untagged_mode_shares_entries():
    lvp = LastValuePredictor(entries=64, tagged=False)
    for _ in range(8):
        lvp.update(10, True, 42)
    assert lvp.stored_value(10 + 64) == 42


def test_lvp_loads_only_filter():
    loads_only = LastValuePredictor(loads_only=True)
    everything = LastValuePredictor(loads_only=False)
    assert loads_only.source(add(1)) is None
    assert everything.source(add(1)) is not None
    assert loads_only.source(store(2)) is None and everything.source(store(2)) is None


def test_lvp_is_table_backed():
    assert LastValuePredictor().table_backed
    assert getattr(DynamicRVP(), "table_backed", False) is False


# ----------------------------------------------------------------------
# Dynamic RVP
# ----------------------------------------------------------------------
def test_rvp_default_source_is_destination():
    rvp = DynamicRVP()
    source = rvp.source(load(5))
    assert source.kind is SourceKind.DST and source.reg is None


def test_rvp_dead_hint_redirects_source():
    lists = ProfileLists(threshold=0.8)
    lists.dead[5] = DeadHint(reg=R[7], producer_pc=2)
    rvp = DynamicRVP(lists=lists, use_dead=True)
    source = rvp.source(load(5))
    assert source.kind is SourceKind.REG and source.reg == R[7]
    # Without the flag the hint is ignored.
    plain = DynamicRVP(lists=lists, use_dead=False)
    assert plain.source(load(5)).kind is SourceKind.DST


def test_rvp_kind_mismatched_hint_falls_back():
    lists = ProfileLists(threshold=0.8)
    lists.dead[5] = DeadHint(reg=F[7], producer_pc=2)  # fp hint for int load
    rvp = DynamicRVP(lists=lists, use_dead=True)
    assert rvp.source(load(5)).kind is SourceKind.DST


def test_rvp_lv_hint_uses_stored_previous_result():
    lists = ProfileLists(threshold=0.8)
    lists.last_value.add(5)
    rvp = DynamicRVP(lists=lists, use_lv=True)
    assert rvp.source(load(5)).kind is SourceKind.STORED
    assert rvp.stored_value(5) is None
    rvp.update(5, True, 33)
    assert rvp.stored_value(5) == 33


def test_rvp_same_list_beats_hints():
    lists = ProfileLists(threshold=0.8)
    lists.same.add(5)
    lists.dead[5] = DeadHint(reg=R[7], producer_pc=2)
    rvp = DynamicRVP(lists=lists, use_dead=True)
    assert rvp.source(load(5)).kind is SourceKind.DST


def test_rvp_loads_only():
    rvp = DynamicRVP(loads_only=True)
    assert rvp.source(add(1)) is None
    assert rvp.source(load(1)) is not None


def test_rvp_confidence_threshold():
    rvp = DynamicRVP()
    for _ in range(6):
        rvp.update(9, True, 1)
    assert not rvp.confident(9)
    rvp.update(9, True, 1)
    assert rvp.confident(9)


def test_rvp_names():
    assert DynamicRVP().name == "drvp_all"
    assert DynamicRVP(loads_only=True).name == "drvp"
    assert DynamicRVP(use_dead=True, use_lv=True).name == "drvp_all_dead_lv"


# ----------------------------------------------------------------------
# Gabbay register predictor
# ----------------------------------------------------------------------
def test_gabbay_counters_shared_per_register():
    grp = GabbayRegisterPredictor()
    a = load(5, dst=R[3])
    b = add(9, dst=R[3])
    grp.source(a)
    grp.source(b)
    for _ in range(7):
        grp.update(5, True, 1)  # trains r3's counter via pc 5
    assert grp.confident(9)  # pc 9 shares r3's counter
    grp.update(9, False, 2)  # interference: pc 9 resets it
    assert not grp.confident(5)


def test_gabbay_distinct_registers_independent():
    grp = GabbayRegisterPredictor()
    grp.source(load(1, dst=R[3]))
    grp.source(load(2, dst=R[4]))
    for _ in range(7):
        grp.update(1, True, 1)
    assert grp.confident(1) and not grp.confident(2)


# ----------------------------------------------------------------------
# Static RVP
# ----------------------------------------------------------------------
def test_static_rvp_only_marked_loads():
    srvp = StaticRVP()
    marked = load(3).as_rvp_marked()
    assert srvp.source(marked) is not None
    assert srvp.source(load(3)) is None
    assert srvp.confident(3)  # unconditional


def test_static_rvp_hint_sources():
    lists = ProfileLists(threshold=0.8)
    lists.dead[3] = DeadHint(reg=R[9], producer_pc=1)
    lists.last_value.add(4)
    srvp = StaticRVP(lists=lists, use_dead=True, use_lv=True)
    assert srvp.source(load(3).as_rvp_marked()).kind is SourceKind.REG
    assert srvp.source(load(4).as_rvp_marked()).kind is SourceKind.STORED


def test_no_predictor_never_predicts():
    none = NoPredictor()
    assert none.source(load(1)) is None and not none.confident(1)
