"""Tests for the ``repro bench`` harness: numbering, comparison, CLI codes."""

from __future__ import annotations

import json
import os

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    BenchConfig,
    compare_benchmarks,
    find_latest_bench,
    next_bench_path,
    run_benchmarks,
)
from repro.bench.harness import load_bench
from repro.cli import main


# ----------------------------------------------------------------------
# Baseline file numbering
# ----------------------------------------------------------------------
def test_bench_numbering(tmp_path):
    root = str(tmp_path)
    assert find_latest_bench(root) is None
    assert os.path.basename(next_bench_path(root)) == "BENCH_1.json"
    (tmp_path / "BENCH_1.json").write_text("{}")
    (tmp_path / "BENCH_3.json").write_text("{}")
    (tmp_path / "BENCH_notanumber.json").write_text("{}")
    assert os.path.basename(find_latest_bench(root)) == "BENCH_3.json"
    assert os.path.basename(next_bench_path(root)) == "BENCH_4.json"


def test_load_bench_rejects_wrong_schema(tmp_path):
    path = tmp_path / "BENCH_1.json"
    path.write_text(json.dumps({"schema": "something-else"}))
    with pytest.raises(ValueError, match="not a repro-bench/1 file"):
        load_bench(str(path))


# ----------------------------------------------------------------------
# Regression comparison
# ----------------------------------------------------------------------
def _payload(fast, trace, pipeline):
    return {
        "summary": {
            "fast_minstr_s_geomean": fast,
            "trace_minstr_s_geomean": trace,
            "pipeline_cycles_per_s_geomean": pipeline,
        }
    }


def test_compare_statuses():
    baseline = _payload(10.0, 1.0, 100.0)
    current = _payload(11.0, 0.85, 60.0)  # faster / -15% (warn) / -40% (fail)
    report = {e["metric"]: e for e in compare_benchmarks(current, baseline)}
    assert report["fast_minstr_s_geomean"]["status"] == "ok"
    assert report["fast_minstr_s_geomean"]["drop"] < 0
    assert report["trace_minstr_s_geomean"]["status"] == "warn"
    assert report["pipeline_cycles_per_s_geomean"]["status"] == "fail"


def test_compare_skips_metrics_absent_from_current():
    assert compare_benchmarks({"summary": {}}, _payload(1.0, 1.0, 1.0)) == []


def test_compare_reports_metrics_absent_from_baseline_as_missing():
    # A series measured now but not in the baseline must not gate the run:
    # the entries come back as non-failing "missing" until a baseline that
    # carries the series is committed.
    report = compare_benchmarks(_payload(1.0, 1.0, 1.0), {})
    assert report and all(e["status"] == "missing" for e in report)
    assert all(e["baseline"] is None and e["drop"] is None for e in report)

    current = _payload(1.0, 1.0, 1.0)
    current["summary"]["jit_minstr_s_geomean"] = 4.0
    current["summary"]["batched_minstr_s_per_lane_geomean"] = 9.0
    report = {e["metric"]: e for e in compare_benchmarks(current, _payload(1.0, 1.0, 1.0))}
    assert report["jit_minstr_s_geomean"]["status"] == "missing"
    assert report["batched_minstr_s_per_lane_geomean"]["status"] == "missing"
    assert report["fast_minstr_s_geomean"]["status"] == "ok"


def test_compare_custom_thresholds():
    baseline = _payload(10.0, 10.0, 10.0)
    current = _payload(8.0, 8.0, 8.0)  # uniform -20%
    default = compare_benchmarks(current, baseline)
    assert {e["status"] for e in default} == {"warn"}
    strict = compare_benchmarks(current, baseline, fail_threshold=0.15)
    assert {e["status"] for e in strict} == {"fail"}


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
def test_config_validation():
    with pytest.raises(ValueError, match="unknown workload"):
        BenchConfig(workloads=("nope",)).validated()
    with pytest.raises(ValueError, match="max_instructions"):
        BenchConfig(max_instructions=0).validated()
    with pytest.raises(ValueError, match="repeats"):
        BenchConfig(repeats=0).validated()
    with pytest.raises(ValueError, match="lanes"):
        BenchConfig(lanes=0).validated()
    quick = BenchConfig.quick_config()
    assert quick.quick and quick.validated() is not None


def test_default_workloads_cover_the_full_registry():
    # The default bench sweep must track the registry: a workload added to
    # the suite (dotprod and stencil were once missing) is benchmarked the
    # moment it lands, without a harness edit.
    from repro.workloads.suite import WORKLOAD_CLASSES

    assert tuple(BenchConfig().workloads) == tuple(WORKLOAD_CLASSES)
    assert "dotprod" in BenchConfig().workloads
    assert "stencil" in BenchConfig().workloads


# ----------------------------------------------------------------------
# A tiny real campaign + the CLI surface
# ----------------------------------------------------------------------
def test_run_benchmarks_payload_shape():
    config = BenchConfig(workloads=("li",), max_instructions=300, repeats=1, lanes=2)
    payload = run_benchmarks(config)
    assert payload["schema"] == BENCH_SCHEMA
    funcsim = payload["results"]["funcsim"]["li"]
    assert funcsim["instructions"] > 0
    assert funcsim["fast_minstr_s"] > 0
    engines = payload["results"]["engines"]["li"]
    assert engines["jit_minstr_s"] > 0
    assert engines["lanes"] == 2
    assert engines["lane_instructions"] == 2 * engines["instructions"]
    assert engines["batched_minstr_s_per_lane"] > 0
    assert payload["results"]["pipeline"]["li"]["cycles"] > 0
    session = payload["results"]["session"]["li"]
    assert session["warm_s"] <= session["cold_s"]
    assert payload["summary"]["fast_speedup_geomean"] > 0
    assert payload["summary"]["jit_minstr_s_geomean"] > 0
    assert payload["summary"]["batched_minstr_s_per_lane_geomean"] > 0
    assert payload["config"]["lanes"] == 2


def _bench_cli(*extra):
    return main(
        ["bench", "--workload", "li", "--max-insts", "300", "--repeats", "1", "--no-write", "--json"]
        + list(extra)
    )


def test_cli_bench_clean_exit(tmp_path, monkeypatch, capsys):
    # chdir away from the repo root so a committed BENCH_<n>.json baseline
    # cannot be auto-discovered (timing noise must not fail this test).
    monkeypatch.chdir(tmp_path)
    assert _bench_cli() == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == BENCH_SCHEMA


def test_cli_bench_regression_exit(tmp_path, capsys):
    baseline = {
        "schema": BENCH_SCHEMA,
        "summary": {
            "fast_minstr_s_geomean": 1e9,
            "trace_minstr_s_geomean": 1e9,
            "pipeline_cycles_per_s_geomean": 1e15,
        },
    }
    path = tmp_path / "BENCH_1.json"
    path.write_text(json.dumps(baseline))
    assert _bench_cli("--baseline", str(path)) == 1
    payload = json.loads(capsys.readouterr().out)
    statuses = {e["status"] for e in payload["baseline"]["comparisons"]}
    assert "fail" in statuses


def test_cli_bench_bad_baseline_exit(tmp_path, capsys):
    path = tmp_path / "BENCH_1.json"
    path.write_text(json.dumps({"schema": "bogus"}))
    assert _bench_cli("--baseline", str(path)) == 2
    capsys.readouterr()


def test_cli_bench_tolerates_corrupt_auto_baseline(tmp_path, capsys):
    """A truncated auto-discovered baseline (crashed previous run, botched
    merge) must warn and continue, not kill the measurement run."""
    (tmp_path / "BENCH_1.json").write_text('{"schema": "repro-bench/1", "summ')  # torn
    code = _bench_cli("--out-dir", str(tmp_path))
    assert code == 0
    captured = capsys.readouterr()
    assert "ignoring unreadable baseline" in captured.err
    assert "BENCH_1.json" in captured.err
    payload = json.loads(captured.out)
    assert payload.get("baseline") is None  # ran uncompared, not against garbage


def test_cli_bench_tolerates_wrong_schema_auto_baseline(tmp_path, capsys):
    (tmp_path / "BENCH_2.json").write_text(json.dumps({"schema": "bogus/0"}))
    assert _bench_cli("--out-dir", str(tmp_path)) == 0
    assert "ignoring unreadable baseline" in capsys.readouterr().err


def test_cli_bench_explicit_bad_baseline_still_fails(tmp_path, capsys):
    # Auto-discovery degrades gracefully; an *explicit* --baseline the user
    # named is a hard error — silently ignoring it would fake a clean bill.
    path = tmp_path / "broken.json"
    path.write_text("not json")
    assert _bench_cli("--baseline", str(path)) == 2
    capsys.readouterr()


def test_write_bench_is_atomic_and_loadable(tmp_path):
    from repro.bench import write_bench

    target = tmp_path / "BENCH_1.json"
    payload = {"schema": BENCH_SCHEMA, "summary": {"fast_minstr_s_geomean": 1.0}}
    write_bench(str(target), payload)
    assert load_bench(str(target)) == payload
    # temp+rename leaves nothing else behind
    assert os.listdir(tmp_path) == ["BENCH_1.json"]


def test_cli_bench_out_dir_numbering(tmp_path, capsys):
    """--out-dir is both where baselines are discovered and where the new
    BENCH_<n>.json lands."""
    assert _bench_cli_write("--out-dir", str(tmp_path)) == 0
    # The second run auto-compares against BENCH_1 written moments ago;
    # timing noise on a tiny budget may legitimately warn/fail (exit 1),
    # but the new baseline must be written either way.
    assert _bench_cli_write("--out-dir", str(tmp_path)) in (0, 1)
    capsys.readouterr()
    names = sorted(p.name for p in tmp_path.glob("BENCH_*.json"))
    assert names == ["BENCH_1.json", "BENCH_2.json"]
    assert load_bench(str(tmp_path / "BENCH_2.json"))["schema"] == BENCH_SCHEMA


def _bench_cli_write(*extra):
    return main(
        ["bench", "--workload", "li", "--max-insts", "300", "--repeats", "1", "--json"]
        + list(extra)
    )


def test_cli_bench_writes_out_file(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    out = tmp_path / "bench.json"
    code = main(
        ["bench", "--workload", "li", "--max-insts", "300", "--repeats", "1",
         "--out", str(out), "--json"]
    )
    assert code == 0
    capsys.readouterr()
    assert load_bench(str(out))["config"]["workloads"] == ["li"]
