"""Extended-baseline predictor tests: stride and memory renaming."""

import pytest

from repro.isa import Instruction, MASK64, R, opcode
from repro.vp import MemoryRenamingPredictor, StridePredictor


def load(pc):
    return Instruction(op=opcode("ld"), dst=R[1], src1=R[2], imm=0, pc=pc)


def add(pc):
    return Instruction(op=opcode("add"), dst=R[1], src1=R[2], imm=1, pc=pc)


# ----------------------------------------------------------------------
# Stride
# ----------------------------------------------------------------------
def test_stride_learns_arithmetic_sequence():
    sp = StridePredictor(entries=64)
    for i in range(10):
        sp.update(5, True, 100 + 8 * i)
    assert sp.confident(5)
    assert sp.stored_value(5) == 100 + 8 * 10  # next term


def test_stride_zero_stride_is_last_value():
    sp = StridePredictor(entries=64)
    for _ in range(9):
        sp.update(5, True, 42)
    assert sp.confident(5) and sp.stored_value(5) == 42


def test_stride_change_resets_confidence():
    sp = StridePredictor(entries=64)
    for i in range(10):
        sp.update(5, True, 8 * i)
    sp.update(5, False, 1000)
    assert not sp.confident(5)
    # Re-learns the new stride from the new base.
    for i in range(9):
        sp.update(5, True, 1000 + 4 * i)
    assert sp.confident(5)


def test_stride_wraps_modulo_64_bits():
    sp = StridePredictor(entries=64)
    values = [(MASK64 - 4 + 3 * i) & MASK64 for i in range(10)]  # crosses 2^64
    for v in values:
        sp.update(5, True, v)
    assert sp.confident(5)
    assert sp.stored_value(5) == (values[-1] + 3) & MASK64


def test_stride_tag_conflicts():
    sp = StridePredictor(entries=64)
    for i in range(10):
        sp.update(5, True, i)
    sp.update(5 + 64, True, 7)  # steals the entry
    assert not sp.confident(5) and sp.stored_value(5) is None


def test_stride_loads_only_filter():
    sp = StridePredictor(loads_only=True)
    assert sp.source(add(1)) is None and sp.source(load(1)) is not None
    assert StridePredictor(loads_only=False).source(add(1)) is not None


# ----------------------------------------------------------------------
# Memory renaming
# ----------------------------------------------------------------------
def test_memren_only_predicts_loads():
    mr = MemoryRenamingPredictor(entries=64)
    assert mr.source(add(1)) is None
    assert mr.source(load(1)) is not None


def test_memren_learns_stable_channel():
    mr = MemoryRenamingPredictor(entries=64)
    for i in range(9):
        mr.observe_store(pc=3, addr=0x100, value=10 + i)
        mr.update_load(pc=7, addr=0x100, actual=10 + i)
    # The channel (store pc 3 -> load pc 7) is stable; the prediction is the
    # latest stored value — even though it changes every iteration.
    assert mr.confident(7)
    mr.observe_store(pc=3, addr=0x100, value=99)
    assert mr.stored_value(7) == 99


def test_memren_channel_change_resets():
    mr = MemoryRenamingPredictor(entries=64)
    for i in range(9):
        mr.observe_store(pc=3, addr=0x100, value=i)
        mr.update_load(pc=7, addr=0x100, actual=i)
    assert mr.confident(7)
    mr.observe_store(pc=4, addr=0x100, value=55)  # different store pc
    mr.update_load(pc=7, addr=0x100, actual=55)
    assert not mr.confident(7)


def test_memren_no_store_seen():
    mr = MemoryRenamingPredictor(entries=64)
    mr.update_load(pc=7, addr=0x100, actual=5)
    mr.update_load(pc=7, addr=0x100, actual=5)
    assert not mr.confident(7)


def test_memren_store_cache_bounded():
    mr = MemoryRenamingPredictor(entries=64, store_cache=4)
    for i in range(10):
        mr.observe_store(pc=1, addr=0x100 + 8 * i, value=i)
    assert len(mr._stores) <= 4


# ----------------------------------------------------------------------
# End-to-end through the experiment runner
# ----------------------------------------------------------------------
@pytest.mark.parametrize("config", ("stride", "stride_all", "memren"))
def test_extended_configs_run(config):
    from repro.core import ExperimentRunner

    runner = ExperimentRunner("m88ksim", max_instructions=12_000)
    result = runner.run(config)
    assert result.stats.committed > 5_000
    assert 0 <= result.stats.coverage <= 1
    if result.stats.predictions:
        assert result.stats.accuracy > 0.5


def test_memren_catches_the_pc_channel():
    """The m88ksim guest-pc load is a pure store->load channel: memory
    renaming should find substantial coverage on it (unlike LVP)."""
    from repro.core import ExperimentRunner

    runner = ExperimentRunner("m88ksim", max_instructions=15_000)
    memren = runner.run("memren").stats
    assert memren.predictions > 100
