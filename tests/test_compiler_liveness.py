"""Liveness dataflow tests."""

from repro.isa import R, assemble
from repro.isa.registers import ARG_REGS, STACK_POINTER
from repro.compiler import compute_liveness, defs_and_uses


def liveness_of(text, proc_name="main"):
    program = assemble(text)
    proc = program.procedure(proc_name) if any(p.name == proc_name for p in program.procedures) else program.procedures[0]
    return program, proc, compute_liveness(program, proc)


def test_straightline_liveness():
    program, proc, info = liveness_of(
        """
        li r1, #1
        li r2, #2
        add r3, r1, r2
        st r3, 0(r31)
        halt
        """
    )
    assert info.is_live_in(2, R[1]) and info.is_live_in(2, R[2])
    assert not info.is_live_out(2, R[1])  # last use at the add
    assert info.is_live_out(2, R[3]) and not info.is_live_out(3, R[3])


def test_loop_carried_liveness():
    program, proc, info = liveness_of(
        """
        li r1, #10
    loop:
        sub r1, r1, #1
        bne r1, loop
        halt
        """
    )
    # The counter is live around the back edge.
    assert info.is_live_in(1, R[1])
    assert info.is_live_out(2, R[1])


def test_dead_on_one_path():
    program, proc, info = liveness_of(
        """
        li r1, #5
        beq r31, skip
        add r2, r1, #1
    skip:
        halt
        """
    )
    # r1 used on the fallthrough path -> live after its definition.
    assert info.is_live_out(0, R[1])


def test_call_implicit_effects():
    program = assemble(
        """
    .proc main
    main:
        jsr r26, callee
        halt
    .proc callee
    callee:
        ret r26
        """
    )
    jsr = program[0]
    defs, uses = defs_and_uses(jsr)
    assert set(ARG_REGS) <= uses and STACK_POINTER in uses
    assert R[1] in defs  # volatiles clobbered
    assert R[9] not in defs  # callee-saved preserved
    assert R[26] in defs  # link register


def test_exit_keeps_nonvolatiles_live():
    program, proc, info = liveness_of(
        """
        li r9, #5
        li r1, #5
        halt
        """
    )
    # Callee-saved r9 is implicitly used at the exit; volatile r1 is not.
    assert info.is_live_out(0, R[9])
    assert not info.is_live_out(1, R[1])


def test_liveness_confined_to_procedure():
    program = assemble(
        """
    .proc main
    main:
        li r1, #1
        halt
    .proc other
    other:
        add r2, r1, #1
        ret r26
        """
    )
    info = compute_liveness(program, program.procedure("main"))
    # The other procedure's use of r1 must not leak into main's analysis.
    assert not info.is_live_out(0, R[1])
