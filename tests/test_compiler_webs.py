"""Web (du-chain) construction tests."""

from repro.isa import R, assemble
from repro.compiler import build_webs, compute_liveness


def webs_of(text, proc_name=None):
    program = assemble(text)
    proc = program.procedure(proc_name) if proc_name else program.procedures[0]
    liveness = compute_liveness(program, proc)
    return program, build_webs(program, proc, liveness)


def test_disjoint_defs_make_separate_webs():
    program, analysis = webs_of(
        """
        li r1, #1
        add r2, r1, #1
        li r1, #2
        add r3, r1, #1
        halt
        """
    )
    w0 = analysis.web_of_def(0)
    w2 = analysis.web_of_def(2)
    assert w0 is not None and w2 is not None and w0.index != w2.index
    assert analysis.web_of_use(1, "src1").index == w0.index
    assert analysis.web_of_use(3, "src1").index == w2.index


def test_merging_defs_through_common_use():
    program, analysis = webs_of(
        """
        li r1, #1
        beq r31, other
        li r2, #10
        br join
    other:
        li r2, #20
    join:
        add r3, r2, #1
        halt
        """
    )
    # Both definitions of r2 reach the join use -> one web.
    assert analysis.web_of_def(2).index == analysis.web_of_def(4).index


def test_loop_web_includes_backedge_flow():
    program, analysis = webs_of(
        """
        li r1, #10
    loop:
        sub r1, r1, #1
        bne r1, loop
        halt
        """
    )
    # init def and loop def reach the same uses -> single web.
    assert analysis.web_of_def(0).index == analysis.web_of_def(1).index
    web = analysis.web_of_def(0)
    assert 1 in web.live_pcs and 2 in web.live_pcs


def test_fixed_webs_at_convention_boundaries():
    program, analysis = webs_of(
        """
    .proc main
    main:
        li r16, #1
        jsr r26, callee
        halt
    .proc callee
    callee:
        ret r26
        """,
        proc_name="main",
    )
    # The argument web is consumed by the call's implicit use -> fixed.
    arg_web = analysis.web_of_def(0)
    assert arg_web.fixed


def test_plain_temp_web_not_fixed():
    program, analysis = webs_of(
        """
        li r1, #1
        add r2, r1, #1
        st r2, 0(r31)
        halt
        """
    )
    assert not analysis.web_of_def(0).fixed
    assert not analysis.web_of_def(1).fixed


def test_callee_saved_reaching_exit_is_fixed():
    program, analysis = webs_of(
        """
        li r9, #1
        st r9, 0(r31)
        halt
        """
    )
    # r9 (non-volatile) reaches the implicit exit use -> fixed.
    assert analysis.web_of_def(0).fixed


MULTI_PROC_JOIN = """
.proc main
main:
    li r1, #1
    beq r31, m_other
    li r2, #10
    br m_join
m_other:
    li r2, #20
m_join:
    add r3, r2, #1
    jsr r26, helper
    halt
.proc helper
helper:
    li r1, #7
    beq r31, h_other
    li r2, #30
    br h_join
h_other:
    li r2, #40
h_join:
    add r3, r2, #1
    ret r26
"""


def test_join_webs_in_multi_procedure_program():
    """Join-path merging stays per procedure even when both procedures use
    the same register names (regression guard for the entry-path-at-joins
    bug class: a second procedure's defs must never leak into the first's
    reaching-definition sets)."""
    program = assemble(MULTI_PROC_JOIN)
    by_proc = {}
    for proc in program.procedures:
        liveness = compute_liveness(program, proc)
        by_proc[proc.name] = build_webs(program, proc, liveness)

    main = by_proc["main"]
    helper = by_proc["helper"]
    # Within each procedure: both defs of r2 reach the join use -> one web.
    assert main.web_of_def(2).index == main.web_of_def(4).index
    h_start = program.procedure("helper").start
    assert helper.web_of_def(h_start + 2).index == helper.web_of_def(h_start + 4).index
    # Across procedures: same register name, disjoint webs — no shared pcs.
    main_pcs = set(main.web_of_def(2).live_pcs)
    helper_pcs = set(helper.web_of_def(h_start + 2).live_pcs)
    assert not (main_pcs & helper_pcs)


def test_multi_procedure_join_webs_match_ssa_phi_webs():
    """The SSA mid-end's phi-congruence classes must agree with the flat
    join-path webs on a two-procedure program sharing register names: both
    r2 defs feed the join phi, so they land in one phi web per function —
    and the two functions' webs are built independently."""
    from repro.ir import raise_program
    from repro.ir.nodes import Value
    from repro.ir.passes import phi_webs

    program = assemble(MULTI_PROC_JOIN)
    module = raise_program(program)
    for proc in program.procedures:
        func = module.function(proc.name)
        webs = phi_webs(func)
        r2_defs = {
            pc
            for pc in range(proc.start, proc.end)
            if program[pc].writes is not None and program[pc].writes.name == "r2"
        }
        assert len(r2_defs) == 2
        vids = [
            instr.dst.vid
            for block in func.blocks
            for instr in block.instrs
            if instr.origin_pc in r2_defs and isinstance(instr.dst, Value)
        ]
        assert len(vids) == 2
        assert webs.web_of[vids[0]] == webs.web_of[vids[1]]


def test_live_pcs_cover_definition_points():
    program, analysis = webs_of("li r1, #1\nadd r2, r1, #1\nst r2, 0(r31)\nhalt")
    web = analysis.web_of_def(0)
    assert 0 in web.live_pcs and 1 in web.live_pcs
