"""Web (du-chain) construction tests."""

from repro.isa import R, assemble
from repro.compiler import build_webs, compute_liveness


def webs_of(text, proc_name=None):
    program = assemble(text)
    proc = program.procedure(proc_name) if proc_name else program.procedures[0]
    liveness = compute_liveness(program, proc)
    return program, build_webs(program, proc, liveness)


def test_disjoint_defs_make_separate_webs():
    program, analysis = webs_of(
        """
        li r1, #1
        add r2, r1, #1
        li r1, #2
        add r3, r1, #1
        halt
        """
    )
    w0 = analysis.web_of_def(0)
    w2 = analysis.web_of_def(2)
    assert w0 is not None and w2 is not None and w0.index != w2.index
    assert analysis.web_of_use(1, "src1").index == w0.index
    assert analysis.web_of_use(3, "src1").index == w2.index


def test_merging_defs_through_common_use():
    program, analysis = webs_of(
        """
        li r1, #1
        beq r31, other
        li r2, #10
        br join
    other:
        li r2, #20
    join:
        add r3, r2, #1
        halt
        """
    )
    # Both definitions of r2 reach the join use -> one web.
    assert analysis.web_of_def(2).index == analysis.web_of_def(4).index


def test_loop_web_includes_backedge_flow():
    program, analysis = webs_of(
        """
        li r1, #10
    loop:
        sub r1, r1, #1
        bne r1, loop
        halt
        """
    )
    # init def and loop def reach the same uses -> single web.
    assert analysis.web_of_def(0).index == analysis.web_of_def(1).index
    web = analysis.web_of_def(0)
    assert 1 in web.live_pcs and 2 in web.live_pcs


def test_fixed_webs_at_convention_boundaries():
    program, analysis = webs_of(
        """
    .proc main
    main:
        li r16, #1
        jsr r26, callee
        halt
    .proc callee
    callee:
        ret r26
        """,
        proc_name="main",
    )
    # The argument web is consumed by the call's implicit use -> fixed.
    arg_web = analysis.web_of_def(0)
    assert arg_web.fixed


def test_plain_temp_web_not_fixed():
    program, analysis = webs_of(
        """
        li r1, #1
        add r2, r1, #1
        st r2, 0(r31)
        halt
        """
    )
    assert not analysis.web_of_def(0).fixed
    assert not analysis.web_of_def(1).fixed


def test_callee_saved_reaching_exit_is_fixed():
    program, analysis = webs_of(
        """
        li r9, #1
        st r9, 0(r31)
        halt
        """
    )
    # r9 (non-volatile) reaches the implicit exit use -> fixed.
    assert analysis.web_of_def(0).fixed


def test_live_pcs_cover_definition_points():
    program, analysis = webs_of("li r1, #1\nadd r2, r1, #1\nst r2, 0(r31)\nhalt")
    web = analysis.web_of_def(0)
    assert 0 in web.live_pcs and 1 in web.live_pcs
