"""Recovery-scheme structural behaviour: IQ holding and squash mechanics.

These tests poke the pipeline's internals to verify the Section 7.1.1
structural claims directly, not just their IPC consequences:

* refetch frees instruction-queue entries at issue;
* selective reissue holds exactly the speculative cone;
* reissue holds everything younger than the oldest unresolved prediction;
* refetch squashes re-fetch and re-commit the same instructions.
"""

from repro.isa import ProgramBuilder, R
from repro.sim import Memory, run_program
from repro.uarch import PipelineSimulator, RecoveryScheme, table1_config
from repro.vp import DynamicRVP, NoPredictor


def predictable_trace(n=300, flip_every=None):
    """A loop with one highly-predictable load feeding dependent work."""
    b = ProgramBuilder("probe")
    with b.procedure("main"):
        b.li(R[2], 0x8000)
        b.li(R[3], n)
        b.label("loop")
        b.ld(R[1], R[2], 0)
        b.add(R[4], R[1], 1)
        b.add(R[5], R[4], 1)
        b.addi(R[2], R[2], 8)
        b.subi(R[3], R[3], 1)
        b.bne(R[3], "loop")
        b.halt()
    memory = Memory()
    if flip_every:
        values = [1 + (i // flip_every) for i in range(n)]
    else:
        values = [7] * n
    memory.write_words(0x8000, values)
    return run_program(b.build(), memory=memory, max_instructions=10_000, collect_trace=True).trace


def run_pipe(trace, scheme, predictor=None):
    sim = PipelineSimulator(trace, predictor or DynamicRVP(), table1_config(), scheme)
    stats = sim.run()
    return sim, stats


def test_iq_occupancy_ordering_across_schemes():
    trace = predictable_trace()
    occupancy = {}
    for scheme in RecoveryScheme:
        sim, stats = run_pipe(trace, scheme)
        occupancy[scheme] = stats.iq_occupancy_sum / max(1, stats.cycles)
    # Refetch releases at issue: it can never hold more than reissue, which
    # holds everything younger than any unresolved prediction.
    assert occupancy[RecoveryScheme.REFETCH] <= occupancy[RecoveryScheme.REISSUE] + 1.0
    # Selective holds only the cone: between the two.
    assert occupancy[RecoveryScheme.SELECTIVE] <= occupancy[RecoveryScheme.REISSUE] + 1.0


def test_refetch_squash_refetches_instructions():
    trace = predictable_trace(flip_every=16)
    sim, stats = run_pipe(trace, RecoveryScheme.REFETCH)
    assert stats.value_squashes > 3
    # Squashed instructions were fetched at least twice.
    assert stats.fetched > stats.committed
    assert stats.committed == len(trace)


def test_reissue_replays_independent_instructions_too():
    trace = predictable_trace(flip_every=16)
    _, reissue = run_pipe(trace, RecoveryScheme.REISSUE)
    _, selective = run_pipe(trace, RecoveryScheme.SELECTIVE)
    # Reissue replays everything after the first use; selective only the cone.
    assert reissue.reissued_instructions >= selective.reissued_instructions
    assert selective.reissued_instructions > 0


def test_mispredictions_never_corrupt_commit_counts():
    trace = predictable_trace(flip_every=8)
    for scheme in RecoveryScheme:
        _, stats = run_pipe(trace, scheme)
        assert stats.committed == len(trace), scheme


def test_no_prediction_means_no_recovery_activity():
    trace = predictable_trace(flip_every=8)
    for scheme in RecoveryScheme:
        _, stats = run_pipe(trace, scheme, predictor=NoPredictor())
        assert stats.value_squashes == 0 and stats.reissued_instructions == 0


def test_unresolved_predictions_drain_at_halt():
    trace = predictable_trace()
    sim, stats = run_pipe(trace, RecoveryScheme.SELECTIVE)
    assert not sim.unresolved_preds
    assert not sim.window and not sim.rob
