"""Lowering tests: round trips, provenance, parallel copies, spilling."""

import pytest

from repro.isa import assemble
from repro.isa.registers import parse_reg
from repro.ir import (
    INT,
    IRBuilder,
    SPILL_BASE,
    SpillSlots,
    lower_module,
    raise_program,
    roundtrip,
    sequence_copies,
)
from repro.sim import run_program
from repro.sim.memory import Memory


def identical(a, b):
    return len(a) == len(b) and all(x.render() == y.render() for x, y in zip(a, b))


def test_unconstrained_roundtrip_is_byte_identical():
    program = assemble(
        """
        li r1, #10
        li r2, #0
    loop:
        add r2, r2, r1
        sub r1, r1, #1
        bne r1, loop
        st r2, 0(r31)
        halt
        """
    )
    lowering, report = roundtrip(program, Memory)
    assert report.ok, report.mismatch
    assert identical(program, lowering.program)


def test_multi_procedure_roundtrip():
    program = assemble(
        """
    .proc main
    main:
        li r16, #5
        jsr r26, double
        st r0, 0(r31)
        halt
    .proc double
    double:
        add r0, r16, r16
        ret r26
        """
    )
    lowering, report = roundtrip(program, Memory)
    assert report.ok, report.mismatch
    assert identical(program, lowering.program)


def test_source_map_provenance():
    program = assemble(
        """
        li r1, #3
    loop:
        sub r1, r1, #1
        bne r1, loop
        halt
        """
    )
    lowering = lower_module(raise_program(program))
    source_map = lowering.program.source_map
    assert source_map is not None
    assert set(source_map) == set(range(len(lowering.program)))
    # The loop body carries depth 1, the prologue depth 0, and origin pcs
    # relate the lowered program back to the flat input.
    assert source_map[1].loop_depth == 1
    assert source_map[0].loop_depth == 0
    assert sorted(loc.origin_pc for loc in source_map.values()) == list(range(len(program)))


def test_sequence_copies_serialises_swap_cycle():
    """A phi swap cycle must shuffle through memory, not clobber."""
    r1, r2 = parse_reg("r1"), parse_reg("r2")
    slots = SpillSlots()
    insts = sequence_copies([(r1, r2, "int"), (r2, r1, "int")], slots)
    # One value parks in the shuffle slot: st + two materialisations.
    assert any(i.op.name == "st" for i in insts)
    assert any(i.op.name == "ld" for i in insts)
    # Execute the sequence to prove swap semantics.
    program = assemble("li r1, #111\nli r2, #222\nhalt")
    from repro.isa.instructions import Instruction
    from repro.isa.program import Program

    seq = list(program)[:2] + insts + [list(program)[2]]
    swapped = Program([Instruction(**{s: getattr(i, s) for s in ("op", "dst", "src1", "src2", "imm", "target")}) for i in seq], {}, "swap")
    result = run_program(swapped, memory=Memory(), max_instructions=100)
    assert result.halted
    assert result.state.read(r1) == 222
    assert result.state.read(r2) == 111


def test_spilling_handles_more_values_than_registers():
    """Builder code with > 31 simultaneously-live int values must spill to
    the reserved slots and still compute the right answer."""
    n = 40
    b = IRBuilder("pressure")
    f = b.function("main")
    f.block("main")
    vs = []
    for i in range(n):
        v = f.var(f"v{i}", INT)
        f.li(v, i + 1)
        vs.append(v)
    total = f.var("total", INT)
    f.li(total, 0)
    for v in vs:
        f.add(total, total, v)
    out = f.var("out", INT)
    f.li(out, 0x10000)
    f.st(total, out, 0)
    f.halt()
    lowering = b.lower()
    program = lowering.program
    spill_pcs = [
        inst.pc
        for inst in program
        if inst.imm is not None and SPILL_BASE <= inst.imm < SPILL_BASE + 0x1000 and inst.op.name in ("st", "ld")
    ]
    assert spill_pcs, "expected spill traffic for 40 live values"
    memory = Memory()
    result = run_program(program, memory=memory, max_instructions=1_000)
    assert result.halted
    assert memory.read_words(0x10000, 1)[0] == n * (n + 1) // 2


def test_lowering_is_repeatable():
    """lower_module must not mutate the module: two lowerings agree."""
    program = assemble(
        """
        li r1, #4
    loop:
        sub r1, r1, #1
        bne r1, loop
        halt
        """
    )
    module = raise_program(program)
    first = lower_module(module)
    second = lower_module(module)
    assert identical(first.program, second.program)
