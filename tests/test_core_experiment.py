"""Experiment runner and result-table tests."""

import pytest

from repro.core import CONFIG_NAMES, ExperimentRunner, ResultTable
from repro.uarch import RecoveryScheme, aggressive_config


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner("mgrid", max_instructions=15_000)


def test_all_config_names_run(runner):
    for config in CONFIG_NAMES:
        result = runner.run(config)
        assert result.workload == "mgrid" and result.config == config
        assert result.stats.committed > 1000
        assert result.ipc > 0


def test_unknown_config_rejected(runner):
    with pytest.raises(ValueError, match="unknown configuration"):
        runner.run("magic")


def test_profiles_come_from_train_input(runner):
    profile = runner.train_profile()
    assert profile.sites  # collected
    # Lists are cached per (threshold, loads_only).
    assert runner.profile_lists(0.8) is runner.profile_lists(0.8)
    assert runner.profile_lists(0.8) is not runner.profile_lists(0.9)


def test_program_variants(runner):
    base = runner.program_variant("base")
    marked = runner.program_variant("srvp_dead")
    realloc = runner.program_variant("realloc")
    assert len(base) == len(marked) == len(realloc)
    assert any(inst.op.rvp_marked for inst in marked)
    assert not any(inst.op.rvp_marked for inst in base)
    with pytest.raises(ValueError, match="unknown program variant"):
        runner.program_variant("optimised")


def test_no_predict_is_deterministic(runner):
    a = runner.run("no_predict")
    b = runner.run("no_predict")
    assert a.stats.cycles == b.stats.cycles


def test_recovery_scheme_recorded(runner):
    result = runner.run("drvp_all", recovery=RecoveryScheme.REFETCH)
    assert result.recovery == "refetch"


def test_machine_override():
    narrow = ExperimentRunner("go", max_instructions=8_000)
    wide = ExperimentRunner("go", machine=aggressive_config(), max_instructions=8_000)
    assert wide.run("no_predict").ipc >= narrow.run("no_predict").ipc - 0.05


def test_realloc_report_available_after_variant(runner):
    runner.run("drvp_all_realloc")
    assert runner.realloc_report is not None


# ----------------------------------------------------------------------
# ResultTable
# ----------------------------------------------------------------------
def test_result_table_math(runner):
    table = ResultTable()
    base = runner.run("no_predict")
    rvp = runner.run("drvp_all")
    table.add(base)
    table.add(rvp)
    assert table.ipc("mgrid", "no_predict") == pytest.approx(base.ipc)
    assert table.speedup("mgrid", "no_predict") == pytest.approx(1.0)
    assert table.speedup("mgrid", "drvp_all") == pytest.approx(rvp.ipc / base.ipc)
    assert table.mean_speedup("drvp_all") == pytest.approx(rvp.ipc / base.ipc)
    assert table.coverage("mgrid", "drvp_all") == pytest.approx(rvp.stats.coverage)


def test_result_table_rendering(runner):
    table = ResultTable()
    table.add(runner.run("no_predict"))
    table.add(runner.run("lvp"))
    ipc_text = table.render_ipc("IPC")
    speedup_text = table.render_speedup("SP")
    coverage_text = table.render_coverage("COV")
    assert "mgrid" in ipc_text and "lvp" in ipc_text
    assert "average" in speedup_text
    assert "/" in coverage_text  # cov/acc cells
