"""Runtime substrate tests: journal durability/replay, atomic writes,
backoff determinism and the failure taxonomy."""

from __future__ import annotations

import json
import os
from concurrent.futures import TimeoutError as FutureTimeout, process

import pytest

from repro.runtime import (
    DETERMINISTIC,
    JOURNAL_SCHEMA,
    TRANSIENT,
    BudgetExceeded,
    DeterministicError,
    JournalError,
    RunJournal,
    TransientError,
    atomic_write_json,
    backoff_delay,
    backoff_delays,
    classify_failure,
    config_fingerprint,
    is_timeout,
    journal_path,
    list_run_ids,
)
from repro.sim.functional import SimulationError
from repro.testing import PoisonedCellError

CONFIG = {"workloads": ["li"], "max_instructions": 1500}
CELLS = ["li/no_predict/selective", "li/lvp/selective"]


def _make(tmp_path, run_id="r1", cells=CELLS):
    return RunJournal.create(str(tmp_path), run_id, CONFIG, cells)


# ----------------------------------------------------------------------
# Fingerprint / paths
# ----------------------------------------------------------------------
def test_fingerprint_is_order_independent_and_value_sensitive():
    a = config_fingerprint({"x": 1, "y": [2, 3]})
    b = config_fingerprint({"y": [2, 3], "x": 1})
    c = config_fingerprint({"x": 1, "y": [2, 4]})
    assert a == b
    assert a != c


def test_journal_path_and_listing(tmp_path):
    journal = _make(tmp_path, "demo")
    assert journal.path == journal_path(str(tmp_path), "demo")
    assert journal.path.endswith("demo.journal.jsonl")
    assert list_run_ids(str(tmp_path)) == ["demo"]
    assert list_run_ids(str(tmp_path / "nonexistent")) == []


# ----------------------------------------------------------------------
# Create / append / replay
# ----------------------------------------------------------------------
def test_create_open_roundtrip(tmp_path):
    with _make(tmp_path) as journal:
        journal.record(CELLS[0], "ok", attempts=1, result={"ipc": 1.5})
        journal.record(CELLS[1], "failed", error="boom", error_kind=DETERMINISTIC)

    replayed = RunJournal.open(journal.path)
    assert replayed.header["schema"] == JOURNAL_SCHEMA
    assert replayed.run_id == "r1"
    assert replayed.config == CONFIG
    assert replayed.cells == CELLS
    assert not replayed.torn_tail
    assert replayed.status_of(CELLS[0]) == "ok"
    assert replayed.states()[CELLS[0]]["result"] == {"ipc": 1.5}
    assert replayed.states()[CELLS[1]]["error_kind"] == DETERMINISTIC


def test_create_refuses_existing_run_id(tmp_path):
    _make(tmp_path).close()
    with pytest.raises(JournalError, match="already exists"):
        _make(tmp_path)


def test_record_rejects_unknown_status(tmp_path):
    with _make(tmp_path) as journal:
        with pytest.raises(ValueError, match="unknown cell status"):
            journal.record(CELLS[0], "exploded")


def test_last_record_per_cell_wins(tmp_path):
    with _make(tmp_path) as journal:
        journal.record(CELLS[0], "failed", error="first try")
        journal.record(CELLS[0], "ok", attempts=2, result={"ipc": 2.0})
    replayed = RunJournal.open(journal.path)
    assert replayed.status_of(CELLS[0]) == "ok"
    assert replayed.states()[CELLS[0]]["attempts"] == 2


def test_counts_and_pending_cells(tmp_path):
    with _make(tmp_path) as journal:
        journal.record(CELLS[0], "ok", result={})
        assert journal.counts() == {"ok": 1, "pending": 1}
        # Never-touched header cells count as pending and must be re-run,
        # in header order.
        assert journal.pending_cells() == [CELLS[1]]
        journal.record(CELLS[1], "timeout", error="deadline")
        assert journal.pending_cells() == [CELLS[1]]
        assert journal.counts() == {"ok": 1, "timeout": 1}


def test_mark_pending_skips_ok_cells(tmp_path):
    with _make(tmp_path) as journal:
        journal.record(CELLS[0], "ok", result={})
        journal.mark_pending(CELLS)
    replayed = RunJournal.open(journal.path)
    assert replayed.status_of(CELLS[0]) == "ok"
    assert replayed.status_of(CELLS[1]) == "pending"


def test_find_unknown_run_id_names_known_runs(tmp_path):
    _make(tmp_path, "known").close()
    with pytest.raises(JournalError, match="known"):
        RunJournal.find(str(tmp_path), "missing")


# ----------------------------------------------------------------------
# Crash model: torn tails vs real corruption
# ----------------------------------------------------------------------
def test_torn_final_line_is_tolerated(tmp_path):
    journal = _make(tmp_path)
    journal.record(CELLS[0], "ok", result={"ipc": 1.0})
    journal.close()
    with open(journal.path, "a") as handle:
        handle.write('{"type": "cell", "id": "li/lvp/sel')  # SIGKILL mid-append

    replayed = RunJournal.open(journal.path)
    assert replayed.torn_tail
    assert replayed.status_of(CELLS[0]) == "ok"
    assert replayed.status_of(CELLS[1]) is None  # torn record dropped


def test_torn_tail_is_truncated_before_next_append(tmp_path):
    """Appending after a torn tail must not glue records onto the fragment —
    that would turn a recoverable crash into permanent mid-file corruption."""
    journal = _make(tmp_path)
    journal.record(CELLS[0], "ok", result={})
    journal.close()
    with open(journal.path, "a") as handle:
        handle.write('{"type": "cell", "id": "li/lv')

    resumed = RunJournal.open(journal.path)
    resumed.record(CELLS[1], "ok", result={})
    resumed.close()

    final = RunJournal.open(journal.path)
    assert not final.torn_tail
    assert final.counts() == {"ok": 2}
    # Every line on disk is valid JSON again.
    with open(journal.path) as handle:
        for line in handle.read().splitlines():
            json.loads(line)


def test_torn_middle_line_is_corruption(tmp_path):
    journal = _make(tmp_path)
    journal.record(CELLS[0], "ok", result={})
    journal.close()
    lines = open(journal.path).read().splitlines()
    lines[1] = lines[1][: len(lines[1]) // 2]  # tear a *non-final* record
    lines.append(json.dumps({"type": "cell", "id": CELLS[1], "status": "ok"}))
    with open(journal.path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    with pytest.raises(JournalError, match="corrupt record at line 2"):
        RunJournal.open(journal.path)


def test_open_rejects_foreign_schema_and_empty_file(tmp_path):
    path = tmp_path / "bogus.journal.jsonl"
    path.write_text(json.dumps({"type": "header", "schema": "other/9"}) + "\n")
    with pytest.raises(JournalError, match="not a repro-journal/1 journal"):
        RunJournal.open(str(path))
    path.write_text("")
    with pytest.raises(JournalError, match="empty journal"):
        RunJournal.open(str(path))


def test_verify_config_fingerprint(tmp_path):
    journal = _make(tmp_path)
    journal.verify_config(dict(CONFIG))  # same grid: fine
    with pytest.raises(JournalError, match="start a new run instead of resuming"):
        journal.verify_config({**CONFIG, "max_instructions": 9999})


# ----------------------------------------------------------------------
# Atomic writes
# ----------------------------------------------------------------------
def test_atomic_write_json_leaves_no_temp_files(tmp_path):
    target = tmp_path / "payload.json"
    atomic_write_json(str(target), {"a": 1})
    atomic_write_json(str(target), {"a": 2})  # overwrite is atomic too
    assert json.loads(target.read_text()) == {"a": 2}
    assert os.listdir(tmp_path) == ["payload.json"]


# ----------------------------------------------------------------------
# Backoff schedule
# ----------------------------------------------------------------------
def test_backoff_is_deterministic_per_seed():
    key = ("li", "lvp", "selective")
    assert backoff_delay(0, seed=key) == backoff_delay(0, seed=key)
    assert backoff_delay(0, seed=key) != backoff_delay(0, seed=("go", "lvp", "selective"))
    assert list(backoff_delays(3, seed=key)) == [backoff_delay(a, seed=key) for a in range(3)]


def test_backoff_grows_and_caps():
    base, cap = 0.05, 2.0
    for attempt in range(12):
        delay = backoff_delay(attempt, base=base, cap=cap, seed="cell")
        raw = min(cap, base * 2**attempt)
        # Jitter scales into [0.5, 1.0) of the raw exponential value.
        assert 0.5 * raw <= delay < raw
    with pytest.raises(ValueError):
        backoff_delay(-1)


# ----------------------------------------------------------------------
# Failure taxonomy
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "exc, kind",
    [
        (FutureTimeout("worker deadline"), TRANSIENT),
        (process.BrokenProcessPool("pool died"), TRANSIENT),
        (ConnectionError("pipe"), TRANSIENT),
        (OSError("fork failed"), TRANSIENT),
        (TransientError("wrapped"), TRANSIENT),
        (PoisonedCellError("garbage result"), TRANSIENT),  # class-attr hook
        (SimulationError("bad opcode"), DETERMINISTIC),
        (BudgetExceeded("budget"), DETERMINISTIC),
        (DeterministicError("verifier said no"), DETERMINISTIC),
        (ValueError("anything else recurs on replay"), DETERMINISTIC),
    ],
)
def test_classify_failure(exc, kind):
    assert classify_failure(exc) == kind


def test_is_timeout():
    assert is_timeout(FutureTimeout("deadline"))
    assert is_timeout(TimeoutError("deadline"))
    assert not is_timeout(ValueError("nope"))
