"""Runtime substrate tests: journal durability/replay, atomic writes,
backoff determinism and the failure taxonomy."""

from __future__ import annotations

import json
import os
from concurrent.futures import TimeoutError as FutureTimeout, process

import pytest

from repro.runtime import (
    DETERMINISTIC,
    JOURNAL_SCHEMA,
    TRANSIENT,
    BudgetExceeded,
    DeterministicError,
    JournalError,
    RunJournal,
    TransientError,
    atomic_write_json,
    backoff_delay,
    backoff_delays,
    classify_failure,
    config_fingerprint,
    is_timeout,
    journal_path,
    list_run_ids,
)
from repro.sim.functional import SimulationError
from repro.testing import PoisonedCellError

CONFIG = {"workloads": ["li"], "max_instructions": 1500}
CELLS = ["li/no_predict/selective", "li/lvp/selective"]


def _make(tmp_path, run_id="r1", cells=CELLS):
    return RunJournal.create(str(tmp_path), run_id, CONFIG, cells)


# ----------------------------------------------------------------------
# Fingerprint / paths
# ----------------------------------------------------------------------
def test_fingerprint_is_order_independent_and_value_sensitive():
    a = config_fingerprint({"x": 1, "y": [2, 3]})
    b = config_fingerprint({"y": [2, 3], "x": 1})
    c = config_fingerprint({"x": 1, "y": [2, 4]})
    assert a == b
    assert a != c


def test_journal_path_and_listing(tmp_path):
    journal = _make(tmp_path, "demo")
    assert journal.path == journal_path(str(tmp_path), "demo")
    assert journal.path.endswith("demo.journal.jsonl")
    assert list_run_ids(str(tmp_path)) == ["demo"]
    assert list_run_ids(str(tmp_path / "nonexistent")) == []


# ----------------------------------------------------------------------
# Create / append / replay
# ----------------------------------------------------------------------
def test_create_open_roundtrip(tmp_path):
    with _make(tmp_path) as journal:
        journal.record(CELLS[0], "ok", attempts=1, result={"ipc": 1.5})
        journal.record(CELLS[1], "failed", error="boom", error_kind=DETERMINISTIC)

    replayed = RunJournal.open(journal.path)
    assert replayed.header["schema"] == JOURNAL_SCHEMA
    assert replayed.run_id == "r1"
    assert replayed.config == CONFIG
    assert replayed.cells == CELLS
    assert not replayed.torn_tail
    assert replayed.status_of(CELLS[0]) == "ok"
    assert replayed.states()[CELLS[0]]["result"] == {"ipc": 1.5}
    assert replayed.states()[CELLS[1]]["error_kind"] == DETERMINISTIC


def test_create_refuses_existing_run_id(tmp_path):
    _make(tmp_path).close()
    with pytest.raises(JournalError, match="already exists"):
        _make(tmp_path)


def test_record_rejects_unknown_status(tmp_path):
    with _make(tmp_path) as journal:
        with pytest.raises(ValueError, match="unknown cell status"):
            journal.record(CELLS[0], "exploded")


def test_last_record_per_cell_wins(tmp_path):
    with _make(tmp_path) as journal:
        journal.record(CELLS[0], "failed", error="first try")
        journal.record(CELLS[0], "ok", attempts=2, result={"ipc": 2.0})
    replayed = RunJournal.open(journal.path)
    assert replayed.status_of(CELLS[0]) == "ok"
    assert replayed.states()[CELLS[0]]["attempts"] == 2


def test_counts_and_pending_cells(tmp_path):
    with _make(tmp_path) as journal:
        journal.record(CELLS[0], "ok", result={})
        assert journal.counts() == {"ok": 1, "pending": 1}
        # Never-touched header cells count as pending and must be re-run,
        # in header order.
        assert journal.pending_cells() == [CELLS[1]]
        journal.record(CELLS[1], "timeout", error="deadline")
        assert journal.pending_cells() == [CELLS[1]]
        assert journal.counts() == {"ok": 1, "timeout": 1}


def test_mark_pending_skips_ok_cells(tmp_path):
    with _make(tmp_path) as journal:
        journal.record(CELLS[0], "ok", result={})
        journal.mark_pending(CELLS)
    replayed = RunJournal.open(journal.path)
    assert replayed.status_of(CELLS[0]) == "ok"
    assert replayed.status_of(CELLS[1]) == "pending"


def test_find_unknown_run_id_names_known_runs(tmp_path):
    _make(tmp_path, "known").close()
    with pytest.raises(JournalError, match="known"):
        RunJournal.find(str(tmp_path), "missing")


# ----------------------------------------------------------------------
# Crash model: torn tails vs real corruption
# ----------------------------------------------------------------------
def test_torn_final_line_is_tolerated(tmp_path):
    journal = _make(tmp_path)
    journal.record(CELLS[0], "ok", result={"ipc": 1.0})
    journal.close()
    with open(journal.path, "a") as handle:
        handle.write('{"type": "cell", "id": "li/lvp/sel')  # SIGKILL mid-append

    replayed = RunJournal.open(journal.path)
    assert replayed.torn_tail
    assert replayed.status_of(CELLS[0]) == "ok"
    assert replayed.status_of(CELLS[1]) is None  # torn record dropped


def test_torn_tail_is_truncated_before_next_append(tmp_path):
    """Appending after a torn tail must not glue records onto the fragment —
    that would turn a recoverable crash into permanent mid-file corruption."""
    journal = _make(tmp_path)
    journal.record(CELLS[0], "ok", result={})
    journal.close()
    with open(journal.path, "a") as handle:
        handle.write('{"type": "cell", "id": "li/lv')

    resumed = RunJournal.open(journal.path)
    resumed.record(CELLS[1], "ok", result={})
    resumed.close()

    final = RunJournal.open(journal.path)
    assert not final.torn_tail
    assert final.counts() == {"ok": 2}
    # Every line on disk is valid JSON again.
    with open(journal.path) as handle:
        for line in handle.read().splitlines():
            json.loads(line)


def test_torn_middle_line_is_corruption(tmp_path):
    journal = _make(tmp_path)
    journal.record(CELLS[0], "ok", result={})
    journal.close()
    lines = open(journal.path).read().splitlines()
    lines[1] = lines[1][: len(lines[1]) // 2]  # tear a *non-final* record
    lines.append(json.dumps({"type": "cell", "id": CELLS[1], "status": "ok"}))
    with open(journal.path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    with pytest.raises(JournalError, match="corrupt record at line 2"):
        RunJournal.open(journal.path)


def test_open_rejects_foreign_schema_and_empty_file(tmp_path):
    path = tmp_path / "bogus.journal.jsonl"
    path.write_text(json.dumps({"type": "header", "schema": "other/9"}) + "\n")
    with pytest.raises(JournalError, match="not a repro-journal/1 journal"):
        RunJournal.open(str(path))
    path.write_text("")
    with pytest.raises(JournalError, match="empty journal"):
        RunJournal.open(str(path))


def test_verify_config_fingerprint(tmp_path):
    journal = _make(tmp_path)
    journal.verify_config(dict(CONFIG))  # same grid: fine
    with pytest.raises(JournalError, match="start a new run instead of resuming"):
        journal.verify_config({**CONFIG, "max_instructions": 9999})


# ----------------------------------------------------------------------
# Atomic writes
# ----------------------------------------------------------------------
def test_atomic_write_json_leaves_no_temp_files(tmp_path):
    target = tmp_path / "payload.json"
    atomic_write_json(str(target), {"a": 1})
    atomic_write_json(str(target), {"a": 2})  # overwrite is atomic too
    assert json.loads(target.read_text()) == {"a": 2}
    assert os.listdir(tmp_path) == ["payload.json"]


# ----------------------------------------------------------------------
# Backoff schedule
# ----------------------------------------------------------------------
def test_backoff_is_deterministic_per_seed():
    key = ("li", "lvp", "selective")
    assert backoff_delay(0, seed=key) == backoff_delay(0, seed=key)
    assert backoff_delay(0, seed=key) != backoff_delay(0, seed=("go", "lvp", "selective"))
    assert list(backoff_delays(3, seed=key)) == [backoff_delay(a, seed=key) for a in range(3)]


def test_backoff_grows_and_caps():
    base, cap = 0.05, 2.0
    for attempt in range(12):
        delay = backoff_delay(attempt, base=base, cap=cap, seed="cell")
        raw = min(cap, base * 2**attempt)
        # Jitter scales into [0.5, 1.0) of the raw exponential value.
        assert 0.5 * raw <= delay < raw
    with pytest.raises(ValueError):
        backoff_delay(-1)


# ----------------------------------------------------------------------
# Failure taxonomy
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "exc, kind",
    [
        (FutureTimeout("worker deadline"), TRANSIENT),
        (process.BrokenProcessPool("pool died"), TRANSIENT),
        (ConnectionError("pipe"), TRANSIENT),
        (OSError("fork failed"), TRANSIENT),
        (TransientError("wrapped"), TRANSIENT),
        (PoisonedCellError("garbage result"), TRANSIENT),  # class-attr hook
        (SimulationError("bad opcode"), DETERMINISTIC),
        (BudgetExceeded("budget"), DETERMINISTIC),
        (DeterministicError("verifier said no"), DETERMINISTIC),
        (ValueError("anything else recurs on replay"), DETERMINISTIC),
    ],
)
def test_classify_failure(exc, kind):
    assert classify_failure(exc) == kind


def test_is_timeout():
    assert is_timeout(FutureTimeout("deadline"))
    assert is_timeout(TimeoutError("deadline"))
    assert not is_timeout(ValueError("nope"))


# ----------------------------------------------------------------------
# Multi-appender and adversarial replay edge cases (campaign service)
# ----------------------------------------------------------------------
def test_interleaved_records_from_two_appenders_replay_last_wins(tmp_path):
    """Two supervisors interleaving appends (a lease-expiry race that briefly
    double-dispatched) must still replay deterministically: per cell, the
    last record on disk wins, regardless of which appender wrote it."""
    journal = _make(tmp_path)
    journal.record(CELLS[0], "failed", error="appender A, attempt 1")
    journal.close()
    # Appender B (the stealing supervisor) writes directly, interleaving
    # records for both cells between A's.
    with open(journal.path, "a") as handle:
        handle.write(json.dumps({"type": "cell", "id": CELLS[1], "status": "ok",
                                 "result": {"ipc": 2.0}, "writer": "B"}) + "\n")
        handle.write(json.dumps({"type": "cell", "id": CELLS[0], "status": "ok",
                                 "result": {"ipc": 1.0}, "writer": "B"}) + "\n")
    resumed = RunJournal.open(journal.path)
    resumed.record(CELLS[1], "ok", attempts=2, result={"ipc": 3.0})  # A again, later
    resumed.close()

    final = RunJournal.open(journal.path)
    assert final.status_of(CELLS[0]) == "ok"
    assert final.states()[CELLS[0]]["result"] == {"ipc": 1.0}
    assert final.states()[CELLS[1]]["result"] == {"ipc": 3.0}  # latest append wins
    assert final.pending_cells() == []


def test_header_rewritten_mid_resume_is_refused(tmp_path):
    """If line 1 is rewritten between replay and append, appending would
    attach our records to a different run's identity — refuse loudly."""
    journal = _make(tmp_path)
    journal.record(CELLS[0], "ok", result={})
    journal.close()

    resumed = RunJournal.open(journal.path)  # replays, no append handle yet
    lines = open(journal.path).read().splitlines()
    header = json.loads(lines[0])
    header["run_id"] = "hijacked"
    lines[0] = json.dumps(header)
    with open(journal.path, "w") as handle:
        handle.write("\n".join(lines) + "\n")

    with pytest.raises(JournalError, match="underneath an active resume"):
        resumed.record(CELLS[1], "ok", result={})


def test_header_replaced_with_garbage_mid_resume_is_refused(tmp_path):
    journal = _make(tmp_path)
    journal.close()
    resumed = RunJournal.open(journal.path)
    lines = open(journal.path).read().splitlines()
    lines[0] = '{"type": "header", "schema": '  # now unparseable
    with open(journal.path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    with pytest.raises(JournalError):
        resumed.record(CELLS[0], "ok", result={})


def test_event_notes_are_replayed_but_never_change_cell_state(tmp_path):
    journal = _make(tmp_path)
    journal.record(CELLS[0], "ok", result={})
    journal.note("lease_stolen", cell=CELLS[1], worker="d3")
    journal.note("pool_rebuilt", rebuilds=1)
    journal.close()

    replayed = RunJournal.open(journal.path)
    events = replayed.events()
    assert [e["event"] for e in events] == ["lease_stolen", "pool_rebuilt"]
    assert events[0]["cell"] == CELLS[1]
    # Notes are observability only: replayed cell state is untouched.
    assert replayed.status_of(CELLS[0]) == "ok"
    assert replayed.pending_cells() == [CELLS[1]]


# ----------------------------------------------------------------------
# Backoff total-elapsed deadline cap
# ----------------------------------------------------------------------
def test_backoff_deadline_caps_total_elapsed_delay():
    key = ("li", "lvp", "selective")
    unbounded = list(backoff_delays(10, seed=key))
    total = sum(unbounded)
    deadline = total / 2
    capped = list(backoff_delays(10, seed=key, deadline=deadline))
    assert sum(capped) <= deadline + 1e-9
    assert len(capped) < len(unbounded)
    # The schedule is a prefix of the unbounded one, with at most the last
    # delay clipped to the remaining budget.
    assert capped[:-1] == unbounded[: len(capped) - 1]
    assert capped[-1] <= unbounded[len(capped) - 1]


def test_backoff_deadline_zero_yields_no_retries():
    assert list(backoff_delays(5, seed="cell", deadline=0.0)) == []


def test_backoff_deadline_none_is_unbounded():
    key = "cell"
    assert list(backoff_delays(4, seed=key, deadline=None)) == list(backoff_delays(4, seed=key))


# ----------------------------------------------------------------------
# Directory durability (crash-rename POSIX discipline)
# ----------------------------------------------------------------------
def test_atomic_write_fsyncs_parent_directory(tmp_path, monkeypatch):
    """The rename is only durable once the parent directory entry is synced;
    regression-pin that atomic_write_text fsyncs the directory."""
    from repro.runtime import atomic as atomic_mod

    synced = []
    real = atomic_mod.fsync_directory
    monkeypatch.setattr(atomic_mod, "fsync_directory", lambda p: (synced.append(p), real(p)))
    atomic_mod.atomic_write_text(str(tmp_path / "x.json"), "{}")
    assert str(tmp_path) in synced


def test_ensure_durable_directory_creates_and_syncs_chain(tmp_path, monkeypatch):
    from repro.runtime import atomic as atomic_mod

    synced = []
    real = atomic_mod.fsync_directory
    monkeypatch.setattr(atomic_mod, "fsync_directory", lambda p: (synced.append(p), real(p)))
    target = tmp_path / "a" / "b" / "c"
    result = atomic_mod.ensure_durable_directory(str(target))
    assert result == str(target)
    assert target.is_dir()
    # Every newly created entry was fsynced in its parent, root-first.
    assert synced == [str(tmp_path), str(tmp_path / "a"), str(tmp_path / "a" / "b")]
    # Idempotent: nothing new to create, nothing new to sync.
    synced.clear()
    atomic_mod.ensure_durable_directory(str(target))
    assert synced == []


def test_journal_create_makes_out_dir_durably(tmp_path):
    out = tmp_path / "fresh" / "runs"
    journal = RunJournal.create(str(out), "r1", CONFIG, CELLS)
    journal.close()
    assert (out / "r1.journal.jsonl").exists()
