"""Branch predictor (gshare + BTB + RAS) tests."""

from repro.isa import Instruction, R, opcode
from repro.uarch import BranchPredictor, table1_config


def branch(pc, name="beq", target="x"):
    return Instruction(op=opcode(name), src1=R[1], target=target, pc=pc, target_pc=pc + 10)


def call(pc):
    return Instruction(op=opcode("jsr"), dst=R[26], target="f", pc=pc, target_pc=100)


def ret(pc):
    return Instruction(op=opcode("ret"), src1=R[26], pc=pc)


def jump_indirect(pc):
    return Instruction(op=opcode("jmp"), src1=R[1], pc=pc)


def test_learns_biased_branch():
    bp = BranchPredictor(table1_config())
    inst = branch(40)
    # gshare's history register must saturate before the index stabilises.
    for _ in range(30):
        bp.predict_and_train(inst, True, 50)
    assert bp.predict_and_train(inst, True, 50)


def test_initial_conditional_misses_then_trains():
    bp = BranchPredictor(table1_config())
    inst = branch(40)
    first = bp.predict_and_train(inst, True, 50)
    assert not first  # weakly not-taken out of reset
    for _ in range(4):
        bp.predict_and_train(inst, True, 50)
    assert bp.cond_mispredicts >= 1 and bp.cond_lookups >= 5


def test_alternating_branch_uses_history():
    bp = BranchPredictor(table1_config())
    inst = branch(8)
    outcomes = [bool(i % 2) for i in range(200)]
    correct = sum(1 for o in outcomes for _ in [0] if bp.predict_and_train(inst, o, 18))
    # gshare learns the alternating pattern quickly.
    assert correct > 150


def test_taken_branch_needs_btb_target():
    bp = BranchPredictor(table1_config())
    inst = branch(12)
    # Direction training inserts the target, so after warmup (history
    # saturation included) both direction and target are right.
    for _ in range(30):
        bp.predict_and_train(inst, True, 22)
    assert bp.predict_and_train(inst, True, 22)
    # A target change is a misfetch even with the right direction.
    assert not bp.predict_and_train(inst, True, 23)


def test_direct_jumps_and_calls_always_hit():
    bp = BranchPredictor(table1_config())
    jump = Instruction(op=opcode("br"), target="x", pc=5, target_pc=50)
    assert bp.predict_and_train(jump, True, 50)
    assert bp.predict_and_train(call(6), True, 100)


def test_ras_predicts_returns():
    bp = BranchPredictor(table1_config())
    assert bp.predict_and_train(call(6), True, 100)
    assert bp.predict_and_train(ret(105), True, 7)  # return to pc 6 + 1


def test_ras_nested_calls():
    bp = BranchPredictor(table1_config())
    bp.predict_and_train(call(6), True, 100)
    bp.predict_and_train(call(101), True, 200)
    assert bp.predict_and_train(ret(205), True, 102)
    assert bp.predict_and_train(ret(105), True, 7)


def test_ras_underflow_mispredicts():
    bp = BranchPredictor(table1_config())
    assert not bp.predict_and_train(ret(10), True, 99)
    assert bp.target_mispredicts == 1


def test_indirect_jump_via_btb():
    bp = BranchPredictor(table1_config())
    inst = jump_indirect(30)
    assert not bp.predict_and_train(inst, True, 300)  # cold BTB
    assert bp.predict_and_train(inst, True, 300)  # learned
    assert not bp.predict_and_train(inst, True, 301)  # target changed
