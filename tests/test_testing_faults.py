"""Deterministic fault injection: the runner's retry/timeout/serial-fallback
paths and the session trace-cache eviction recovery, proven on purpose."""

from __future__ import annotations

import pickle
from concurrent.futures import TimeoutError as FutureTimeout

import pytest

from repro.core.session import ParallelSuiteRunner, SimSession, SuiteCell
from repro.runtime import DETERMINISTIC, RunJournal, backoff_delay
from repro.testing import (
    BREAK_POOL,
    INTERRUPT,
    POISON,
    SIM_FAULT,
    TIMEOUT,
    FaultInjector,
    FaultPlan,
    FaultyExecutor,
    PoisonedCellError,
    evict_traces,
    exercise_suite_recovery,
    verify_trace_refill,
)

MAX_INSTS = 1_500


# ----------------------------------------------------------------------
# FaultPlan / FaultyExecutor mechanics
# ----------------------------------------------------------------------
def test_fault_plan_is_deterministic_and_disjoint():
    a = FaultPlan.from_seed(42, slots=8, timeouts=2, poisons=2, break_pool=True)
    b = FaultPlan.from_seed(42, slots=8, timeouts=2, poisons=2, break_pool=True)
    assert a == b
    assert not (a.timeout_slots & a.poison_slots)
    assert a.break_pool_slot not in a.timeout_slots | a.poison_slots
    assert len(a.timeout_slots) == 2 and len(a.poison_slots) == 2


def test_fault_plan_never_overcommits_slots():
    plan = FaultPlan.from_seed(1, slots=2, timeouts=5, poisons=5, break_pool=True)
    claimed = len(plan.timeout_slots) + len(plan.poison_slots) + (plan.break_pool_slot is not None)
    assert claimed <= 2


def test_faulty_executor_raises_planned_faults():
    plan = FaultPlan(timeout_slots=frozenset({0}), poison_slots=frozenset({1}), break_pool_slot=2)
    with FaultyExecutor(plan) as pool:
        futures = [pool.submit(lambda x: x * 2, n) for n in range(4)]
    with pytest.raises(FutureTimeout):
        futures[0].result()
    with pytest.raises(PoisonedCellError):
        futures[1].result()
    with pytest.raises(Exception) as excinfo:
        futures[2].result()
    assert "BrokenProcessPool" in type(excinfo.value).__name__
    assert futures[3].result() == 6  # healthy slot computes inline


# ----------------------------------------------------------------------
# Satellite: _retry_cell and _run_serial under injected failures
# ----------------------------------------------------------------------
def _runner(**kwargs):
    defaults = dict(
        workloads=("li", "go"), configs=("no_predict", "lvp"),
        jobs=2, max_instructions=MAX_INSTS,
    )
    defaults.update(kwargs)
    return ParallelSuiteRunner(**defaults)


def test_injected_timeout_is_retried_to_success():
    runner = _runner()
    injector = FaultInjector(FaultPlan(timeout_slots=frozenset({0})))
    injector.install(runner)
    report = runner.run()
    assert injector.injected_faults()[TIMEOUT] == 1
    assert not report.failures
    assert len(report.results) == len(runner.cells)
    assert report.used_processes


def test_injected_poisoned_cell_is_retried_to_success():
    """A worker returning garbage (unpicklable state) hits _retry_cell."""
    runner = _runner()
    injector = FaultInjector(FaultPlan(poison_slots=frozenset({1, 2})))
    injector.install(runner)
    report = runner.run()
    assert injector.injected_faults()[POISON] == 2
    assert not report.failures
    assert len(report.results) == len(runner.cells)


def test_pool_collapse_falls_back_to_serial():
    runner = _runner()
    injector = FaultInjector(FaultPlan(break_pool_slot=0))
    injector.install(runner)
    report = runner.run()
    assert injector.injected_faults()[BREAK_POOL] == 1
    assert not report.failures
    assert len(report.results) == len(runner.cells)
    assert not report.used_processes  # the pool died; serial finished the job


def test_retry_cell_records_double_failure():
    """If the serial retry also fails, the cell lands in report.failures
    with both errors, and the rest of the suite still completes."""
    runner = _runner()

    def unpicklable_run(cell):
        raise pickle.PicklingError(f"cannot pickle result for {cell.workload}")

    injector = FaultInjector(FaultPlan(timeout_slots=frozenset({0})))
    injector.install(runner)
    runner._run_local = unpicklable_run  # retry path fails too
    report = runner.run()
    assert len(report.failures) == 1
    (message,) = report.failures.values()
    assert "first:" in message and "retry:" in message
    assert "PicklingError" in message
    # remaining cells were unaffected
    assert len(report.results) == len(runner.cells) - 1


def test_run_serial_collects_pickling_failures():
    from repro.core.session import SuiteReport

    runner = _runner()

    def failing(cell):
        raise pickle.PicklingError("unpicklable workload state")

    runner._run_local = failing
    report = SuiteReport()
    runner._run_serial(runner.cells, report, note="stub")
    assert len(report.failures) == len(runner.cells)
    assert all("stub:" in msg and "PicklingError" in msg for msg in report.failures.values())
    assert not report.results


def test_retried_cell_reports_attempts_and_backoff_schedule():
    """A transiently failed cell retries behind exactly the deterministic
    backoff schedule — no more sleeps, no different jitter."""
    runner = _runner()
    injector = FaultInjector(FaultPlan(timeout_slots=frozenset({0})))
    injector.install(runner)
    slept = []
    runner._sleep = slept.append
    report = runner.run()
    assert not report.failures
    faulted = runner.cells[0]
    assert report.attempts[faulted] == 2  # one injected timeout, one retry
    assert all(report.statuses[cell] == "ok" for cell in runner.cells)
    key = (faulted.workload, faulted.config, faulted.recovery)
    assert slept == [backoff_delay(0, seed=key)]


def test_transient_exhaustion_sleeps_full_schedule():
    runner = _runner(retries=3)

    def always_transient(cell):
        raise ConnectionError("worker pipe closed")

    injector = FaultInjector(FaultPlan(timeout_slots=frozenset({0})))
    injector.install(runner)
    runner._run_local = always_transient
    slept = []
    runner._sleep = slept.append
    report = runner.run()
    faulted = runner.cells[0]
    assert report.statuses[faulted] == "failed"  # last error was not a deadline
    assert report.attempts[faulted] == 4  # initial + 3 retries
    key = (faulted.workload, faulted.config, faulted.recovery)
    assert slept == [backoff_delay(a, seed=key) for a in range(3)]


def test_deterministic_sim_fault_fails_fast_exactly_once():
    """A simulator fault replays identically, so the runner must not retry:
    one attempt, no backoff sleep, diagnostic and kind preserved."""
    runner = _runner()
    injector = FaultInjector(FaultPlan(sim_fault_slots=frozenset({0})))
    injector.install(runner)
    retried = []
    original = runner._run_local
    runner._run_local = lambda cell: retried.append(cell) or original(cell)
    slept = []
    runner._sleep = slept.append
    report = runner.run()
    assert injector.injected_faults()[SIM_FAULT] == 1
    faulted = runner.cells[0]
    assert report.statuses[faulted] == "failed"
    assert report.attempts[faulted] == 1
    assert report.failure_kinds[faulted] == DETERMINISTIC
    assert "SimulationError" in report.failures[faulted]
    assert not retried and not slept  # exactly one attempt, ever
    # the healthy cells were unaffected
    assert len(report.results) == len(runner.cells) - 1


def test_interrupt_cancels_pool_and_flushes_journal(tmp_path):
    """Ctrl-C mid-campaign must abandon the pool without waiting (the
    orphaned-pool regression) and leave every committed cell durable."""
    runner = _runner()
    journal = RunJournal.create(
        str(tmp_path), "interrupted", {"grid": "test"},
        [cell.cell_id for cell in runner.cells],
    )
    runner.journal = journal
    injector = FaultInjector(FaultPlan(interrupt_slot=1))
    injector.install(runner)
    with pytest.raises(KeyboardInterrupt):
        runner.run()
    executor = injector.executors[0]
    # Queued futures were cancelled, not waited on.
    assert executor.shutdown_calls[0] == (False, True)
    assert all(f.cancelled for f in executor.submitted)
    journal.close()
    # Slot 0 committed before the interrupt; its record survived on disk.
    replayed = RunJournal.open(journal.path)
    assert replayed.status_of(runner.cells[0].cell_id) == "ok"
    assert replayed.pending_cells() == [cell.cell_id for cell in runner.cells[1:]]


def test_poisoned_cell_error_is_transient_by_class_attribute():
    from repro.runtime import TRANSIENT, classify_failure

    assert PoisonedCellError.transient is True
    assert classify_failure(PoisonedCellError("garbage")) == TRANSIENT


def test_fault_plan_picks_disjoint_new_fault_kinds():
    plan = FaultPlan.from_seed(
        7, slots=8, timeouts=1, poisons=1, sim_faults=2, break_pool=True, interrupt=True
    )
    claimed = [
        *plan.timeout_slots, *plan.poison_slots, *plan.sim_fault_slots,
        plan.break_pool_slot, plan.interrupt_slot,
    ]
    assert None not in claimed
    assert len(claimed) == len(set(claimed)) == 6
    assert plan.fault_for(plan.interrupt_slot) == INTERRUPT
    assert all(plan.fault_for(slot) == SIM_FAULT for slot in plan.sim_fault_slots)


def test_suite_cell_id_format():
    assert SuiteCell("li", "lvp", "selective").cell_id == "li/lvp/selective"


def test_exercise_suite_recovery_end_to_end():
    plan = FaultPlan.from_seed(3, slots=4, timeouts=1, poisons=1)
    report, faults = exercise_suite_recovery(
        plan, workloads=("li", "go"), configs=("no_predict", "lvp"), jobs=2,
        max_instructions=MAX_INSTS,
    )
    assert faults[TIMEOUT] == 1 and faults[POISON] == 1
    assert not report.failures
    assert len(report.results) == 4


# ----------------------------------------------------------------------
# SimSession cache eviction recovery
# ----------------------------------------------------------------------
def test_evict_traces_counts_and_empties():
    session = SimSession()
    session.ref_trace("li", 1.0, MAX_INSTS)
    session.ref_trace("go", 1.0, MAX_INSTS)
    assert evict_traces(session, keep=1) == 1
    assert len(session._traces) == 1
    assert evict_traces(session) == 1
    assert not session._traces


def test_trace_refill_after_eviction_is_identical():
    session = SimSession()
    assert verify_trace_refill(session, name="li", scale=1.0, max_instructions=MAX_INSTS)
    assert verify_trace_refill(
        session, name="go", scale=1.0, max_instructions=MAX_INSTS,
        variant="srvp_dead", threshold=0.8,
    )
