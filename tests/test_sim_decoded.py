"""Golden differential tests: the decoded execution core vs the reference
interpreter.

The pre-decoded threaded-code engine (:mod:`repro.sim.decoded`) must be an
*exact* drop-in for the retained ``step()`` oracle: identical
:class:`TraceRecord` sequences, identical final architectural state, identical
memory, identical halt/commit counts — and identical faults, down to the
exception message and the ``pc`` left behind.  These tests pin that contract
on every workload × program variant and on a broad set of generated programs.
"""

from __future__ import annotations

import pytest

from repro.core.session import SimSession
from repro.isa import ProgramBuilder, R
from repro.sim import ArchState, FunctionalSimulator, Memory, decode
from repro.sim.functional import SimulationError, run_program, stream_program
from repro.testing import GeneratorConfig, generate_case
from repro.workloads.suite import WORKLOAD_CLASSES

#: Committed-instruction budget for the golden runs (loops re-execute the
#: same static instructions, so a small budget still covers every handler).
BUDGET = 2_000

#: Generated-program coverage: two generator shapes x 30 seeds = 60 programs.
GENERATOR_SEEDS = range(30)
GENERATOR_CONFIGS = {
    "default": GeneratorConfig(),
    "branchy": GeneratorConfig(segments=6, loop_depth=3, branch_mix=0.8, load_density=0.4),
}


def _assert_equivalent(program, make_memory, max_instructions=BUDGET):
    """Run both engines from identical initial images and compare everything."""
    ref_sim = FunctionalSimulator(program, memory=make_memory(), engine="reference")
    ref = ref_sim.run(max_instructions=max_instructions, collect_trace=True)
    dec_sim = FunctionalSimulator(program, memory=make_memory(), engine="decoded")
    dec = dec_sim.run(max_instructions=max_instructions, collect_trace=True)

    assert len(ref.trace) == len(dec.trace)
    for expected, got in zip(ref.trace, dec.trace):
        assert expected == got, f"record diverges at seq {expected.seq}: {expected} != {got}"
    assert ref.state.state_equal(dec.state)
    assert ref.memory == dec.memory
    assert (ref.halted, ref.instructions) == (dec.halted, dec.instructions)

    # The no-record fast path must leave the same architecture behind too.
    fast_sim = FunctionalSimulator(program, memory=make_memory(), engine="decoded")
    fast = fast_sim.run(max_instructions=max_instructions, collect_trace=False)
    assert fast.trace is None
    assert ref.state.state_equal(fast.state)
    assert ref.memory == fast.memory
    assert (ref.halted, ref.instructions) == (fast.halted, fast.instructions)


# ----------------------------------------------------------------------
# Workloads x program variants
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(WORKLOAD_CLASSES))
def test_workload_variants_golden(name):
    session = SimSession()
    workload = session.workload(name)
    for variant in ("base", "srvp_dead", "realloc"):
        program = session.program_variant(name, 1.0, BUDGET, variant, None, 0.8)
        _assert_equivalent(program, lambda: workload.memory("ref"))


# ----------------------------------------------------------------------
# Generated programs (the fuzz generator, fixed seeds)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shape", sorted(GENERATOR_CONFIGS))
@pytest.mark.parametrize("seed", GENERATOR_SEEDS)
def test_generated_programs_golden(shape, seed):
    case = generate_case(seed, GENERATOR_CONFIGS[shape])
    _assert_equivalent(case.program, case.memory, max_instructions=20_000)


# ----------------------------------------------------------------------
# Fault fidelity: identical exceptions, identical pc left behind
# ----------------------------------------------------------------------
def _fault_outcome(program, engine, collect_trace):
    sim = FunctionalSimulator(program, memory=Memory(), engine=engine)
    try:
        sim.run(max_instructions=BUDGET, collect_trace=collect_trace)
    except (SimulationError, ValueError) as exc:
        return type(exc), str(exc), sim.state.pc, sim.last_result.instructions
    pytest.fail(f"{engine}: expected a fault")


@pytest.mark.parametrize("collect_trace", [False, True])
def test_pc_out_of_range_fault_matches_reference(collect_trace):
    b = ProgramBuilder("wild_jump")
    with b.procedure("main"):
        b.li(R[1], 999)
        b.jmp(R[1])
        b.halt()
    program = b.build()
    ref = _fault_outcome(program, "reference", collect_trace)
    dec = _fault_outcome(program, "decoded", collect_trace)
    assert ref == dec
    assert ref[0] is SimulationError
    assert "pc 999 out of range" in ref[1]


@pytest.mark.parametrize("collect_trace", [False, True])
def test_unaligned_access_fault_matches_reference(collect_trace):
    b = ProgramBuilder("unaligned")
    with b.procedure("main"):
        b.li(R[1], 3)
        b.ld(R[2], R[1], 0)
        b.halt()
    program = b.build()
    ref = _fault_outcome(program, "reference", collect_trace)
    dec = _fault_outcome(program, "decoded", collect_trace)
    assert ref == dec
    assert ref[0] is ValueError
    assert ref[1] == "unaligned access at address 0x3"


# ----------------------------------------------------------------------
# Observer raising mid-stream: last_result stays consistent in both engines
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["reference", "decoded"])
def test_observer_raise_leaves_consistent_last_result(engine):
    session = SimSession()
    workload = session.workload("li")
    program, memory = workload.build("ref")
    sim = FunctionalSimulator(program, memory=memory, engine=engine)

    def explode(record, state):
        if record.seq == 57:
            raise RuntimeError("observer boom")

    sim.add_observer(explode)
    with pytest.raises(RuntimeError, match="observer boom"):
        sim.run(max_instructions=BUDGET, collect_trace=True)
    # The record whose observer raised had already committed architecturally,
    # so it counts: both engines must report exactly 58 executed.
    assert sim.last_result is not None
    assert sim.last_result.instructions == 58
    assert not sim.last_result.halted


# ----------------------------------------------------------------------
# Decode memoization
# ----------------------------------------------------------------------
def test_decode_is_memoized_per_program():
    session = SimSession()
    program = session.workload("m88ksim").program
    assert decode(program) is decode(program)


# ----------------------------------------------------------------------
# Satellite: run_program / stream_program forward a caller-supplied state
# ----------------------------------------------------------------------
def _seeded_state():
    state = ArchState()
    state.write(R[5], 123)
    return state


def _state_program():
    b = ProgramBuilder("uses_seed")
    with b.procedure("main"):
        b.addi(R[1], R[5], 0)
        b.halt()
    return b.build()


def test_run_program_forwards_state():
    state = _seeded_state()
    result = run_program(_state_program(), state=state)
    assert result.state is state
    assert result.state.read(R[1]) == 123


def test_stream_program_forwards_state():
    state = _seeded_state()
    sim, records = stream_program(_state_program(), state=state)
    for _ in records:
        pass
    assert sim.state is state
    assert state.read(R[1]) == 123
