"""Static reuse estimation: hand-built loops hit each reuse class."""

from repro.analysis.reuse_static import (
    ReuseClass,
    StaticReuseEstimator,
    compare_with_profile,
    reuse_by_loop_depth,
)
from repro.isa import R, assemble


def classify(text):
    program = assemble(text)
    estimate = StaticReuseEstimator(program).estimate()
    return program, estimate


def only_load(estimate, pc):
    assert pc in estimate.loads
    return estimate.loads[pc]


def test_invariant_load_untouched_dst_is_same():
    _, estimate = classify(
        """
        li r9, #16
        li r2, #64
    loop:
        ld r3, 0(r2)
        sub r9, r9, #1
        bne r9, loop
        halt
        """
    )
    assert only_load(estimate, 2).reuse is ReuseClass.SAME


def test_invariant_load_with_clobbered_dst_is_last_value():
    _, estimate = classify(
        """
        li r9, #16
        li r2, #64
    loop:
        ld r3, 0(r2)
        add r3, r3, #1
        sub r9, r9, #1
        bne r9, loop
        halt
        """
    )
    assert only_load(estimate, 2).reuse is ReuseClass.LAST_VALUE


def test_sibling_load_supplies_dead_register():
    _, estimate = classify(
        """
        li r9, #16
        li r2, #64
    loop:
        ld r3, 0(r2)
        ld r4, 0(r2)
        add r3, r3, #1
        add r5, r4, #0
        sub r9, r9, #1
        bne r9, loop
        halt
        """
    )
    # The first load's destination is clobbered, but the sibling load of the
    # same invariant address leaves the value in r4, dead at the first load.
    verdict = only_load(estimate, 2)
    assert verdict.reuse is ReuseClass.DEAD
    assert verdict.source_reg == R[4]
    # The sibling itself keeps its destination untouched.
    assert only_load(estimate, 3).reuse is ReuseClass.SAME


def test_same_base_same_offset_store_kills_reuse():
    _, estimate = classify(
        """
        li r9, #16
        li r2, #64
    loop:
        ld r3, 0(r2)
        add r4, r3, #1
        st r4, 0(r2)
        sub r9, r9, #1
        bne r9, loop
        halt
        """
    )
    verdict = only_load(estimate, 2)
    assert verdict.reuse is ReuseClass.NONE
    assert "store" in verdict.reason


def test_disjoint_base_store_does_not_kill_reuse():
    _, estimate = classify(
        """
        li r9, #16
        li r2, #64
        li r7, #256
    loop:
        ld r3, 0(r2)
        st r3, 0(r7)
        sub r9, r9, #1
        bne r9, loop
        halt
        """
    )
    assert only_load(estimate, 3).reuse is ReuseClass.SAME


def test_same_base_distinct_offset_store_does_not_kill_reuse():
    _, estimate = classify(
        """
        li r9, #16
        li r2, #64
    loop:
        ld r3, 0(r2)
        st r3, 8(r2)
        sub r9, r9, #1
        bne r9, loop
        halt
        """
    )
    assert only_load(estimate, 2).reuse is ReuseClass.SAME


def test_varying_base_is_not_reusable():
    _, estimate = classify(
        """
        li r9, #16
        li r2, #64
    loop:
        ld r3, 0(r2)
        add r2, r2, #8
        sub r9, r9, #1
        bne r9, loop
        halt
        """
    )
    verdict = only_load(estimate, 2)
    assert verdict.reuse is ReuseClass.NONE
    assert "address varies" in verdict.reason


def test_load_outside_loop_is_none():
    _, estimate = classify(
        """
        li r2, #64
        ld r3, 0(r2)
        halt
        """
    )
    verdict = only_load(estimate, 1)
    assert verdict.reuse is ReuseClass.NONE
    assert "loop" in verdict.reason


def test_counts_cover_every_static_load():
    program, estimate = classify(
        """
        li r9, #16
        li r2, #64
    loop:
        ld r3, 0(r2)
        add r3, r3, #1
        sub r9, r9, #1
        bne r9, loop
        ld r4, 8(r2)
        halt
        """
    )
    counts = estimate.counts()
    assert sum(counts.values()) == len(estimate.loads) == 2
    assert estimate.pcs_of(ReuseClass.LAST_VALUE) == {2}
    assert estimate.pcs_of(ReuseClass.NONE) == {6}


def test_zero_register_base_load_is_invariant():
    # r31 is hardwired zero: the address is the literal offset, trivially
    # invariant; the destination is untouched, so the class is SAME.
    _, estimate = classify(
        """
        li r9, #16
    loop:
        ld r3, 8(r31)
        sub r9, r9, #1
        bne r9, loop
        halt
        """
    )
    assert only_load(estimate, 1).reuse is ReuseClass.SAME


def test_zero_register_destination_load_still_classified():
    _, estimate = classify(
        """
        li r9, #16
        li r2, #64
    loop:
        ld r31, 0(r2)
        sub r9, r9, #1
        bne r9, loop
        halt
        """
    )
    # Classification is about the address stream; the (dropped) destination
    # is the marking pass's problem, not the estimator's.
    assert only_load(estimate, 2).reuse is not ReuseClass.NONE


NESTED_SIBLINGS = """
    li r9, #4
    li r2, #64
outer:
    ld r6, 0(r2)
    li r8, #4
inner:
    ld r3, 0(r2)
    ld r4, 0(r2)
    add r3, r3, #1
    sub r8, r8, #1
    bne r8, inner
    sub r9, r9, #1
    bne r9, outer
    halt
"""


def test_sibling_chain_across_nested_loops():
    _, estimate = classify(NESTED_SIBLINGS)
    # Outer-level load: judged against the outer loop, destination untouched.
    assert only_load(estimate, 2).reuse is ReuseClass.SAME
    # Inner pair: the clobbered load leans on its sibling's register...
    clobbered = only_load(estimate, 4)
    assert clobbered.reuse is ReuseClass.DEAD
    assert clobbered.source_reg == R[4]
    assert clobbered.source_pc == 5
    # ... and the sibling itself is SAME within the inner loop.
    assert only_load(estimate, 5).reuse is ReuseClass.SAME


def test_reuse_by_loop_depth_flat_program_is_none():
    program, estimate = classify(NESTED_SIBLINGS)
    assert program.source_map is None
    assert reuse_by_loop_depth(program, estimate) is None


def test_reuse_by_loop_depth_ir_lowered_buckets_every_load():
    from repro.workloads import make_workload

    program = make_workload("dotprod").program
    assert program.source_map is not None
    estimate = StaticReuseEstimator(program).estimate()
    by_depth = reuse_by_loop_depth(program, estimate)
    assert by_depth is not None and by_depth
    assert sum(bucket["loads"] for bucket in by_depth.values()) == len(estimate.loads)
    for bucket in by_depth.values():
        assert {"loads", "same", "dead", "last_value"} <= set(bucket)


def test_compare_with_profile_shape():
    from repro.core.session import SimSession

    session = SimSession()
    name, max_insts, threshold = "m88ksim", 20_000, 0.8
    program = session.workload(name).program
    profile = session.train_artifacts(name, 1.0, max_insts).profile
    lists = session.profile_lists(name, 1.0, max_insts, threshold, loads_only=True)
    estimate = StaticReuseEstimator(program).estimate()
    report = compare_with_profile(estimate, profile, lists)

    assert report["program"] == program.name
    assert report["static_loads"] == len(estimate.loads) > 0
    assert 0 <= report["judged_loads"] <= report["static_loads"]
    assert set(report["overlap"]) == {"same", "dead", "last_value"}
    for entry in report["overlap"].values():
        assert entry["both"] <= min(entry["static"], entry["profiled"])
    for fraction in report["weighted_static_fractions"].values():
        assert 0.0 <= fraction <= 1.0
