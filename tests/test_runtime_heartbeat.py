"""Tests for the lease/heartbeat layer behind the campaign service.

Everything here runs on :class:`ManualClock` so lease expiry, steals and
renewal races are scripted deterministically — no sleeps, no wall time.
"""

import pytest

from repro.runtime.heartbeat import (
    DEFAULT_LEASE_DURATION,
    FileHeartbeatBoard,
    HeartbeatBoard,
    Lease,
    LeaseError,
    LeaseTable,
    ManualClock,
    MonotonicClock,
)


# ----------------------------------------------------------------------
# Clocks
# ----------------------------------------------------------------------
def test_manual_clock_advances_only_when_told():
    clock = ManualClock(start=10.0)
    assert clock.now() == 10.0
    clock.advance(2.5)
    assert clock.now() == 12.5
    assert clock.now() == 12.5  # reading does not tick


def test_manual_clock_rejects_negative_advance():
    clock = ManualClock()
    with pytest.raises(ValueError):
        clock.advance(-1.0)


def test_monotonic_clock_is_monotonic():
    clock = MonotonicClock()
    a = clock.now()
    b = clock.now()
    assert b >= a


# ----------------------------------------------------------------------
# Heartbeat boards
# ----------------------------------------------------------------------
def test_heartbeat_board_records_latest_beat():
    clock = ManualClock()
    board = HeartbeatBoard(clock=clock)
    assert board.last_beat("cell") is None
    board.beat("cell", "w1")
    clock.advance(1.0)
    board.beat("cell", "w1")
    worker, at = board.last_beat("cell")
    assert worker == "w1"
    assert at == 1.0
    board.clear("cell")
    assert board.last_beat("cell") is None


def test_file_heartbeat_board_roundtrip(tmp_path):
    board = FileHeartbeatBoard(str(tmp_path), clock=ManualClock(start=5.0))
    board.beat("li/lvp/selective", "d3")
    worker, at = board.last_beat("li/lvp/selective")
    assert worker == "d3"
    assert at == pytest.approx(5.0)


def test_file_heartbeat_board_torn_payload_reads_as_none(tmp_path):
    board = FileHeartbeatBoard(str(tmp_path), clock=ManualClock())
    board.beat("cell", "w1")
    # Simulate a torn write: truncate the payload mid-field.
    path = next(tmp_path.iterdir())
    path.write_text("w1 12.3")  # fine: still two fields
    assert board.last_beat("cell") is not None
    path.write_text("w1")  # torn: timestamp missing
    assert board.last_beat("cell") is None
    path.write_text("w1 not-a-number\n")
    assert board.last_beat("cell") is None


def test_file_heartbeat_board_clear_removes_file(tmp_path):
    board = FileHeartbeatBoard(str(tmp_path), clock=ManualClock())
    board.beat("cell", "w1")
    board.clear("cell")
    assert board.last_beat("cell") is None
    board.clear("cell")  # idempotent on missing file


# ----------------------------------------------------------------------
# Leases
# ----------------------------------------------------------------------
def test_lease_deadline_and_expiry():
    lease = Lease(cell_id="c", owner="w1", granted_at=0.0, duration=10.0)
    assert lease.deadline == 10.0
    assert not lease.expired(10.0)  # boundary is still held
    assert lease.expired(10.1)


def test_lease_table_claim_renew_release():
    clock = ManualClock()
    table = LeaseTable(duration=10.0, clock=clock)
    table.claim("c1", "w1")
    assert table.holder("c1") == "w1"
    assert "c1" in table
    clock.advance(8.0)
    table.renew("c1", owner="w1")
    clock.advance(8.0)  # 16s total: would have expired without the renewal
    assert table.expired_leases() == []
    table.release("c1")
    assert "c1" not in table
    assert table.stats.releases == 1


def test_lease_table_double_claim_on_live_lease_raises():
    table = LeaseTable(duration=10.0, clock=ManualClock())
    table.claim("c1", "w1")
    with pytest.raises(LeaseError):
        table.claim("c1", "w2")


def test_lease_table_claim_supersedes_expired_lease():
    clock = ManualClock()
    table = LeaseTable(duration=10.0, clock=clock)
    table.claim("c1", "w1")
    clock.advance(10.1)
    assert [lease.cell_id for lease in table.expired_leases()] == ["c1"]
    table.claim("c1", "w2")  # steal: allowed once expired
    assert table.holder("c1") == "w2"
    assert table.expired_leases() == []


def test_lease_table_renew_by_non_owner_is_rejected():
    table = LeaseTable(duration=10.0, clock=ManualClock())
    table.claim("c1", "w1")
    with pytest.raises(LeaseError):
        table.renew("c1", owner="w2")


def test_lease_table_renew_uses_latest_timestamp():
    clock = ManualClock()
    table = LeaseTable(duration=10.0, clock=clock)
    table.claim("c1", "w1")
    clock.advance(5.0)
    table.renew("c1", owner="w1", at=4.0)  # stale heartbeat must not rewind
    lease = table.active()["c1"]
    assert lease.renewed_at == pytest.approx(4.0)
    table.renew("c1", owner="w1", at=5.0)
    assert table.active()["c1"].renewed_at == pytest.approx(5.0)


def test_lease_table_reclaim_counts_expirations():
    clock = ManualClock()
    table = LeaseTable(duration=1.0, clock=clock)
    table.claim("c1", "w1")
    clock.advance(2.0)
    table.reclaim("c1")
    assert table.stats.reclaims == 1
    assert table.stats.expirations == 1
    assert len(table) == 0
    # Reclaiming an unexpired lease (supervisor-initiated steal) counts the
    # reclaim but not an expiration.
    table.claim("c2", "w1")
    table.reclaim("c2")
    assert table.stats.reclaims == 2
    assert table.stats.expirations == 1


def test_lease_table_default_duration():
    table = LeaseTable()
    assert table.duration == DEFAULT_LEASE_DURATION
