"""The five oracle families: clean on generated programs, and each one
provably detects a seeded defect (mutation self-tests)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.compiler import insertion
from repro.testing import (
    ORACLE_FAMILIES,
    ORACLES,
    CaseInvalid,
    OracleViolation,
    generate_case,
)
from repro.testing import oracles as oracles_mod

SEEDS = range(12)


# ----------------------------------------------------------------------
# Clean programs satisfy every oracle
# ----------------------------------------------------------------------
@pytest.mark.parametrize("oracle", ORACLE_FAMILIES)
def test_oracles_pass_on_generated_programs(oracle):
    for seed in SEEDS:
        ORACLES[oracle](generate_case(seed))


def test_nonhalting_case_is_invalid_not_a_violation():
    case = generate_case(0)
    tiny = dataclasses.replace(case)
    old = oracles_mod.MAX_INSTRUCTIONS
    oracles_mod.MAX_INSTRUCTIONS = 3  # force the budget to expire mid-run
    try:
        with pytest.raises(CaseInvalid):
            ORACLES["trace-equivalence"](tiny)
    finally:
        oracles_mod.MAX_INSTRUCTIONS = old


# ----------------------------------------------------------------------
# Mutation self-tests: every family detects at least one seeded defect
# ----------------------------------------------------------------------
def test_trace_equivalence_detects_truncated_stream(monkeypatch):
    """Defect: the streaming executor silently drops the last record."""
    real = oracles_mod._streaming_run

    def truncating(program, memory):
        sim, trace = real(program, memory)
        return sim, trace[:-1]

    monkeypatch.setattr(oracles_mod, "_streaming_run", truncating)
    with pytest.raises(OracleViolation) as excinfo:
        ORACLES["trace-equivalence"](generate_case(0))
    assert excinfo.value.oracle == "trace-equivalence"


def test_trace_equivalence_detects_corrupted_record(monkeypatch):
    """Defect: one streamed result is off by one."""
    real = oracles_mod._streaming_run

    def corrupting(program, memory):
        sim, trace = real(program, memory)
        victim = next(i for i, r in enumerate(trace) if r.result is not None)
        trace[victim] = dataclasses.replace(trace[victim], result=trace[victim].result + 1)
        return sim, trace

    monkeypatch.setattr(oracles_mod, "_streaming_run", corrupting)
    with pytest.raises(OracleViolation, match="diverges"):
        ORACLES["trace-equivalence"](generate_case(1))


def test_pass_preservation_detects_dropped_insertion(monkeypatch):
    """Defect: the insertion pass loses its first inserted instruction
    (the test-only mutation switch in repro.compiler.insertion)."""
    monkeypatch.setattr(insertion, "_TEST_DROP_FIRST_INSERTED", True)
    with pytest.raises(OracleViolation) as excinfo:
        ORACLES["pass-preservation"](generate_case(0))
    assert excinfo.value.oracle == "pass-preservation"
    assert "insert" in excinfo.value.message


def test_pass_preservation_clean_after_mutation_reset():
    assert insertion._TEST_DROP_FIRST_INSERTED is False
    ORACLES["pass-preservation"](generate_case(0))


def test_predictor_sanity_detects_counter_overflow(monkeypatch):
    """Defect: a confidence counter escapes its 3-bit encoding."""
    real = oracles_mod._counter_cells

    def overflowing(predictor):
        cells = real(predictor)
        if cells:
            cells[0] = oracles_mod.COUNTER_MAX + 1
        return cells

    monkeypatch.setattr(oracles_mod, "_counter_cells", overflowing)
    with pytest.raises(OracleViolation, match="escaped"):
        ORACLES["predictor-sanity"](generate_case(0))


def test_predictor_sanity_detects_static_dynamic_divergence(monkeypatch):
    """Defect: the static-RVP training path claims an extra hit per pc."""
    real = oracles_mod._train_predictor

    def biased(trace, predictor):
        counts = real(trace, predictor)
        from repro.vp.static_rvp import StaticRVP

        if isinstance(predictor, StaticRVP):
            counts = {pc: (u, hits + 1) for pc, (u, hits) in counts.items()}
        return counts

    monkeypatch.setattr(oracles_mod, "_train_predictor", biased)
    # find a seed whose profile has a non-empty "same" list so the
    # static-vs-dynamic comparison actually runs
    for seed in range(30):
        try:
            ORACLES["predictor-sanity"](generate_case(seed))
        except OracleViolation as violation:
            assert "static vs dynamic" in violation.message
            return
    pytest.fail("no seed exercised the static-vs-dynamic comparison")


def test_recovery_invariant_detects_lost_commits(monkeypatch):
    """Defect: the pipeline drops a committed instruction."""
    real = oracles_mod._simulate

    def lossy(trace, predictor, recovery):
        stats = real(trace, predictor, recovery)
        stats.committed -= 1
        return stats

    monkeypatch.setattr(oracles_mod, "_simulate", lossy)
    with pytest.raises(OracleViolation, match="committed"):
        ORACLES["recovery-invariant"](generate_case(0))


def test_trace_equivalence_detects_jit_guard_defect(monkeypatch):
    """Defect: the JIT stops checking the remaining budget before entering a
    compiled superinstruction (the test-only switch in repro.sim.jit), so a
    truncated run overshoots its budget mid-block.  The oracle's half-budget
    jit-vs-decoded comparison must notice."""
    from repro.sim import jit as jit_tier

    monkeypatch.setattr(jit_tier, "_TEST_SKIP_BUDGET_GUARD", True)
    for seed in range(10):
        try:
            ORACLES["trace-equivalence"](generate_case(seed))
        except OracleViolation as violation:
            assert violation.oracle == "trace-equivalence"
            return
    pytest.fail("seeded jit guard defect was never detected")


def test_trace_equivalence_detects_lane_mask_defect(monkeypatch):
    """Defect: at a divergent branch the batched engine applies the majority
    outcome to *every* lane instead of masking (the test-only switch in
    repro.sim.batched).  The oracle's divergence probe — two lanes forced
    down opposite branch sides — must notice."""
    from repro.sim import batched as batched_mod

    monkeypatch.setattr(batched_mod, "_TEST_BREAK_LANE_MASK", True)
    with pytest.raises(OracleViolation) as excinfo:
        ORACLES["trace-equivalence"](generate_case(0))
    assert excinfo.value.oracle == "trace-equivalence"


def test_absint_soundness_clean_on_counted_loop():
    ORACLES["absint-soundness"](_counted_loop_case())


def _counted_loop_case():
    import dataclasses as dc

    from repro.isa import assemble

    case = generate_case(0)
    program = assemble(
        """
        .proc main
            li r1, #0
        loop:
            add r1, r1, #1
            sub r3, r1, #10
            bne r3, loop
            halt
        """,
        name="counted",
    )
    return dc.replace(case, program=program)


def test_absint_soundness_detects_frozen_widening(monkeypatch):
    """Defect: loop phis stop widening (the test-only freeze switch in
    repro.analysis.absint), so the counter's interval stays stuck at its
    first value and branch/unreachability verdicts turn unsound."""
    from repro.analysis import absint as absint_mod

    monkeypatch.setattr(absint_mod, "_TEST_FREEZE_PHIS", True)
    with pytest.raises(OracleViolation) as excinfo:
        ORACLES["absint-soundness"](_counted_loop_case())
    assert excinfo.value.oracle == "absint-soundness"


def test_recovery_invariant_detects_phantom_recovery(monkeypatch):
    """Defect: recovery work is charged even with no predictor."""
    from repro.vp.base import NoPredictor

    real = oracles_mod._simulate

    def phantom(trace, predictor, recovery):
        stats = real(trace, predictor, recovery)
        if isinstance(predictor, NoPredictor):
            stats.value_squashes += 1
        return stats

    monkeypatch.setattr(oracles_mod, "_simulate", phantom)
    with pytest.raises(OracleViolation, match="no predictor"):
        ORACLES["recovery-invariant"](generate_case(0))
