"""Architectural state tests."""

from repro.isa import F, MASK64, R
from repro.sim import ArchState


def test_read_write():
    s = ArchState()
    s.write(R[3], 42)
    assert s.read(R[3]) == 42
    assert s.read(F[3]) == 0  # separate files


def test_zero_register_immutable():
    s = ArchState()
    s.write(R[31], 99)
    s.write(F[31], 99)
    assert s.read(R[31]) == 0 and s.read(F[31]) == 0


def test_values_masked_to_64_bits():
    s = ArchState()
    s.write(R[1], (1 << 64) + 3)
    assert s.read(R[1]) == 3
    s.write(R[1], MASK64)
    assert s.read(R[1]) == MASK64


def test_copy_independent():
    s = ArchState()
    s.write(R[1], 1)
    c = s.copy()
    c.write(R[1], 2)
    assert s.read(R[1]) == 1 and c.read(R[1]) == 2
    assert c.pc == s.pc


def test_state_equal_ignores_pc_and_zero_regs():
    a, b = ArchState(), ArchState()
    a.pc = 10
    assert a.state_equal(b)
    a.write(F[2], 5)
    assert not a.state_equal(b)
    b.write(F[2], 5)
    assert a.state_equal(b)


def test_snapshot_lists_nonzero_only():
    s = ArchState()
    s.write(R[4], 7)
    s.write(F[2], 9)
    snap = s.snapshot()
    assert snap == {R[4]: 7, F[2]: 9}
