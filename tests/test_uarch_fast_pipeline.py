"""Fast timing tier: golden fast==reference stats matrix over the full
workload suite, event-heap ordering/validity, FastDynInst pool hygiene, and
the pipeline-equivalence oracle's mutation self-test."""

import heapq

import pytest

from repro.core.experiment import ExperimentRunner
from repro.core.session import SimSession
from repro.sim import run_program
from repro.testing import ORACLES, OracleViolation, generate_case
from repro.uarch import fast as fast_mod
from repro.uarch.fast import FastDynInst, FastPipelineSimulator
from repro.uarch.pipeline import _DONE, _ISSUED, simulate
from repro.uarch.recovery import RecoveryScheme
from repro.uarch.config import table1_config
from repro.vp import LastValuePredictor, NoPredictor
from repro.workloads import all_workloads

CFG = table1_config()
WORKLOADS = tuple(w.name for w in all_workloads())

#: One stream-cached SimSession for the whole module: traces, profiles and
#: prepared streams are built once per workload, not once per matrix cell.
SESSION = SimSession()

# One table-backed config, one profile-guided static config (marked program
# variant), one reallocated-program config — the three stream-preparation
# shapes the fast tier must reproduce bit-for-bit.
MATRIX_CONFIGS = ("drvp", "srvp_dead", "drvp_all_realloc")


def trace_of(program, memory=None, budget=50_000):
    return run_program(program, memory=memory, max_instructions=budget, collect_trace=True).trace


@pytest.fixture(scope="module")
def squashy_trace():
    """A real-workload trace whose value predictions actually mispredict:
    REFETCH + LVP on dotprod squashes ~15 times in 3000 instructions."""
    runner = ExperimentRunner("dotprod", max_instructions=3_000, session=SESSION)
    return runner.ref_trace("base")


# ----------------------------------------------------------------------
# Golden matrix: fast counters == reference counters, cell for cell
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workload", WORKLOADS)
def test_fast_matches_reference_matrix(workload):
    # 3000 instructions is the smallest budget at which the reallocated
    # variant passes program verification on every workload (li's profile
    # is degenerate below that).
    runner = ExperimentRunner(workload, max_instructions=3_000, session=SESSION)
    for config in MATRIX_CONFIGS:
        variant, _ = runner._build(config, None)
        trace = runner.ref_trace(variant)
        for scheme in RecoveryScheme:
            reference = simulate(
                trace, runner._build(config, None)[1], runner.machine, scheme, engine="reference"
            )
            fast = simulate(
                trace, runner._build(config, None)[1], runner.machine, scheme, engine="fast"
            )
            assert fast.counters() == reference.counters(), (
                f"{workload}/{config}/{scheme.value}: fast tier diverged"
            )


# ----------------------------------------------------------------------
# Event heap: ordering, lazy cleaning, stale-event validity
# ----------------------------------------------------------------------
class _SpyCompletions(dict):
    """Records the cycles at which the completion stage drained a live
    event bucket (``pop`` returning a batch, not None)."""

    def __init__(self):
        super().__init__()
        self.drained = []

    def pop(self, key, default=None):
        batch = super().pop(key, default)
        if batch is not None:
            self.drained.append(key)
        return batch


def _fast_sim(trace, predictor=None, recovery=RecoveryScheme.SELECTIVE):
    return FastPipelineSimulator(trace, predictor or NoPredictor(), CFG, recovery)


def test_completion_events_drain_in_cycle_order(tiny_loop_program, tiny_loop_memory):
    trace = trace_of(tiny_loop_program, tiny_loop_memory)
    sim = _fast_sim(trace)
    spy = _SpyCompletions()
    sim.completions = spy  # installed before run(): _run hoists this object
    sim.run()
    assert spy.drained, "a loop of loads must schedule completion events"
    assert spy.drained == sorted(spy.drained)
    assert len(spy.drained) == len(set(spy.drained)), "each bucket drains once"
    # Post-run: every drained bucket is gone; any heap residue is stale
    # (exactly the keys the lazy cleaner is allowed to leave behind).
    assert all(key not in sim.completions for key in spy.drained)
    assert all(key not in sim.completions for key in sim._comp_heap)


def test_next_active_cycle_cleans_stale_heap_keys(tiny_loop_program, tiny_loop_memory):
    trace = trace_of(tiny_loop_program, tiny_loop_memory)
    sim = _fast_sim(trace)
    inst = FastDynInst(sim.stream[0])
    inst.state = _ISSUED
    inst.done_at = 12
    sim.completions[12] = [inst]
    for key in (5, 7, 12):  # 5 and 7 are stale: not in completions
        heapq.heappush(sim._comp_heap, key)
    sim.fetch_cursor = len(sim.stream)  # disable the fetch wake source
    assert sim._next_active_cycle(max_cycles=1_000) == 12
    assert sim._comp_heap[0] == 12, "stale keys are popped during the scan"


def test_next_active_cycle_wakes_on_fetch_resume(tiny_loop_program, tiny_loop_memory):
    trace = trace_of(tiny_loop_program, tiny_loop_memory)
    sim = _fast_sim(trace)
    sim.fetch_resume = 37  # pending L1I miss fill, nothing else in flight
    assert sim._next_active_cycle(max_cycles=1_000) == 37


def test_next_active_cycle_deadlock_horizon(tiny_loop_program, tiny_loop_memory):
    trace = trace_of(tiny_loop_program, tiny_loop_memory)
    sim = _fast_sim(trace)
    sim.fetch_stalled_on = 0  # redirect stall with no wake source at all
    assert sim._next_active_cycle(max_cycles=1_000) == 1_001


def test_squash_invalidates_pending_events(squashy_trace):
    # done_at is the event-validity cookie: squashed incarnations must not
    # satisfy `done_at == cycle` for any still-queued event.
    sim = _fast_sim(squashy_trace, LastValuePredictor(), RecoveryScheme.REFETCH)
    stats = sim.run()
    assert stats.value_squashes > 0, "case must actually exercise squashes"
    live = {id(inst) for inst in sim.window.values()}
    for key, batch in sim.completions.items():
        for inst in batch:
            if inst.state == _ISSUED and inst.done_at == key:
                # The only events that would still fire belong to live
                # windowed incarnations; every squashed/reused incarnation
                # fails the cookie check and is skipped as stale.
                assert id(inst) in live


# ----------------------------------------------------------------------
# FastDynInst pool reset hygiene
# ----------------------------------------------------------------------
def test_reset_restores_wakeup_defaults(tiny_loop_program, tiny_loop_memory):
    trace = trace_of(tiny_loop_program, tiny_loop_memory)
    sim = _fast_sim(trace)
    inst = FastDynInst(sim.stream[0])
    other = FastDynInst(sim.stream[1])
    inst.waiters.append(other)
    inst.in_cand = True
    inst.done_at = 42
    inst.dirty = True
    inst.gen = 7
    inst.reset(fetch_cycle=9)
    assert inst.waiters == [] and inst.in_cand is False
    assert inst.done_at == -1 and inst.dirty is False
    assert inst.earliest_issue == 9
    # reset() zeroes gen; the acquire path re-applies the pre-reset gen + 1
    # so event cookies stay monotonic across reuse.
    assert inst.gen == 0


def test_pool_entries_are_clean_or_marked_dirty(squashy_trace):
    # A squash-heavy run (REFETCH + a mispredicting LVP) recycles both
    # committed instructions and squash victims.  Committed plain-lifecycle
    # entries must satisfy the fast-path acquire assumptions; everything
    # else must carry the dirty flag that forces a full reset on reuse.
    sim = _fast_sim(squashy_trace, LastValuePredictor(), RecoveryScheme.REFETCH)
    stats = sim.run()
    assert stats.value_squashes > 0, "case must actually exercise squashes"
    assert sim._pool, "commit/squash must return instructions to the pool"
    assert any(inst.dirty for inst in sim._pool), "squash victims reach the pool"
    for inst in sim._pool:
        if inst.dirty:
            continue  # acquire runs a full reset(); stale fields are fine
        # Fast-path acquire resets only entry/gen/state/min_issue/
        # complete_cycle — the rest must already be at defaults.
        assert not inst.waiters, "pooled clean producers must not pin consumers"
        assert not inst.in_cand
        assert inst.state == _DONE
        assert not inst.predicted and inst.resolved
        assert not inst.spec_on and not inst.spec_consumers
        assert not inst.train and inst.iq_released


def test_pool_reuse_keeps_stats_exact(squashy_trace):
    # End-to-end pool check: a squash-heavy fast run equals the reference.
    for scheme in RecoveryScheme:
        reference = simulate(
            squashy_trace, LastValuePredictor(), CFG, scheme, engine="reference"
        )
        fast = simulate(squashy_trace, LastValuePredictor(), CFG, scheme, engine="fast")
        assert fast.counters() == reference.counters()


# ----------------------------------------------------------------------
# Oracle mutation self-test: the seeded skip-accounting defect is caught
# ----------------------------------------------------------------------
def test_pipeline_equivalence_oracle_detects_skip_defect(monkeypatch):
    monkeypatch.setattr(fast_mod, "_TEST_SKIP_EVENT", True)
    for seed in range(12):
        try:
            ORACLES["pipeline-equivalence"](generate_case(seed))
        except OracleViolation as violation:
            assert "diverged" in str(violation)
            return
    pytest.fail("seeded skip-accounting defect went undetected")
