"""Greedy shrinker: structural validity of deletions and convergence."""

from __future__ import annotations

import pytest

from repro.analysis.verifier import verify_program
from repro.sim.functional import run_program
from repro.testing import delete_pcs, generate_case, shrink_case
from repro.testing.runner import _still_fails_same_family


def test_delete_pcs_removes_and_remaps():
    case = generate_case(0)
    program = case.program
    smaller = delete_pcs(program, [1])
    assert smaller is not None
    assert len(smaller) == len(program) - 1
    # labels moved back by one where they pointed past the deletion
    for name, pc in program.labels.items():
        assert smaller.labels[name] == (pc - 1 if pc > 1 else pc)
    # pcs re-resolved contiguously by the Program constructor
    assert [inst.pc for inst in smaller] == list(range(len(smaller)))


def test_delete_pcs_rejects_emptying_a_procedure():
    case = generate_case(0)
    assert delete_pcs(case.program, range(len(case.program))) is None


def test_delete_pcs_out_of_range_is_noop_rejection():
    case = generate_case(0)
    assert delete_pcs(case.program, [10_000]) is None


def test_deleted_program_stays_runnable_or_is_rejected():
    """Surviving candidates must be structurally valid programs."""
    case = generate_case(2)
    for pc in range(len(case.program)):
        candidate = delete_pcs(case.program, [pc])
        if candidate is None:
            continue
        # must construct and verify structurally (semantics may differ)
        diagnostics = verify_program(candidate)
        assert all(d.rule != "RVP005" for d in diagnostics)


def test_shrink_converges_on_a_specific_instruction():
    """A predicate keyed on one surviving opcode shrinks close to minimal."""
    case = generate_case(4)  # seed 4 contains a mul

    def still_fails(candidate):
        # "fails" while the program still contains any multiply — a stand-in
        # for an oracle keyed on one instruction
        return any(inst.op.name == "mul" for inst in candidate.program)

    assert still_fails(case)
    shrunk = shrink_case(case, still_fails)
    assert any(inst.op.name == "mul" for inst in shrunk.program)
    assert len(shrunk.program) < len(case.program)


def test_shrink_keeps_failing_case_when_nothing_deletable():
    case = generate_case(0)
    shrunk = shrink_case(case, lambda candidate: False)
    assert shrunk.program.render() == case.program.render()


def test_runner_predicate_rejects_nonhalting_candidates():
    """The fuzz predicate only accepts candidates the oracle still rejects —
    a candidate that cannot be judged (or passes) must return False."""
    predicate = _still_fails_same_family("trace-equivalence")
    case = generate_case(0)  # clean case: oracle passes -> not a failure
    assert predicate(case) is False


def test_shrunk_programs_execute():
    case = generate_case(9)  # seed 9 contains a load

    def still_fails(candidate):
        try:
            result = run_program(candidate.program, memory=candidate.memory(), max_instructions=50_000)
        except Exception:
            return False
        return result.halted and any(inst.is_load for inst in candidate.program)

    assert still_fails(case)
    shrunk = shrink_case(case, still_fails)
    result = run_program(shrunk.program, memory=shrunk.memory(), max_instructions=50_000)
    assert result.halted
    assert any(inst.is_load for inst in shrunk.program)
