"""Campaign orchestration: fresh runs, kill-mid-campaign, resume with zero
re-runs of committed cells, and the CLI surface (`repro run --out-dir/--resume`)."""

from __future__ import annotations

import json
import signal

import pytest

from repro.cli import main
from repro.runtime import (
    CampaignSpec,
    JournalError,
    RunJournal,
    deliver_sigterm_as_interrupt,
    journal_path,
    resume_campaign,
    run_campaign,
)
from repro.testing import FaultPlan, FaultyExecutor

MAX_INSTS = 1_500

SPEC = CampaignSpec(
    workloads=("li", "go"),
    configs=("no_predict", "lvp"),
    max_instructions=MAX_INSTS,
    jobs=2,
)


class _ExecutorFactory:
    """Builds FaultyExecutors for a campaign and remembers them."""

    def __init__(self, plan: FaultPlan = FaultPlan()) -> None:
        self.plan = plan
        self.executors = []

    def __call__(self, max_workers=None) -> FaultyExecutor:
        executor = FaultyExecutor(self.plan, max_workers)
        self.executors.append(executor)
        return executor

    @property
    def submissions(self) -> int:
        return sum(len(e.submitted) for e in self.executors)


# ----------------------------------------------------------------------
# Spec identity
# ----------------------------------------------------------------------
def test_spec_rejects_unknown_machine():
    with pytest.raises(ValueError, match="unknown machine"):
        CampaignSpec(workloads=("li",), configs=("lvp",), machine="warp9")


def test_spec_config_dict_excludes_jobs():
    # Parallelism never changes results, so resuming with another --jobs
    # must fingerprint identically.
    a = SPEC.config_dict()
    b = SPEC.with_jobs(16).config_dict()
    assert a == b
    assert "jobs" not in a
    rebuilt = CampaignSpec.from_config(a, jobs=3)
    assert rebuilt.config_dict() == a
    assert rebuilt.jobs == 3


def test_spec_from_config_defaults_optional_fields():
    # Hand-written spool specs (`repro serve`) may omit anything with a
    # dataclass default; only the grid axes are required.
    spec = CampaignSpec.from_config({"workloads": ["li"], "configs": ["lvp"]})
    assert spec.recoveries == ("selective",)
    assert spec.machine == "table1"
    assert spec.max_instructions == 40_000
    assert spec.threshold == 0.8
    assert spec.scale == 1.0


def test_spec_cell_ids_are_grid_ordered():
    assert SPEC.cell_ids() == [
        "li/no_predict/selective",
        "li/lvp/selective",
        "go/no_predict/selective",
        "go/lvp/selective",
    ]


# ----------------------------------------------------------------------
# Fresh run / trivial resume
# ----------------------------------------------------------------------
def test_fresh_campaign_completes_and_journals(tmp_path):
    factory = _ExecutorFactory()
    report = run_campaign(SPEC, str(tmp_path), run_id="fresh", executor_factory=factory)
    assert report.complete
    assert report.run_id == "fresh"
    assert report.counts() == {"ok": 4}
    assert report.executed == 4 and report.restored == 0 and not report.resumed
    assert [r.workload for r in report.results] == ["li", "li", "go", "go"]
    journal = RunJournal.open(report.journal_path)
    assert journal.counts() == {"ok": 4}
    # Every ok record embeds the serialized result resume will restore.
    assert all(entry["result"]["stats"] for entry in journal.states().values())


def test_resume_of_complete_run_restores_everything(tmp_path):
    run_campaign(SPEC, str(tmp_path), run_id="done", executor_factory=_ExecutorFactory())
    factory = _ExecutorFactory()
    report = resume_campaign(str(tmp_path), "done", jobs=2, executor_factory=factory)
    assert report.complete and report.resumed
    assert report.restored == 4 and report.executed == 0
    assert factory.submissions == 0  # nothing re-ran
    assert len(report.results) == 4


# ----------------------------------------------------------------------
# Kill mid-campaign → resume (the tentpole contract)
# ----------------------------------------------------------------------
def test_kill_mid_campaign_then_resume_reruns_only_uncommitted_cells(tmp_path):
    baseline = run_campaign(
        SPEC, str(tmp_path), run_id="baseline", executor_factory=_ExecutorFactory()
    )

    # The injected KeyboardInterrupt stands in for Ctrl-C/SIGTERM landing
    # while cell 2 is in flight: cells 0 and 1 have committed, 2 and 3 not.
    killer = _ExecutorFactory(FaultPlan(interrupt_slot=2))
    with pytest.raises(KeyboardInterrupt):
        run_campaign(SPEC, str(tmp_path), run_id="killed", executor_factory=killer)
    # The unwind cancelled queued futures instead of waiting on them.
    assert (False, True) in killer.executors[0].shutdown_calls

    interrupted = RunJournal.find(str(tmp_path), "killed")
    assert interrupted.counts() == {"ok": 2, "pending": 2}
    assert interrupted.pending_cells() == SPEC.cell_ids()[2:]

    resumer = _ExecutorFactory()
    report = resume_campaign(str(tmp_path), "killed", jobs=2, executor_factory=resumer)
    assert report.complete and report.resumed
    assert report.restored == 2 and report.executed == 2
    assert resumer.submissions == 2  # zero re-runs of committed cells
    # The resumed campaign is indistinguishable from the uninterrupted one.
    assert [r.stats for r in report.results] == [r.stats for r in baseline.results]


def test_resume_reruns_failed_cells(tmp_path):
    # A deterministic simulator fault fails cell 0 fast; the campaign is
    # partial (exit-code-2 territory), and resume re-executes exactly it.
    faulty = _ExecutorFactory(FaultPlan(sim_fault_slots=frozenset({0})))
    report = run_campaign(SPEC, str(tmp_path), run_id="partial", executor_factory=faulty)
    assert not report.complete
    assert report.counts() == {"ok": 3, "failed": 1}
    failed_id = SPEC.cell_ids()[0]
    assert "SimulationError" in report.failures[failed_id]
    assert report.failure_kinds[failed_id] == "deterministic"

    resumer = _ExecutorFactory()
    resumed = resume_campaign(str(tmp_path), "partial", jobs=1, executor_factory=resumer)
    assert resumed.complete
    assert resumed.restored == 3 and resumed.executed == 1


def test_resume_rejects_changed_grid(tmp_path):
    run_campaign(SPEC, str(tmp_path), run_id="grid", executor_factory=_ExecutorFactory())
    changed = CampaignSpec(
        workloads=("li", "go"), configs=("no_predict", "lvp"),
        max_instructions=MAX_INSTS * 2, jobs=2,
    )
    with pytest.raises(JournalError, match="fingerprint mismatch"):
        resume_campaign(str(tmp_path), "grid", spec=changed)


def test_resume_unknown_run_id(tmp_path):
    with pytest.raises(JournalError, match="no journal for run id"):
        resume_campaign(str(tmp_path), "ghost")


def test_sigterm_takes_the_interrupt_exit_ramp():
    before = signal.getsignal(signal.SIGTERM)
    with pytest.raises(KeyboardInterrupt, match=str(int(signal.SIGTERM))):
        with deliver_sigterm_as_interrupt():
            signal.raise_signal(signal.SIGTERM)
    # Whatever handler was installed before the context is back afterwards.
    assert signal.getsignal(signal.SIGTERM) is before


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_cli_campaign_run_and_resume(tmp_path, capsys):
    argv = [
        "run", "--workload", "li", "--config", "no_predict", "lvp",
        "--max-insts", str(MAX_INSTS), "--out-dir", str(tmp_path), "--run-id", "demo",
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "campaign demo (run): 2/2 cells ok" in out
    assert "speedups" in out  # no_predict present -> speedup table renders

    with open(journal_path(str(tmp_path), "demo")) as handle:
        header = json.loads(handle.readline())
    assert header["schema"] == "repro-journal/1"

    assert main(["run", "--resume", "demo", "--out-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "campaign demo (resumed): 2/2 cells ok, 2 restored" in out


def test_cli_resume_requires_out_dir(capsys):
    assert main(["run", "--resume", "demo"]) == 2
    assert "--resume requires --out-dir" in capsys.readouterr().err


def test_cli_campaign_requires_workload(tmp_path, capsys):
    assert main(["run", "--out-dir", str(tmp_path)]) == 2
    assert "--workload" in capsys.readouterr().err


def test_cli_resume_unknown_run_id_exits_two(tmp_path, capsys):
    assert main(["run", "--resume", "ghost", "--out-dir", str(tmp_path)]) == 2
    assert "no journal for run id" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Fused-batch digest sidecar (same-program cells share one batched run)
# ----------------------------------------------------------------------
def test_fresh_campaign_writes_batch_sidecar(tmp_path):
    from repro.runtime.campaign import batch_sidecar_path

    report = run_campaign(
        SPEC, str(tmp_path), run_id="fused", executor_factory=_ExecutorFactory()
    )
    assert sorted(report.batch_digests) == ["go", "li"]
    path = batch_sidecar_path(str(tmp_path), "fused")
    with open(path) as handle:
        stored = json.load(handle)
    assert stored == report.batch_digests
    for per_input in stored.values():
        for entry in per_input.values():
            assert entry["halted"] is True or entry["instructions"] > 0
            assert len(entry["digest"]) == 64  # sha256 hex


def test_resume_verifies_batch_sidecar_without_reruns(tmp_path):
    run_campaign(SPEC, str(tmp_path), run_id="fused", executor_factory=_ExecutorFactory())
    factory = _ExecutorFactory()
    report = resume_campaign(str(tmp_path), "fused", jobs=2, executor_factory=factory)
    assert report.complete and factory.submissions == 0
    assert sorted(report.batch_digests) == ["go", "li"]


def test_resume_backfills_missing_batch_sidecar(tmp_path):
    import os

    from repro.runtime.campaign import batch_sidecar_path

    run_campaign(SPEC, str(tmp_path), run_id="old", executor_factory=_ExecutorFactory())
    path = batch_sidecar_path(str(tmp_path), "old")
    os.remove(path)  # simulate a campaign that predates the sidecar
    report = resume_campaign(
        str(tmp_path), "old", jobs=2, executor_factory=_ExecutorFactory()
    )
    assert report.complete
    assert os.path.exists(path)


def test_resume_refuses_drifted_batch_digest(tmp_path):
    from repro.runtime.campaign import batch_sidecar_path

    run_campaign(SPEC, str(tmp_path), run_id="drift", executor_factory=_ExecutorFactory())
    path = batch_sidecar_path(str(tmp_path), "drift")
    with open(path) as handle:
        stored = json.load(handle)
    stored["li"]["ref"]["digest"] = "0" * 64
    with open(path, "w") as handle:
        json.dump(stored, handle)
    with pytest.raises(ValueError, match="batch digest mismatch.*li"):
        resume_campaign(str(tmp_path), "drift", jobs=2, executor_factory=_ExecutorFactory())


# ----------------------------------------------------------------------
# Service CLI surface (--workers / --store / serve)
# ----------------------------------------------------------------------
def test_cli_run_with_workers_uses_supervised_service(tmp_path, capsys):
    store_dir = tmp_path / "store"
    argv = [
        "run", "--workload", "li", "--config", "no_predict", "lvp",
        "--max-insts", str(MAX_INSTS), "--out-dir", str(tmp_path / "runs"),
        "--run-id", "svc", "--workers", "2", "--store", str(store_dir),
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "campaign svc (run): 2/2 cells ok" in out
    # Fresh results were published to the shared store...
    assert any(store_dir.rglob("*.json"))

    # ...and a second campaign over the same grid is served from it.
    argv2 = argv[:]
    argv2[argv2.index("svc")] = "svc2"
    assert main(argv2) == 0
    out = capsys.readouterr().out
    assert "campaign svc2 (run): 2/2 cells ok, 2 from store" in out


def test_cli_serve_once_drains_spool(tmp_path, capsys):
    spool = tmp_path / "spool"
    spool.mkdir()
    spec = CampaignSpec(
        workloads=("li",), configs=("no_predict", "lvp"), max_instructions=MAX_INSTS
    )
    (spool / "demo.json").write_text(json.dumps(spec.config_dict()))

    argv = [
        "serve", "--spool", str(spool), "--out-dir", str(tmp_path / "runs"),
        "--workers", "1", "--store", str(tmp_path / "store"), "--once",
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "serve: campaign demo: 2/2 ok" in out
    assert (spool / "done" / "demo.json").exists()
    report = json.loads((tmp_path / "runs" / "demo.report.json").read_text())
    assert report["complete"] is True
    assert report["counts"] == {"ok": 2}


def test_cli_serve_moves_bad_spec_to_failed(tmp_path, capsys):
    spool = tmp_path / "spool"
    spool.mkdir()
    (spool / "broken.json").write_text('{"workloads": ["li"]}')  # missing fields
    argv = ["serve", "--spool", str(spool), "--out-dir", str(tmp_path / "runs"), "--once"]
    assert main(argv) == 2
    assert (spool / "failed" / "broken.json").exists()
    assert (spool / "failed" / "broken.error").exists()
