"""ProgramBuilder tests."""

import pytest

from repro.isa import ProgramBuilder, R, RETURN_ADDRESS


def test_here_tracks_position():
    b = ProgramBuilder()
    assert b.here == 0
    b.li(R[1], 0)
    assert b.here == 1


def test_emit_returns_pc():
    b = ProgramBuilder()
    assert b.li(R[1], 0) == 0
    assert b.addi(R[1], R[1], 1) == 1


def test_duplicate_label_rejected():
    b = ProgramBuilder()
    b.label("x")
    with pytest.raises(ValueError, match="duplicate"):
        b.label("x")


def test_fresh_labels_unique():
    b = ProgramBuilder()
    names = {b.fresh_label("L") for _ in range(100)}
    assert len(names) == 100


def test_nested_procedures_rejected():
    b = ProgramBuilder()
    with pytest.raises(ValueError, match="nest"):
        with b.procedure("outer"):
            with b.procedure("inner"):
                pass  # pragma: no cover


def test_unclosed_procedure_rejected():
    b = ProgramBuilder()
    cm = b.procedure("open")
    cm.__enter__()
    with pytest.raises(ValueError, match="still open"):
        b.build()


def test_procedure_binds_entry_label():
    b = ProgramBuilder()
    with b.procedure("main"):
        b.halt()
    p = b.build()
    assert p.labels["main"] == 0
    assert p.procedure("main").start == 0 and p.procedure("main").end == 1


def test_alu_sugar_register_vs_immediate():
    b = ProgramBuilder()
    b.add(R[1], R[2], R[3])
    b.add(R[1], R[2], 5)
    b.halt()
    p = b.build()
    assert p[0].src2 == R[3] and p[0].imm is None
    assert p[1].imm == 5 and p[1].src2 is None


def test_jsr_default_link_register():
    b = ProgramBuilder()
    with b.procedure("main"):
        b.jsr("main")
        b.halt()
    p = b.build()
    assert p[0].dst == RETURN_ADDRESS


def test_store_operand_placement():
    b = ProgramBuilder()
    b.st(R[5], R[2], 16)
    b.halt()
    p = b.build()
    st = p[0]
    assert st.src1 == R[2] and st.src2 == R[5] and st.imm == 16
