"""TraceRecord field and helper tests."""

from repro.isa import R, assemble
from repro.sim import run_program


def records_of(text, memory=None):
    return run_program(assemble(text), memory=memory, max_instructions=1000, collect_trace=True).trace


def test_sequence_numbers_monotonic():
    trace = records_of("li r1, #1\nadd r1, r1, #1\nhalt")
    assert [r.seq for r in trace] == [0, 1, 2]


def test_op_name_and_dst():
    trace = records_of("li r1, #1\nst r1, 0(r31)\nhalt")
    assert trace[0].op_name == "li" and trace[0].dst == R[1]
    assert trace[1].op_name == "st" and trace[1].dst is None


def test_branch_taken_fields():
    trace = records_of("li r1, #0\nbeq r1, done\nli r2, #5\ndone: halt")
    branch = trace[1]
    assert branch.taken is True and branch.next_pc == 3
    assert trace[0].taken is None


def test_register_value_reused_flag():
    trace = records_of("li r1, #4\nli r1, #4\nli r1, #5\nhalt")
    assert not trace[0].register_value_reused  # 0 -> 4
    assert trace[1].register_value_reused
    assert not trace[2].register_value_reused


def test_src_values_captured():
    trace = records_of("li r1, #3\nli r2, #4\nadd r3, r1, r2\nhalt")
    assert trace[2].src_values == (3, 4)


def test_records_are_immutable():
    import dataclasses
    import pytest

    trace = records_of("halt")
    with pytest.raises(dataclasses.FrozenInstanceError):
        trace[0].pc = 99
