"""Section 7.3 reallocator tests: semantic preservation and reuse creation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import reallocate
from repro.isa import R, assemble
from repro.profiling import DeadHint, ProfileLists, ReuseProfile, critical_path_profile
from repro.sim import Memory, run_program
from repro.workloads import WORKLOAD_CLASSES, make_workload

from conftest import random_memory, random_program

ALL_NAMES = tuple(WORKLOAD_CLASSES)


def profile_workload(name, budget=40_000):
    workload = make_workload(name)
    result = run_program(*workload.build("train"), max_instructions=budget, collect_trace=True)
    profile = ReuseProfile.from_trace(result.trace)
    return workload, profile.profile_lists(0.8), critical_path_profile(result.trace)


def _non_stack_memory(result):
    """Final memory image excluding the stack region (callee-save slots hold
    different — dead — values once live ranges move registers)."""
    from repro.workloads import STACK_BASE

    lo, hi = STACK_BASE - (1 << 16), STACK_BASE
    return {addr: value for addr, value in result.memory.nonzero_words() if not lo <= addr <= hi}


@pytest.mark.parametrize("name", ALL_NAMES)
def test_realloc_preserves_semantics(name):
    workload, lists, crit = profile_workload(name)
    new_program, report = reallocate(workload.program, lists, crit)
    budget = 120_000
    before = run_program(workload.program, memory=workload.memory("ref"), max_instructions=budget)
    after = run_program(new_program, memory=workload.memory("ref"), max_instructions=budget)
    # Semantic equivalence: identical control flow and all observable memory
    # effects.  Final *register* state and dead callee-save stack slots
    # legitimately differ (values moved registers).
    assert before.instructions == after.instructions
    assert before.halted == after.halted
    assert _non_stack_memory(before) == _non_stack_memory(after)


@pytest.mark.parametrize("name", ("li", "mgrid", "su2cor", "hydro2d"))
def test_realloc_never_reduces_same_register_reuse(name):
    workload, lists, crit = profile_workload(name)
    new_program, report = reallocate(workload.program, lists, crit)
    budget = 60_000
    base = run_program(workload.program, memory=workload.memory("ref"), max_instructions=budget, collect_trace=True)
    opt = run_program(new_program, memory=workload.memory("ref"), max_instructions=budget, collect_trace=True)
    before = ReuseProfile.from_trace(base.trace).fig1.fractions()["same"]
    after = ReuseProfile.from_trace(opt.trace).fig1.fractions()["same"]
    assert after >= before - 0.02, (before, after)


def test_realloc_applies_some_and_abandons_some():
    applied = abandoned = 0
    for name in ALL_NAMES:
        workload, lists, crit = profile_workload(name, budget=25_000)
        _, report = reallocate(workload.program, lists, crit)
        applied += report.dead_applied + report.lvr_applied
        abandoned += report.dead_conflicting + report.dead_foreign + report.lvr_not_in_loop + report.lvr_shared
    assert applied > 0, "reallocator never applied a reuse"
    assert abandoned > 0, "reallocator never abandoned a reuse (paper: over half are thrown out)"


def test_dead_reuse_moves_destination_to_dead_register():
    # Hand-built Figure 2a case: the load's value always equals dead r1.
    memory = Memory()
    memory.store(0x100, 55)
    program = assemble(
        """
        li r4, #12
    loop:
        li r1, #55
        add r2, r1, #0
        ld r3, 0x100(r31)
        add r5, r3, r2
        add r3, r4, #0    ; clobber: kills same-register reuse of the load
        sub r4, r4, #1
        bne r4, loop
        halt
        """
    )
    result = run_program(program, memory=memory.copy(), max_instructions=2000, collect_trace=True)
    lists = ReuseProfile.from_trace(result.trace).profile_lists(0.8)
    load_pc = 3
    assert load_pc in lists.dead
    new_program, report = reallocate(program, lists)
    assert report.dead_applied == 1
    # The load's destination now matches the dead value's register.
    assert new_program[load_pc].dst == new_program[1].dst
    # Semantics preserved.
    after = run_program(new_program, memory=memory.copy(), max_instructions=2000)
    assert after.state.read(new_program[load_pc].dst) == 55


def test_lvr_gets_exclusive_register():
    # Figure 2c: the load's register is clobbered by a temp inside the loop.
    memory = Memory()
    memory.store(0x100, 7)
    program = assemble(
        """
        li r4, #12
    loop:
        ld r1, 0x100(r31)
        add r2, r1, #1
        add r1, r2, r2    ; clobbers the load's register
        st r1, 0x200(r31)
        sub r4, r4, #1
        bne r4, loop
        halt
        """
    )
    result = run_program(program, memory=memory.copy(), max_instructions=2000, collect_trace=True)
    lists = ReuseProfile.from_trace(result.trace).profile_lists(0.8)
    assert 1 in lists.last_value and 1 not in lists.same
    new_program, report = reallocate(program, lists)
    assert report.lvr_applied >= 1
    load_dst = new_program[1].dst
    clobber_dst = new_program[3].dst
    assert load_dst != clobber_dst
    # And the reuse is now visible to same-register RVP.
    after = run_program(new_program, memory=memory.copy(), max_instructions=2000, collect_trace=True)
    profile = ReuseProfile.from_trace(after.trace)
    assert profile.sites[1].same_rate() > 0.85
    assert after.memory == run_program(program, memory=memory.copy(), max_instructions=2000).memory


def test_foreign_producer_abandoned():
    lists = ProfileLists(threshold=0.8)
    program = assemble(
        """
    .proc main
    main:
        li r1, #5
        jsr r26, f
        halt
    .proc f
    f:
        ld r3, 0x100(r31)
        ret r26
        """
    )
    # Hint claims the producer lives in main (pc 0) but the load is in f.
    lists.dead[3] = DeadHint(reg=R[1], producer_pc=0)
    _, report = reallocate(program, lists)
    assert report.dead_applied == 0 and report.dead_foreign == 1


def test_lvr_outside_loop_abandoned():
    lists = ProfileLists(threshold=0.8)
    program = assemble("ld r1, 0x100(r31)\nhalt")
    lists.last_value.add(0)
    _, report = reallocate(program, lists)
    assert report.lvr_applied == 0 and report.lvr_not_in_loop == 1


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=5_000))
def test_realloc_preserves_semantics_on_random_programs(seed):
    """Property: reallocation with profile-derived lists never changes
    architectural behaviour of random programs."""
    program = random_program(seed)
    memory = random_memory(seed)
    result = run_program(program, memory=memory.copy(), max_instructions=50_000, collect_trace=True)
    lists = ReuseProfile.from_trace(result.trace).profile_lists(0.6, min_count=2)
    crit = critical_path_profile(result.trace)
    new_program, _ = reallocate(program, lists, crit)
    after = run_program(new_program, memory=memory.copy(), max_instructions=50_000)
    assert after.instructions == result.instructions
    assert after.memory == result.memory
    assert after.halted == result.halted
    # Every committed value is preserved instruction-for-instruction (the
    # registers may differ; the produced values may not).
    after_full = run_program(new_program, memory=memory.copy(), max_instructions=50_000, collect_trace=True)
    for a, b in zip(result.trace, after_full.trace):
        assert a.pc == b.pc and a.result == b.result and a.addr == b.addr
