"""Text assembler tests, including render/assemble round-trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import AssemblerError, F, R, assemble

from conftest import random_program

EXAMPLE = """
.proc main
main:
    li   r1, #0
    li   r2, #8192
loop:
    ld   r3, 0(r2)      ; load element
    add  r1, r1, r3
    add  r2, r2, #8
    sub  r4, r2, #8256
    bne  r4, loop
    st   r1, 0(r31)
    fld  f1, 8(r2)
    fadd f2, f1, f1
    jsr  r26, helper
    halt
.proc helper
helper:
    mov  r0, r1
    ret  r26
"""


def test_assemble_example():
    p = assemble(EXAMPLE, name="example")
    assert p.name == "example"
    assert [proc.name for proc in p.procedures] == ["main", "helper"]
    assert p.labels["loop"] == 2
    assert p[2].op.name == "ld" and p[2].dst == R[3]
    assert p[6].target_pc == 2
    fadd = p[9]
    assert fadd.dst == F[2] and fadd.src1 == F[1]


def test_comments_and_blank_lines_ignored():
    p = assemble("; leading comment\n\n  halt ; trailing\n")
    assert len(p) == 1 and p[0].is_halt


def test_label_on_same_line_as_instruction():
    p = assemble("start: halt")
    assert p.labels["start"] == 0


@pytest.mark.parametrize(
    "text,message",
    [
        ("frob r1, r2", "unknown opcode"),
        ("add r1, r2", "expects 3"),
        ("ld r1, r2", "offset"),
        ("beq r1, #5", "label target"),
        ("li r1, r2", "immediate"),
        ("add r1, #3, r2", "must be a register"),
        ("x: x: halt", "duplicate label"),
        ("br undefined_place", "undefined label"),
        (".proc", "exactly one name"),
    ],
)
def test_syntax_errors(text, message):
    with pytest.raises((AssemblerError, ValueError), match=message):
        assemble(text)


def test_error_carries_line_number():
    try:
        assemble("halt\nfrob r1\n")
    except AssemblerError as exc:
        assert exc.lineno == 2
    else:  # pragma: no cover
        pytest.fail("expected AssemblerError")


def test_negative_offsets_and_hex_immediates():
    p = assemble("ld r1, -16(r2)\nli r3, #0x40\nhalt")
    assert p[0].imm == -16
    assert p[1].imm == 0x40


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_render_assemble_roundtrip(seed):
    """assemble(render(p)) reproduces every instruction of random programs."""
    p = random_program(seed)
    q = assemble(p.render(), name=p.name)
    assert len(q) == len(p)
    for a, b in zip(p, q):
        assert a.render() == b.render()
        assert a.op.name == b.op.name and a.target_pc == b.target_pc
    assert [pr.name for pr in q.procedures] == [pr.name for pr in p.procedures]
