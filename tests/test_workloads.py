"""Workload suite tests: every model runs, halts, is deterministic, and has
the structural properties the experiments rely on."""

import pytest

from repro.profiling import ReuseProfile
from repro.sim import run_program
from repro.workloads import C_SPEC, F_SPEC, IR_AUTHORED, WORKLOAD_CLASSES, all_workloads, make_workload

ALL_NAMES = tuple(WORKLOAD_CLASSES)
BUDGET = 120_000


@pytest.fixture(scope="module")
def runs():
    results = {}
    for workload in all_workloads():
        program, memory = workload.build("ref")
        results[workload.name] = run_program(program, memory=memory, max_instructions=BUDGET, collect_trace=True)
    return results


def test_registry_matches_paper_suite():
    assert set(ALL_NAMES) == set(C_SPEC) | set(F_SPEC) | set(IR_AUTHORED)
    assert len(C_SPEC) + len(F_SPEC) == 9  # the paper's figure suite
    assert len(ALL_NAMES) == 9 + len(IR_AUTHORED)
    for name in C_SPEC:
        assert make_workload(name).category == "C"
    for name in F_SPEC:
        assert make_workload(name).category == "F"


def test_ir_authored_workloads_come_from_the_mid_end():
    """The IR workloads must lower through repro.ir and still round-trip."""
    from repro.ir import roundtrip

    for name in IR_AUTHORED:
        workload = make_workload(name)
        lowering, report = roundtrip(workload.program, lambda: workload.memory("ref"))
        report.raise_if_failed()


def test_unknown_workload_rejected():
    with pytest.raises(KeyError, match="unknown workload"):
        make_workload("gcc")


@pytest.mark.parametrize("name", ALL_NAMES)
def test_runs_to_halt(runs, name):
    result = runs[name]
    assert result.halted, f"{name} did not halt within {BUDGET} instructions"
    assert 5_000 <= result.instructions <= BUDGET


@pytest.mark.parametrize("name", ALL_NAMES)
def test_deterministic_per_input(name):
    workload = make_workload(name)
    r1 = run_program(*workload.build("ref"), max_instructions=30_000)
    r2 = run_program(*workload.build("ref"), max_instructions=30_000)
    assert r1.instructions == r2.instructions
    assert r1.state.state_equal(r2.state)
    assert r1.memory == r2.memory


@pytest.mark.parametrize("name", ALL_NAMES)
def test_train_and_ref_inputs_differ(name):
    workload = make_workload(name)
    assert workload.seed("train") != workload.seed("ref")
    assert workload.memory("train") != workload.memory("ref")


def test_invalid_input_name_rejected():
    with pytest.raises(ValueError, match="unknown input"):
        make_workload("li").memory("test")


def test_scale_changes_work_amount():
    small = run_program(*make_workload("go", scale=0.5).build("ref"), max_instructions=BUDGET)
    large = run_program(*make_workload("go", scale=1.0).build("ref"), max_instructions=BUDGET)
    assert small.instructions < large.instructions


def test_scale_must_be_positive():
    with pytest.raises(ValueError):
        make_workload("go", scale=0)


def test_program_is_input_independent():
    workload = make_workload("perl")
    assert workload.program is workload.program  # cached
    # Same binary regardless of input: only memory differs.
    text = workload.program.render()
    assert text == make_workload("perl").program.render()


@pytest.mark.parametrize("name", ALL_NAMES)
def test_mix_has_loads_stores_branches(runs, name):
    trace = runs[name].trace
    loads = sum(1 for r in trace if r.is_load)
    stores = sum(1 for r in trace if r.inst.is_store)
    branches = sum(1 for r in trace if r.inst.is_conditional)
    n = len(trace)
    assert loads / n > 0.05, f"{name}: load fraction {loads / n:.1%}"
    assert stores > 0 and branches / n > 0.02


def test_reuse_profile_orderings(runs):
    """The calibrated locality ordering the experiments rely on."""
    fractions = {}
    for name, result in runs.items():
        fractions[name] = ReuseProfile.from_trace(result.trace).fig1.fractions()
    # go is among the least same-register-reusing; the interpreters and the
    # stencil codes carry substantial reuse.
    assert fractions["m88ksim"]["same"] > 0.3
    assert fractions["turb3d"]["same"] > 0.3
    for name, f in fractions.items():
        assert f["same"] <= f["dead"] + 1e-9 <= f["any"] + 2e-9 <= f["any_or_lvp"] + 3e-9, name


def test_li_recursion_uses_stack():
    workload = make_workload("li")
    result = run_program(*workload.build("ref"), max_instructions=BUDGET, collect_trace=True)
    calls = sum(1 for r in result.trace if r.op_name == "jsr")
    rets = sum(1 for r in result.trace if r.op_name == "ret")
    assert calls == rets and calls > 10


def test_categories_and_descriptions():
    for workload in all_workloads():
        assert workload.description
        assert workload.category in ("C", "F")
