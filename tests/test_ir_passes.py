"""Flat-vs-SSA pass parity: the wrappers in repro.ir.pipeline are drop-in
twins of the flat passes — same outputs for marking/insertion, equal-or-
better constraint application for reallocation/stride — on real workloads."""

import pytest

from repro.compiler.insertion import insert_after
from repro.compiler.marking import MARKING_LEVELS, mark_static_rvp
from repro.compiler.realloc import reallocate
from repro.compiler.stride_pass import apply_stride_pass
from repro.ir import (
    apply_stride_pass_ssa,
    insert_after_ssa,
    mark_static_rvp_ssa,
    reallocate_ssa,
)
from repro.isa.instructions import Instruction
from repro.isa.opcodes import opcode
from repro.profiling import ReuseProfile
from repro.profiling.stride import StrideProfile
from repro.sim import run_program
from repro.workloads import make_workload

MAX_INSTS = 20_000
PARITY_WORKLOADS = ("li", "mgrid")


@pytest.fixture(scope="module", params=PARITY_WORKLOADS)
def artifacts(request):
    workload = make_workload(request.param)
    program, memory = workload.build("train")
    result = run_program(program, memory=memory, max_instructions=MAX_INSTS, collect_trace=True)
    profile = ReuseProfile.from_trace(result.trace)
    strides = StrideProfile.from_trace(result.trace).strided_pcs()
    return workload.name, program, profile, strides, result


def identical(a, b):
    return len(a) == len(b) and all(x.render() == y.render() for x, y in zip(a, b))


def test_marking_parity(artifacts):
    name, program, profile, _, _ = artifacts
    lists = profile.profile_lists(loads_only=True)
    for level in MARKING_LEVELS:
        flat = mark_static_rvp(program, lists, level)
        ssa = mark_static_rvp_ssa(program, lists, level)
        assert identical(flat, ssa), f"{name}: marking[{level}] diverged"


def test_insertion_parity(artifacts):
    name, program, _, _, _ = artifacts
    sites = [
        inst.pc
        for inst in program
        if inst.writes is not None and inst.writes.is_int and not inst.writes.is_zero
    ][:4]
    moves = {
        pc: [Instruction(op=opcode("mov"), dst=program[pc].writes, src1=program[pc].writes)]
        for pc in sites
    }
    flat_prog, flat_map = insert_after(program, moves)
    ssa_prog, ssa_map = insert_after_ssa(program, moves)
    assert identical(flat_prog, ssa_prog), f"{name}: insertion diverged"
    assert flat_map == ssa_map


def test_stride_parity(artifacts):
    name, program, profile, strides, _ = artifacts
    lists = profile.profile_lists(loads_only=True)
    flat_prog, _, flat_report = apply_stride_pass(program, strides, lists)
    ssa_prog, _, ssa_report = apply_stride_pass_ssa(program, strides, lists)
    assert ssa_report.applied == flat_report.applied, f"{name}: stride applied diverged"
    assert len(ssa_prog) == len(flat_prog)


def test_realloc_parity(artifacts):
    name, program, profile, _, base = artifacts
    lists = profile.profile_lists(loads_only=False)
    flat_prog, flat_report = reallocate(program, lists)
    ssa_prog, ssa_report = reallocate_ssa(program, lists)
    # Same shape (no pc shifts) on both paths.
    assert len(flat_prog) == len(program) and len(ssa_prog) == len(program)
    # The SSA path applies at least as many constraints as the flat one.
    assert ssa_report.dead_applied >= flat_report.dead_applied, name
    assert ssa_report.lvr_applied >= flat_report.lvr_applied, name


def _non_stack_words(memory):
    """Written words outside the stack save region.

    Callee-save spill slots legitimately hold different (dead) garbage
    after reallocation renames a caller's web away from the saved
    register, so stack-region contents are excluded from the comparison —
    the flat pass shows the same benign divergence.
    """
    from repro.workloads import STACK_BASE

    lo, hi = STACK_BASE - 0x20_0000, STACK_BASE
    return {k: v for k, v in memory._words.items() if v and not lo <= k * 8 < hi}


def test_realloc_ssa_preserves_behaviour(artifacts):
    name, program, profile, _, base = artifacts
    workload = make_workload(name)
    lists = profile.profile_lists(loads_only=False)
    ssa_prog, _ = reallocate_ssa(program, lists)
    rerun = run_program(
        ssa_prog, memory=workload.memory("train"), max_instructions=MAX_INSTS, collect_trace=False
    )
    assert rerun.instructions == base.instructions
    assert _non_stack_words(rerun.memory) == _non_stack_words(base.memory)
