"""Abstract interpretation over the SSA IR: intervals, induction, aliasing."""

from __future__ import annotations

import pytest

from repro.analysis.absint import (
    AffineExpr,
    Alias,
    Interval,
    ProgramAbsint,
)
from repro.ir.nodes import IRError
from repro.isa import assemble
from repro.isa.opcodes import MASK64


def analyze(text: str) -> ProgramAbsint:
    return ProgramAbsint(assemble(text, name="t"))


# ----------------------------------------------------------------------
# Interval lattice basics
# ----------------------------------------------------------------------
def test_interval_lattice_laws():
    a = Interval(-3, 7)
    b = Interval(5, 20)
    assert a.join(b) == Interval(-3, 20)
    assert a.meet(b) == Interval(5, 7)
    assert Interval.const(4).is_const
    assert Interval.top().contains(2**63 - 1) and Interval.top().contains(-(2**63))
    widened = a.widen(Interval(-3, 100))
    assert widened.lo == -3 and widened.hi == Interval.top().hi


def test_affine_expr_arithmetic_mod_2_64():
    x = AffineExpr.atom(1)
    e = x.scale(3).shift(10)
    assert e.sub(x.scale(3)).offset == 10
    assert x.sub(x).is_const
    wrapped = AffineExpr.const(MASK64).shift(1)
    assert wrapped.offset == 0  # canonical mod 2**64


# ----------------------------------------------------------------------
# Constant propagation and branch pruning
# ----------------------------------------------------------------------
def test_constants_propagate_through_straightline_code():
    absint = analyze(
        """
        .proc main
            li r1, #6
            li r2, #7
            mul r3, r1, r2
            halt
        """
    )
    assert absint.interval_at(2) == Interval.const(42)


def test_proven_branch_prunes_unreachable_block():
    absint = analyze(
        """
        .proc main
            li r1, #0
            beq r1, skip        ; always taken: r1 proven 0
            li r2, #99          ; dead
        skip:
            halt
        """
    )
    assert absint.branch_decision(1) is True
    assert absint.unreachable_pcs() == {2}


def test_infeasible_branch_both_ways_not_decided():
    absint = analyze(
        """
        .proc main
            ld r1, 0(r0)
            beq r1, skip
            li r2, #1
        skip:
            halt
        """
    )
    assert absint.branch_decision(1) is None
    assert absint.unreachable_pcs() == set()


# ----------------------------------------------------------------------
# Induction variables and trip counts
# ----------------------------------------------------------------------
COUNTED = """
.proc main
    li r1, #16
    li r2, #1000
loop:
    ld r3, 0(r2)
    add r2, r2, #8
    sub r1, r1, #1
    bne r1, loop
    halt
"""


def test_counted_loop_proves_stride_and_trip():
    absint = analyze(COUNTED)
    facts = absint.induction_facts()
    strides = sorted(fact.stride for _, fact in facts)
    assert strides == [-1, 8]
    # The trip is proven on the IV the exit branch tests (the counter);
    # siblings of the same header share it via the per-header lookup.
    trips = [fact.trip for _, fact in facts if fact.trip is not None]
    assert trips == [16]


def test_trip_proof_refines_counter_interval():
    absint = analyze(COUNTED)
    # The decremented counter (pc 4: sub r1, r1, 1) takes values 15..0.
    interval = absint.interval_at(4)
    assert interval is not None
    assert interval.lo >= 0 and interval.hi <= 15


def test_loop_depth_and_flat_header():
    absint = analyze(COUNTED)
    assert absint.loop_depth_at(2) == 1  # ld inside the loop
    assert absint.loop_depth_at(0) == 0


# ----------------------------------------------------------------------
# Alias domain
# ----------------------------------------------------------------------
def test_same_base_different_offsets_no_alias():
    absint = analyze(
        """
        .proc main
            li r2, #1000
        loop:
            ld r3, 0(r2)
            st r3, 8(r2)
            sub r3, r3, #1
            bne r3, loop
            halt
        """
    )
    entry = absint.lookup(1)
    analysis = entry[0]
    load_expr = absint.addr_expr_at(1)
    store_expr = absint.addr_expr_at(2)
    assert analysis.alias(load_expr, store_expr) is Alias.NO
    assert analysis.alias(load_expr, load_expr) is Alias.MUST


def test_lockstep_induction_congruence_disproves_alias():
    # Store walks 1068+8n, load sits at 1064: 1064-1068 = -4 is not a
    # multiple of 8, so the orbit never hits the load's cell.
    absint = analyze(
        """
        .proc main
            li r1, #8
            li r2, #1064
            li r4, #1068
        loop:
            ld r3, 0(r2)
            st r1, 0(r4)
            add r4, r4, #8
            sub r1, r1, #1
            bne r1, loop
            halt
        """
    )
    analysis = absint.lookup(3)[0]
    assert analysis.alias(absint.addr_expr_at(3), absint.addr_expr_at(4)) is Alias.NO


def test_lockstep_congruence_hit_is_not_disproved():
    # Store walks 1064+8n and starts ON the load's cell: alias cannot be NO.
    absint = analyze(
        """
        .proc main
            li r1, #8
            li r2, #1064
            li r4, #1064
        loop:
            ld r3, 0(r2)
            st r1, 0(r4)
            add r4, r4, #8
            sub r1, r1, #1
            bne r1, loop
            halt
        """
    )
    analysis = absint.lookup(3)[0]
    assert analysis.alias(absint.addr_expr_at(3), absint.addr_expr_at(4)) is not Alias.NO


def test_distinct_object_roots_no_alias():
    # Two pointers seeded from different constants walk different objects
    # under the allocation-site model, even with unknown trip counts.
    absint = analyze(
        """
        .proc main
            ld r1, 0(r0)
            li r2, #1000
            li r4, #5000
        loop:
            ld r3, 0(r2)
            st r3, 0(r4)
            add r4, r4, #8
            sub r1, r1, #1
            bne r1, loop
            halt
        """
    )
    analysis = absint.lookup(3)[0]
    load_expr = absint.addr_expr_at(3)
    store_expr = absint.addr_expr_at(4)
    roots_load = analysis.object_roots(load_expr)
    roots_store = analysis.object_roots(store_expr)
    assert roots_load and roots_store and not (roots_load & roots_store)
    assert analysis.alias(load_expr, store_expr) is Alias.NO


# ----------------------------------------------------------------------
# Whole-program plumbing
# ----------------------------------------------------------------------
def test_workloads_all_analyze():
    from repro.workloads import all_workloads

    for workload in all_workloads():
        absint = ProgramAbsint(workload.program)
        assert absint.functions  # raised and analyzed without error
        # every executed-later query answers without crashing
        absint.induction_facts()
        absint.unreachable_pcs()


def test_unreachable_block_raises_ir_error():
    program = assemble(
        """
        .proc main
            br out
            li r1, #1       ; CFG-unreachable
        out:
            halt
        """,
        name="dead",
    )
    with pytest.raises(IRError):
        ProgramAbsint(program)


def test_live_values_sees_through_arithmetic():
    absint = analyze(
        """
        .proc main
            li r2, #1000
            ld r1, 0(r2)    ; used via the add below
            ld r3, 8(r2)    ; dead: result feeds nothing
            add r4, r1, #1
            st r4, 16(r2)
            halt
        """
    )
    (analysis,) = absint.functions.values()
    live = absint.live_values(analysis)
    used_load = absint.lookup(1)[1]
    dead_load = absint.lookup(2)[1]
    assert used_load.defined.vid in live
    assert dead_load.defined.vid not in live
