"""Verifier rules: each adversarial program triggers exactly its rule."""

import pytest

from repro.analysis.diagnostics import Severity, VerificationError
from repro.analysis.verifier import (
    VERIFY_ENV,
    AllocationCheck,
    LintConfig,
    check_program,
    rule_catalog,
    verification_enabled,
    verify_program,
)
from repro.compiler.webs import Web
from repro.isa import F, R, assemble
from repro.isa.builder import ProgramBuilder


def rules_fired(diagnostics, severity=None):
    return {
        d.rule
        for d in diagnostics
        if severity is None or d.severity is severity
    }


def test_clean_program_has_no_findings():
    program = assemble(
        """
        li r1, #1
        add r2, r1, #2
        st r2, 0(r30)
        halt
        """
    )
    assert verify_program(program) == []


# ----------------------------------------------------------------------
# RVP001 — operand arity
# ----------------------------------------------------------------------
def test_rvp001_load_missing_base():
    b = ProgramBuilder("bad-arity")
    with b.procedure("main"):
        b.emit("ld", dst=R[1])  # no base register
        b.halt()
    diags = verify_program(b.build())
    assert rules_fired(diags, Severity.ERROR) == {"RVP001"}


def test_rvp001_alu_with_register_and_immediate():
    b = ProgramBuilder("bad-arity2")
    with b.procedure("main"):
        b.li(R[1], 1)
        b.li(R[2], 2)
        b.emit("add", dst=R[3], src1=R[1], src2=R[2], imm=4)
        b.halt()
    diags = verify_program(b.build())
    assert rules_fired(diags, Severity.ERROR) == {"RVP001"}


# ----------------------------------------------------------------------
# RVP002 — register classes
# ----------------------------------------------------------------------
def test_rvp002_int_operand_in_fp_slot():
    b = ProgramBuilder("bad-class")
    with b.procedure("main"):
        b.li(R[1], 1)
        b.fli(F[2], 1)
        b.emit("fadd", dst=F[3], src1=F[2], src2=R[1])  # int src in fp add
        b.halt()
    diags = verify_program(b.build())
    assert rules_fired(diags, Severity.ERROR) == {"RVP002"}


def test_rvp002_wrong_destination_file():
    b = ProgramBuilder("bad-class2")
    with b.procedure("main"):
        b.fli(F[1], 1)
        b.fli(F[2], 2)
        b.emit("fadd", dst=R[3], src1=F[1], src2=F[2])  # int dst for fp op
        b.halt()
    diags = verify_program(b.build())
    assert rules_fired(diags, Severity.ERROR) == {"RVP002"}


# ----------------------------------------------------------------------
# RVP003 — use-before-def
# ----------------------------------------------------------------------
def test_rvp003_entry_garbage_read_is_error():
    program = assemble(
        """
        add r2, r1, #1
        halt
        """
    )
    diags = verify_program(program)
    assert rules_fired(diags, Severity.ERROR) == {"RVP003"}
    (diag,) = [d for d in diags if d.is_error]
    assert diag.pc == 0 and "r1" in diag.message


def test_rvp003_partial_path_is_warning():
    program = assemble(
        """
        li r4, #0
        beq r4, skip
        li r1, #1
    skip:
        add r2, r1, #1
        halt
        """
    )
    diags = verify_program(program)
    assert not any(d.is_error for d in diags)
    assert rules_fired(diags, Severity.WARNING) == {"RVP003"}


def test_rvp003_arg_and_callee_saved_regs_are_fine():
    program = assemble(
        """
        add r2, r16, r9
        halt
        """
    )
    assert verify_program(program) == []


# ----------------------------------------------------------------------
# RVP004 — unreachable blocks
# ----------------------------------------------------------------------
def test_rvp004_dead_block_warns():
    program = assemble(
        """
        br end
        li r1, #1
    end:
        halt
        """
    )
    diags = verify_program(program)
    assert rules_fired(diags) == {"RVP004"}
    assert not any(d.is_error for d in diags)


# ----------------------------------------------------------------------
# RVP005 — calling convention
# ----------------------------------------------------------------------
def test_rvp005_call_into_procedure_body():
    program = assemble(
        """
    .proc main
    main:
        jsr r26, inside
        halt
    .proc other
    other:
        li r1, #1
    inside:
        ret r26
        """
    )
    diags = verify_program(program)
    assert "RVP005" in rules_fired(diags, Severity.ERROR)


def test_rvp005_branch_across_procedures():
    program = assemble(
        """
    .proc main
    main:
        li r1, #0
        beq r1, other
        halt
    .proc other
    other:
        ret r26
        """
    )
    diags = verify_program(program)
    assert "RVP005" in rules_fired(diags, Severity.ERROR)


# ----------------------------------------------------------------------
# RVP006 — rvp marking legality
# ----------------------------------------------------------------------
def test_rvp006_marked_load_into_zero_register():
    b = ProgramBuilder("bad-mark")
    with b.procedure("main"):
        b.li(R[9], 64)
        b.emit("rvp_ld", dst=R[31], src1=R[9], imm=0)
        b.halt()
    diags = verify_program(b.build())
    assert rules_fired(diags, Severity.ERROR) == {"RVP006"}


# ----------------------------------------------------------------------
# RVP007 — allocation validity (context rule)
# ----------------------------------------------------------------------
def _two_web_program():
    return assemble(
        """
        li r1, #1
        li r2, #2
        add r3, r1, r2
        st r3, 0(r30)
        halt
        """
    )


def test_rvp007_interfering_webs_on_one_register():
    program = _two_web_program()
    webs = [
        Web(index=0, reg=R[1], def_pcs={0}, live_pcs={0, 1, 2}),
        Web(index=1, reg=R[2], def_pcs={1}, live_pcs={1, 2}),
    ]
    check = AllocationCheck(
        proc_name="main",
        webs=webs,
        adjacency={0: {1}, 1: {0}},
        assignment={0: R[1], 1: R[1]},  # web 1 illegally moved onto r1
    )
    diags = verify_program(program, allocations=[check])
    assert rules_fired(diags, Severity.ERROR) == {"RVP007"}


def test_rvp007_moving_a_fixed_web_is_an_error():
    program = _two_web_program()
    webs = [Web(index=0, reg=R[1], def_pcs={0}, live_pcs={0, 1}, fixed=True)]
    check = AllocationCheck(
        proc_name="main", webs=webs, adjacency={}, assignment={0: R[4]}
    )
    diags = verify_program(program, allocations=[check])
    assert rules_fired(diags, Severity.ERROR) == {"RVP007"}


def test_rvp007_untouched_assignment_is_accepted():
    program = _two_web_program()
    webs = [
        Web(index=0, reg=R[1], def_pcs={0}, live_pcs={0, 1, 2}),
        Web(index=1, reg=R[1], def_pcs={2}, live_pcs={2}),
    ]
    # Conservative per-register interference can report same-register
    # sibling webs as adjacent; an unchanged assignment is still legal.
    check = AllocationCheck(
        proc_name="main",
        webs=webs,
        adjacency={0: {1}, 1: {0}},
        assignment={0: R[1], 1: R[1]},
    )
    assert verify_program(program, allocations=[check]) == []


# ----------------------------------------------------------------------
# RVP008 — loop-exclusive (LVR) registers
# ----------------------------------------------------------------------
def test_rvp008_loop_exclusive_register_shared():
    program = assemble(
        """
        li r1, #0
        li r9, #4
    loop:
        add r1, r1, #1
        add r1, r1, #2
        sub r9, r9, #1
        bne r9, loop
        halt
        """
    )
    diags = verify_program(program, lvr_pcs={2})
    assert rules_fired(diags, Severity.ERROR) == {"RVP008"}
    assert any("pc 3" in d.message for d in diags if d.is_error)


def test_rvp008_call_clobber_counts_as_sharing():
    program = assemble(
        """
    .proc main
    main:
        li r1, #0
        li r9, #4
    loop:
        add r1, r1, #1
        jsr r26, callee
        sub r9, r9, #1
        bne r9, loop
        halt
    .proc callee
    callee:
        ret r26
        """
    )
    # r1 is volatile: the call inside the loop implicitly clobbers it.
    diags = verify_program(program, lvr_pcs={2})
    assert "RVP008" in rules_fired(diags, Severity.ERROR)


def test_rvp008_outside_any_loop():
    program = assemble(
        """
        li r1, #0
        halt
        """
    )
    diags = verify_program(program, lvr_pcs={0})
    assert rules_fired(diags, Severity.ERROR) == {"RVP008"}


def test_rvp008_exclusive_register_passes():
    program = assemble(
        """
        li r1, #0
        li r9, #4
    loop:
        add r1, r1, #1
        sub r9, r9, #1
        bne r9, loop
        halt
        """
    )
    assert verify_program(program, lvr_pcs={2}) == []


# ----------------------------------------------------------------------
# Config, driver, environment
# ----------------------------------------------------------------------
def test_disabled_rules_are_skipped():
    program = assemble(
        """
        add r2, r1, #1
        halt
        """
    )
    config = LintConfig.parse(disabled=["rvp003"])
    assert verify_program(program, config=config) == []


def test_strict_mode_promotes_warnings():
    program = assemble(
        """
        br end
        li r1, #1
    end:
        halt
        """
    )
    diags = verify_program(program, config=LintConfig.parse(strict=True))
    assert diags and all(d.severity is Severity.ERROR for d in diags)


def test_check_program_raises_with_diagnostics():
    program = assemble(
        """
        add r2, r1, #1
        halt
        """
    )
    with pytest.raises(VerificationError) as excinfo:
        check_program(program, source="unit test")
    assert excinfo.value.source == "unit test"
    assert any(d.rule == "RVP003" for d in excinfo.value.diagnostics)


def test_check_program_baseline_suppresses_preexisting_errors():
    program = assemble(
        """
        add r2, r1, #1
        halt
        """
    )
    # The same (rule, pc) error exists in the baseline -> not introduced.
    diags = check_program(program, source="delta", baseline=program)
    assert any(d.rule == "RVP003" for d in diags)


def test_verification_enabled_env_gate(monkeypatch):
    monkeypatch.delenv(VERIFY_ENV, raising=False)
    assert verification_enabled() and verification_enabled(True)
    assert not verification_enabled(False)
    monkeypatch.setenv(VERIFY_ENV, "0")
    assert not verification_enabled()
    assert verification_enabled(True)  # explicit argument wins


def test_rule_catalog_is_complete():
    ids = [info.rule_id for info in rule_catalog()]
    assert ids == [f"RVP{n:03d}" for n in range(1, 10)]
