"""Verifier rules: each adversarial program triggers exactly its rule."""

import pytest

from repro.analysis.diagnostics import Severity, VerificationError
from repro.analysis.verifier import (
    VERIFY_ENV,
    AllocationCheck,
    LintConfig,
    check_program,
    rule_catalog,
    verification_enabled,
    verify_program,
)
from repro.compiler.webs import Web
from repro.isa import F, R, assemble
from repro.isa.builder import ProgramBuilder
from repro.profiling.lists import DeadHint, ProfileLists


def rules_fired(diagnostics, severity=None):
    return {
        d.rule
        for d in diagnostics
        if severity is None or d.severity is severity
    }


def test_clean_program_has_no_findings():
    program = assemble(
        """
        li r1, #1
        add r2, r1, #2
        st r2, 0(r30)
        halt
        """
    )
    assert verify_program(program) == []


# ----------------------------------------------------------------------
# RVP001 — operand arity
# ----------------------------------------------------------------------
def test_rvp001_load_missing_base():
    b = ProgramBuilder("bad-arity")
    with b.procedure("main"):
        b.emit("ld", dst=R[1])  # no base register
        b.halt()
    diags = verify_program(b.build())
    assert rules_fired(diags, Severity.ERROR) == {"RVP001"}


def test_rvp001_alu_with_register_and_immediate():
    b = ProgramBuilder("bad-arity2")
    with b.procedure("main"):
        b.li(R[1], 1)
        b.li(R[2], 2)
        b.emit("add", dst=R[3], src1=R[1], src2=R[2], imm=4)
        b.halt()
    diags = verify_program(b.build())
    assert rules_fired(diags, Severity.ERROR) == {"RVP001"}


# ----------------------------------------------------------------------
# RVP002 — register classes
# ----------------------------------------------------------------------
def test_rvp002_int_operand_in_fp_slot():
    b = ProgramBuilder("bad-class")
    with b.procedure("main"):
        b.li(R[1], 1)
        b.fli(F[2], 1)
        b.emit("fadd", dst=F[3], src1=F[2], src2=R[1])  # int src in fp add
        b.halt()
    diags = verify_program(b.build())
    assert rules_fired(diags, Severity.ERROR) == {"RVP002"}


def test_rvp002_wrong_destination_file():
    b = ProgramBuilder("bad-class2")
    with b.procedure("main"):
        b.fli(F[1], 1)
        b.fli(F[2], 2)
        b.emit("fadd", dst=R[3], src1=F[1], src2=F[2])  # int dst for fp op
        b.halt()
    diags = verify_program(b.build())
    assert rules_fired(diags, Severity.ERROR) == {"RVP002"}


# ----------------------------------------------------------------------
# RVP003 — use-before-def
# ----------------------------------------------------------------------
def test_rvp003_entry_garbage_read_is_error():
    program = assemble(
        """
        add r2, r1, #1
        halt
        """
    )
    diags = verify_program(program)
    assert rules_fired(diags, Severity.ERROR) == {"RVP003"}
    (diag,) = [d for d in diags if d.is_error]
    assert diag.pc == 0 and "r1" in diag.message


def test_rvp003_partial_path_is_warning():
    program = assemble(
        """
        li r4, #0
        beq r4, skip
        li r1, #1
    skip:
        add r2, r1, #1
        halt
        """
    )
    # Heavy rules disabled: RVP012 would also flag the pruned branch arm.
    diags = verify_program(program, config=LintConfig.parse(include_heavy=False))
    assert not any(d.is_error for d in diags)
    assert rules_fired(diags, Severity.WARNING) == {"RVP003"}


def test_rvp003_arg_and_callee_saved_regs_are_fine():
    program = assemble(
        """
        add r2, r16, r9
        halt
        """
    )
    assert verify_program(program) == []


# ----------------------------------------------------------------------
# RVP004 — unreachable blocks
# ----------------------------------------------------------------------
def test_rvp004_dead_block_warns():
    program = assemble(
        """
        br end
        li r1, #1
    end:
        halt
        """
    )
    diags = verify_program(program)
    assert rules_fired(diags) == {"RVP004"}
    assert not any(d.is_error for d in diags)


# ----------------------------------------------------------------------
# RVP005 — calling convention
# ----------------------------------------------------------------------
def test_rvp005_call_into_procedure_body():
    program = assemble(
        """
    .proc main
    main:
        jsr r26, inside
        halt
    .proc other
    other:
        li r1, #1
    inside:
        ret r26
        """
    )
    diags = verify_program(program)
    assert "RVP005" in rules_fired(diags, Severity.ERROR)


def test_rvp005_branch_across_procedures():
    program = assemble(
        """
    .proc main
    main:
        li r1, #0
        beq r1, other
        halt
    .proc other
    other:
        ret r26
        """
    )
    diags = verify_program(program)
    assert "RVP005" in rules_fired(diags, Severity.ERROR)


# ----------------------------------------------------------------------
# RVP006 — rvp marking legality
# ----------------------------------------------------------------------
def test_rvp006_marked_load_into_zero_register():
    b = ProgramBuilder("bad-mark")
    with b.procedure("main"):
        b.li(R[9], 64)
        b.emit("rvp_ld", dst=R[31], src1=R[9], imm=0)
        b.halt()
    diags = verify_program(b.build())
    assert rules_fired(diags, Severity.ERROR) == {"RVP006"}


# ----------------------------------------------------------------------
# RVP007 — allocation validity (context rule)
# ----------------------------------------------------------------------
def _two_web_program():
    return assemble(
        """
        li r1, #1
        li r2, #2
        add r3, r1, r2
        st r3, 0(r30)
        halt
        """
    )


def test_rvp007_interfering_webs_on_one_register():
    program = _two_web_program()
    webs = [
        Web(index=0, reg=R[1], def_pcs={0}, live_pcs={0, 1, 2}),
        Web(index=1, reg=R[2], def_pcs={1}, live_pcs={1, 2}),
    ]
    check = AllocationCheck(
        proc_name="main",
        webs=webs,
        adjacency={0: {1}, 1: {0}},
        assignment={0: R[1], 1: R[1]},  # web 1 illegally moved onto r1
    )
    diags = verify_program(program, allocations=[check])
    assert rules_fired(diags, Severity.ERROR) == {"RVP007"}


def test_rvp007_moving_a_fixed_web_is_an_error():
    program = _two_web_program()
    webs = [Web(index=0, reg=R[1], def_pcs={0}, live_pcs={0, 1}, fixed=True)]
    check = AllocationCheck(
        proc_name="main", webs=webs, adjacency={}, assignment={0: R[4]}
    )
    diags = verify_program(program, allocations=[check])
    assert rules_fired(diags, Severity.ERROR) == {"RVP007"}


def test_rvp007_untouched_assignment_is_accepted():
    program = _two_web_program()
    webs = [
        Web(index=0, reg=R[1], def_pcs={0}, live_pcs={0, 1, 2}),
        Web(index=1, reg=R[1], def_pcs={2}, live_pcs={2}),
    ]
    # Conservative per-register interference can report same-register
    # sibling webs as adjacent; an unchanged assignment is still legal.
    check = AllocationCheck(
        proc_name="main",
        webs=webs,
        adjacency={0: {1}, 1: {0}},
        assignment={0: R[1], 1: R[1]},
    )
    assert verify_program(program, allocations=[check]) == []


# ----------------------------------------------------------------------
# RVP008 — loop-exclusive (LVR) registers
# ----------------------------------------------------------------------
def test_rvp008_loop_exclusive_register_shared():
    program = assemble(
        """
        li r1, #0
        li r9, #4
    loop:
        add r1, r1, #1
        add r1, r1, #2
        sub r9, r9, #1
        bne r9, loop
        halt
        """
    )
    diags = verify_program(program, lvr_pcs={2})
    assert rules_fired(diags, Severity.ERROR) == {"RVP008"}
    assert any("pc 3" in d.message for d in diags if d.is_error)


def test_rvp008_call_clobber_counts_as_sharing():
    program = assemble(
        """
    .proc main
    main:
        li r1, #0
        li r9, #4
    loop:
        add r1, r1, #1
        jsr r26, callee
        sub r9, r9, #1
        bne r9, loop
        halt
    .proc callee
    callee:
        ret r26
        """
    )
    # r1 is volatile: the call inside the loop implicitly clobbers it.
    diags = verify_program(program, lvr_pcs={2})
    assert "RVP008" in rules_fired(diags, Severity.ERROR)


def test_rvp008_outside_any_loop():
    program = assemble(
        """
        li r1, #0
        halt
        """
    )
    diags = verify_program(program, lvr_pcs={0})
    assert rules_fired(diags, Severity.ERROR) == {"RVP008"}


def test_rvp008_exclusive_register_passes():
    program = assemble(
        """
        li r1, #0
        li r9, #4
    loop:
        add r1, r1, #1
        sub r9, r9, #1
        bne r9, loop
        halt
        """
    )
    assert verify_program(program, lvr_pcs={2}) == []


# ----------------------------------------------------------------------
# RVP010 — rvp-marked invariant load provably clobbered in its loop
# ----------------------------------------------------------------------
CLOBBERED_MARK = """
    li r9, #16
    li r2, #64
loop:
    rvp_ld r3, 0(r2)
    add r4, r3, #1
    st r4, 0(r2)
    sub r9, r9, #1
    bne r9, loop
    halt
"""


def test_rvp010_marked_invariant_load_must_clobbered():
    diags = verify_program(assemble(CLOBBERED_MARK))
    assert rules_fired(diags) == {"RVP010"}
    (diag,) = diags
    assert diag.pc == 2 and "pc 4" in diag.message


def test_rvp010_storing_the_loaded_value_back_is_fine():
    # Writing the load's own (SSA) value back preserves the reuse bet.
    program = assemble(CLOBBERED_MARK.replace("st r4, 0(r2)", "st r3, 0(r2)"))
    assert verify_program(program) == []


# ----------------------------------------------------------------------
# RVP011 — dead stride mark whose shadow add provably adds 0
# ----------------------------------------------------------------------
def _dead_hinted(shadow_add):
    program = assemble(
        f"""
        li r9, #16
        li r2, #64
    loop:
        ld r3, 0(r2)
        ld r4, 0(r2)
        {shadow_add}
        st r5, 8(r2)
        st r3, 16(r2)
        sub r9, r9, #1
        bne r9, loop
        halt
        """
    )
    lists = ProfileLists(threshold=0.8)
    lists.dead[2] = DeadHint(reg=R[5], producer_pc=4)
    return program, lists


def test_rvp011_zero_immediate_stride_is_dead():
    program, lists = _dead_hinted("add r5, r4, #0")
    diags = verify_program(program, lists=lists)
    assert rules_fired(diags) == {"RVP011"}
    (diag,) = diags
    assert diag.pc == 2 and "pc 4" in diag.message


def test_rvp011_nonzero_stride_is_kept():
    program, lists = _dead_hinted("add r5, r4, #8")
    assert verify_program(program, lists=lists) == []


def test_rvp011_register_zero_stride_proven_by_absint():
    # The delta rides in a register; only the interval domain can prove the
    # shadow add is a no-op (add.imm alone looks like a real stride source).
    program = assemble(
        """
        li r7, #0
        li r9, #16
        li r2, #64
    loop:
        ld r3, 0(r2)
        ld r4, 0(r2)
        add r5, r4, r7
        st r5, 8(r2)
        st r3, 16(r2)
        sub r9, r9, #1
        bne r9, loop
        halt
        """
    )
    lists = ProfileLists(threshold=0.8)
    lists.dead[3] = DeadHint(reg=R[5], producer_pc=5)
    diags = verify_program(program, lists=lists)
    assert rules_fired(diags) == {"RVP011"}


# ----------------------------------------------------------------------
# RVP012 — unreachable under interval-pruned branches
# ----------------------------------------------------------------------
PRUNED = """
    li r4, #0
    beq r4, skip
    li r1, #1
skip:
    halt
"""


def test_rvp012_interval_pruned_arm_warns():
    diags = verify_program(assemble(PRUNED))
    assert rules_fired(diags) == {"RVP012"}
    (diag,) = diags
    assert diag.pc == 2 and not diag.is_error


# ----------------------------------------------------------------------
# RVP013 — load result provably dropped
# ----------------------------------------------------------------------
def test_rvp013_zero_dest_and_ssa_dead_loads():
    program = assemble(
        """
        li r2, #64
        ld r31, 0(r2)   ; dropped on the spot: r31 is hardwired zero
        ld r3, 0(r2)    ; SSA-dead: feeds nothing observable
        ld r4, 0(r2)    ; observed via the store
        st r4, 8(r2)
        halt
        """
    )
    diags = verify_program(program)
    assert rules_fired(diags) == {"RVP013"}
    assert {d.pc for d in diags} == {1, 2}


# ----------------------------------------------------------------------
# Heavy-rule gating
# ----------------------------------------------------------------------
def test_include_heavy_false_suppresses_absint_rules():
    config = LintConfig.parse(include_heavy=False)
    assert verify_program(assemble(PRUNED), config=config) == []
    assert verify_program(assemble(CLOBBERED_MARK), config=config) == []


def test_check_program_defaults_to_cheap_rules():
    # Pass/session call sites use check_program with no config: heavy rules
    # must stay out of the hot path unless explicitly requested.
    program = assemble(PRUNED)
    assert check_program(program, source="gate") == []
    diags = check_program(program, source="gate", config=LintConfig.parse())
    assert rules_fired(diags) == {"RVP012"}


# ----------------------------------------------------------------------
# Config, driver, environment
# ----------------------------------------------------------------------
def test_disabled_rules_are_skipped():
    program = assemble(
        """
        add r2, r1, #1
        halt
        """
    )
    config = LintConfig.parse(disabled=["rvp003"])
    assert verify_program(program, config=config) == []


def test_strict_mode_promotes_warnings():
    program = assemble(
        """
        br end
        li r1, #1
    end:
        halt
        """
    )
    diags = verify_program(program, config=LintConfig.parse(strict=True))
    assert diags and all(d.severity is Severity.ERROR for d in diags)


def test_check_program_raises_with_diagnostics():
    program = assemble(
        """
        add r2, r1, #1
        halt
        """
    )
    with pytest.raises(VerificationError) as excinfo:
        check_program(program, source="unit test")
    assert excinfo.value.source == "unit test"
    assert any(d.rule == "RVP003" for d in excinfo.value.diagnostics)


def test_check_program_baseline_suppresses_preexisting_errors():
    program = assemble(
        """
        add r2, r1, #1
        halt
        """
    )
    # The same (rule, pc) error exists in the baseline -> not introduced.
    diags = check_program(program, source="delta", baseline=program)
    assert any(d.rule == "RVP003" for d in diags)


def test_verification_enabled_env_gate(monkeypatch):
    monkeypatch.delenv(VERIFY_ENV, raising=False)
    assert verification_enabled() and verification_enabled(True)
    assert not verification_enabled(False)
    monkeypatch.setenv(VERIFY_ENV, "0")
    assert not verification_enabled()
    assert verification_enabled(True)  # explicit argument wins


def test_rule_catalog_is_complete():
    catalog = rule_catalog()
    ids = [info.rule_id for info in catalog]
    assert ids == [f"RVP{n:03d}" for n in range(1, 14)]
    # RVP010-RVP013 need the abstract interpreter and are gated as heavy.
    assert [info.rule_id for info in catalog if info.heavy] == [
        "RVP010", "RVP011", "RVP012", "RVP013",
    ]
