"""The fuzz generator: verifier-clean, deterministic, parameterised, halting."""

from __future__ import annotations

import pytest

from repro.analysis.verifier import LintConfig, verify_program
from repro.sim.functional import run_program
from repro.testing import GeneratorConfig, generate_case

SEEDS = range(40)


def test_generated_programs_are_verifier_clean():
    """Every generated program passes RVP001..RVP009 with zero diagnostics.

    Heavy absint rules are excluded: generated control flow legitimately
    contains interval-dead arms (RVP012-style findings are advisory there).
    """
    config = LintConfig.parse(include_heavy=False)
    for seed in SEEDS:
        case = generate_case(seed)
        diagnostics = verify_program(case.program, config=config)
        assert not diagnostics, f"seed {seed}: {[d.render() for d in diagnostics]}"


def test_generated_programs_halt_within_budget():
    for seed in SEEDS:
        case = generate_case(seed)
        result = run_program(case.program, memory=case.memory(), max_instructions=50_000)
        assert result.halted, f"seed {seed} did not halt"
        assert result.instructions >= len(case.program) // 2


def test_generation_is_deterministic():
    for seed in (0, 7, 123):
        a = generate_case(seed)
        b = generate_case(seed)
        assert a.program.render() == b.program.render()
        assert a.memory_words == b.memory_words
        assert a.memory() == b.memory()


def test_distinct_seeds_differ():
    renders = {generate_case(seed).program.render() for seed in range(10)}
    assert len(renders) > 1


def test_load_density_parameter_changes_load_mix():
    dense = GeneratorConfig(load_density=0.9, store_density=0.05)
    sparse = GeneratorConfig(load_density=0.0, store_density=0.05)

    def loads(config):
        return sum(
            sum(1 for inst in generate_case(seed, config).program if inst.is_load)
            for seed in range(5)
        )

    assert loads(dense) > loads(sparse)


def test_loop_depth_parameter_bounds_backward_branches():
    flat = GeneratorConfig(loop_depth=0, branch_mix=0.0)
    for seed in range(5):
        program = generate_case(seed, flat).program
        backward = [
            inst for inst in program
            if inst.target is not None and program.labels[inst.target] <= inst.pc
        ]
        assert not backward, f"seed {seed}: loop_depth=0 emitted a backward branch"


def test_register_pressure_bounds_working_set():
    tight = GeneratorConfig(register_pressure=3)
    for seed in range(5):
        program = generate_case(seed, tight).program
        int_regs = {
            reg.index
            for inst in program
            for reg in (inst.dst, inst.src1, inst.src2)
            if reg is not None and reg.is_int and not reg.is_zero
        }
        # working regs R1..R3 plus the reserved loop counters
        assert int_regs <= {1, 2, 3, 9, 10, 11}, f"seed {seed}: {int_regs}"


def test_config_validated_clamps_nonsense():
    config = GeneratorConfig(segments=-4, load_density=7.0, register_pressure=0).validated()
    assert config.segments >= 1
    assert 0.0 <= config.load_density <= 1.0
    assert config.register_pressure >= 1


def test_with_program_preserves_seed_and_memory():
    case = generate_case(3)
    clone = case.with_program(case.program)
    assert clone.seed == case.seed
    assert clone.memory_words == case.memory_words
