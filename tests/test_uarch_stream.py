"""Stream preparation tests: dependences and prediction correctness flags."""

from repro.isa import R, assemble
from repro.profiling import DeadHint, ProfileLists
from repro.sim import Memory, run_program
from repro.uarch import prepare_stream
from repro.vp import DynamicRVP, LastValuePredictor, NoPredictor


def trace_of(text, memory=None):
    return run_program(assemble(text), memory=memory, max_instructions=5000, collect_trace=True).trace


def test_register_dependences_point_to_last_writer():
    trace = trace_of("li r1, #1\nli r2, #2\nadd r3, r1, r2\nli r1, #9\nadd r4, r1, #0\nhalt")
    stream = prepare_stream(trace, NoPredictor())
    assert stream[2].src_deps == (0, 1)
    assert stream[4].src_deps == (3,)  # redefined r1
    assert stream[0].src_deps == ()


def test_store_load_dependence():
    trace = trace_of("li r1, #5\nst r1, 0x40(r31)\nld r2, 0x40(r31)\nld r3, 0x80(r31)\nhalt")
    stream = prepare_stream(trace, NoPredictor())
    assert stream[2].store_dep == 1  # load after store to same address
    assert stream[3].store_dep is None


def test_dst_old_writer_tracked():
    trace = trace_of("li r1, #1\nli r1, #2\nhalt")
    stream = prepare_stream(trace, NoPredictor())
    assert stream[0].dst_old_writer is None
    assert stream[1].dst_old_writer == 0


def test_same_register_prediction_correctness():
    memory = Memory()
    memory.store(0x100, 7)
    trace = trace_of(
        "li r2, #3\nloop: ld r1, 0x100(r31)\nsub r2, r2, #1\nbne r2, loop\nhalt",
        memory,
    )
    stream = prepare_stream(trace, DynamicRVP())
    loads = [e for e in stream if e.record.is_load]
    assert loads[0].pred_correct is False  # r1 held 0 before
    assert all(e.pred_correct for e in loads[1:])  # constant reloads
    assert loads[1].value_dep == loads[0].seq


def test_reg_hint_correctness_uses_other_register():
    lists = ProfileLists(threshold=0.8)
    memory = Memory()
    memory.store(0x100, 55)
    text = "li r4, #55\nld r3, 0x100(r31)\nhalt"
    trace = trace_of(text, memory)
    lists.dead[1] = DeadHint(reg=R[4], producer_pc=0)
    stream = prepare_stream(trace, DynamicRVP(lists=lists, use_dead=True))
    load = stream[1]
    assert load.pred_correct is True  # r4 already held 55
    assert load.value_dep == 0  # produced by the li


def test_stored_prediction_uses_previous_instance():
    memory = Memory()
    memory.store(0x100, 7)
    lists = ProfileLists(threshold=0.8)
    lists.last_value.add(1)
    text = "li r2, #3\nloop: ld r1, 0x100(r31)\nadd r1, r1, #1\nsub r2, r2, #1\nbne r2, loop\nhalt"
    trace = trace_of(text, memory)
    stream = prepare_stream(trace, DynamicRVP(lists=lists, use_lv=True))
    loads = [e for e in stream if e.record.is_load]
    assert loads[0].prev_instance is None and not loads[0].pred_correct
    assert loads[1].prev_instance == loads[0].seq and loads[1].pred_correct


def test_fu_and_iq_classification():
    trace = trace_of("li r1, #1\nfli f1, #1\nfadd f2, f1, f1\nld r2, 0x40(r31)\nfld f3, 0x40(r31)\nst r1, 0(r31)\nhalt")
    stream = prepare_stream(trace, NoPredictor())
    kinds = [(e.fu, e.iq) for e in stream]
    assert kinds[0] == ("int", "int")
    assert kinds[2] == ("fp", "fp")
    assert kinds[3] == ("ldst", "int")
    assert kinds[4] == ("ldst", "fp")
    assert kinds[5] == ("ldst", "int")


def test_no_candidates_for_no_predictor():
    trace = trace_of("li r1, #1\nhalt")
    stream = prepare_stream(trace, NoPredictor())
    assert all(e.cand_source is None for e in stream)
