"""Parameter-sweep utility tests."""

from dataclasses import replace

from repro.core import render_sweep, speedup_series, sweep, sweep_machine
from repro.uarch import table1_config


def test_sweep_machine_iq_sizes():
    rows = sweep_machine(
        "iq",
        [16, 32],
        lambda iq: replace(table1_config(), iq_int=iq, iq_fp=iq),
        workloads=("go",),
        configs=("no_predict",),
        max_instructions=6_000,
    )
    assert (16, "go", "no_predict") in rows and (32, "go", "no_predict") in rows
    # A larger instruction queue never slows the baseline down.
    assert rows[(32, "go", "no_predict")] >= rows[(16, "go", "no_predict")] - 1e-9


def test_speedup_series():
    rows = {
        (1, "go", "no_predict"): 1.0,
        (1, "go", "drvp_all"): 1.1,
        (2, "go", "no_predict"): 1.0,
        (2, "go", "drvp_all"): 1.3,
    }
    series = speedup_series(rows, "go", "drvp_all")
    assert series == {1: 1.1, 2: 1.3}


def test_generic_sweep():
    out = sweep([1, 2, 3], lambda p: {"square": p * p})
    assert out[3]["square"] == 9


def test_render_sweep():
    rows = {
        (16, "go", "no_predict"): 1.234,
        (32, "go", "no_predict"): 1.456,
    }
    text = render_sweep(rows, "IQ sweep")
    assert "IQ sweep" in text and "1.234" in text and "1.456" in text
    assert "go/no_predict" in text


def test_speedup_series_numeric_point_order():
    """Points must come back in numeric order, not string order (where
    '16' < '64' < '8' would scramble the series)."""
    rows = {}
    for point in (64, 8, 16):
        rows[(point, "go", "no_predict")] = 1.0
        rows[(point, "go", "drvp_all")] = 1.0 + point / 100.0
    series = speedup_series(rows, "go", "drvp_all")
    assert list(series) == [8, 16, 64]


def test_render_sweep_numeric_column_order():
    rows = {(p, "go", "no_predict"): float(p) for p in (64, 8, 16)}
    header = render_sweep(rows).splitlines()[0]
    assert header.index(" 8") < header.index("16") < header.index("64")


def test_render_sweep_mixed_points_fall_back_to_str_order():
    rows = {
        ("small", "go", "no_predict"): 1.0,
        (8, "go", "no_predict"): 2.0,
    }
    header = render_sweep(rows).splitlines()[0]
    assert "8" in header and "small" in header  # renders without a TypeError


def test_speedup_series_float_points():
    rows = {}
    for point in (0.9, 0.5, 0.75):
        rows[(point, "li", "no_predict")] = 1.0
        rows[(point, "li", "lvp_all")] = 1.0 + point
    assert list(speedup_series(rows, "li", "lvp_all")) == [0.5, 0.75, 0.9]
