"""Parameter-sweep utility tests."""

from dataclasses import replace

from repro.core import render_sweep, speedup_series, sweep, sweep_machine
from repro.uarch import table1_config


def test_sweep_machine_iq_sizes():
    rows = sweep_machine(
        "iq",
        [16, 32],
        lambda iq: replace(table1_config(), iq_int=iq, iq_fp=iq),
        workloads=("go",),
        configs=("no_predict",),
        max_instructions=6_000,
    )
    assert (16, "go", "no_predict") in rows and (32, "go", "no_predict") in rows
    # A larger instruction queue never slows the baseline down.
    assert rows[(32, "go", "no_predict")] >= rows[(16, "go", "no_predict")] - 1e-9


def test_speedup_series():
    rows = {
        (1, "go", "no_predict"): 1.0,
        (1, "go", "drvp_all"): 1.1,
        (2, "go", "no_predict"): 1.0,
        (2, "go", "drvp_all"): 1.3,
    }
    series = speedup_series(rows, "go", "drvp_all")
    assert series == {1: 1.1, 2: 1.3}


def test_generic_sweep():
    out = sweep([1, 2, 3], lambda p: {"square": p * p})
    assert out[3]["square"] == 9


def test_render_sweep():
    rows = {
        (16, "go", "no_predict"): 1.234,
        (32, "go", "no_predict"): 1.456,
    }
    text = render_sweep(rows, "IQ sweep")
    assert "IQ sweep" in text and "1.234" in text and "1.456" in text
    assert "go/no_predict" in text
