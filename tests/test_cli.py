"""CLI tests (python -m repro ...)."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_list_command(capsys):
    code, out = run_cli(capsys, "list")
    assert code == 0
    for name in ("go", "m88ksim", "turb3d"):
        assert name in out
    assert "drvp_all_dead_lv" in out and "no_predict" in out


def test_run_command(capsys):
    code, out = run_cli(
        capsys, "run", "--workload", "go", "--config", "no_predict", "drvp_all", "--max-insts", "6000"
    )
    assert code == 0
    assert "go" in out and "drvp_all" in out
    assert "speedups" in out  # no_predict present -> speedup table


def test_profile_command(capsys):
    code, out = run_cli(capsys, "profile", "--workload", "perl", "--max-insts", "8000")
    assert code == 0
    assert "load reuse" in out and "lists" in out


def test_realloc_command(capsys):
    code, out = run_cli(capsys, "realloc", "--workload", "mgrid", "--max-insts", "8000")
    assert code == 0
    assert "applied" in out


def test_recovery_and_wide_flags(capsys):
    code, out = run_cli(
        capsys,
        "run", "--workload", "go", "--config", "no_predict",
        "--recovery", "refetch", "--wide", "--max-insts", "5000",
    )
    assert code == 0 and "refetch" in out


def test_metrics_command_emits_json(capsys):
    import json

    code, out = run_cli(
        capsys, "metrics", "--workload", "li", "--config", "no_predict", "lvp_all", "--max-insts", "4000"
    )
    assert code == 0
    payload = json.loads(out)
    assert payload["workloads"] == ["li"]
    assert {cell["config"] for cell in payload["cells"]} == {"no_predict", "lvp_all"}
    assert payload["metrics"]["counters"]["sim.runs"] >= 1
    assert "sim.wall" in payload["metrics"]["timers"]


def test_run_profile_flag_appends_metrics_json(capsys):
    code, out = run_cli(
        capsys, "run", "--workload", "li", "--config", "no_predict", "--max-insts", "4000", "--profile"
    )
    assert code == 0
    assert '"counters"' in out and '"timers"' in out


def test_suite_command_with_jobs(capsys):
    code, out = run_cli(
        capsys, "suite", "--config", "no_predict", "lvp_all", "--max-insts", "1500", "--jobs", "2"
    )
    assert code == 0
    assert "cells done" in out
    assert "suite speedups" in out
    assert "FAILED" not in out


def run_cli_err(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_lint_clean_workload_exits_zero(capsys):
    code, out = run_cli(capsys, "lint", "li", "--max-insts", "4000")
    assert code == 0
    assert "li/base: ok" in out


def test_lint_all_variants_of_one_workload(capsys):
    code, out = run_cli(
        capsys, "lint", "mgrid", "--max-insts", "4000",
        "--variant", "base", "srvp_same", "realloc",
    )
    assert code == 0
    assert "srvp_same" in out and "realloc" in out


def test_lint_bad_asm_exits_one(capsys, tmp_path):
    bad = tmp_path / "bad.s"
    bad.write_text("add r2, r1, #1\nhalt\n")  # r1 is garbage at entry
    code, out = run_cli(capsys, "lint", "--asm", str(bad))
    assert code == 1
    assert "RVP003" in out


def test_lint_clean_asm_exits_zero(capsys, tmp_path):
    good = tmp_path / "good.s"
    good.write_text("li r1, #1\nadd r2, r1, #1\nhalt\n")
    code, out = run_cli(capsys, "lint", "--asm", str(good))
    assert code == 0


def test_lint_strict_promotes_warnings_to_exit_one(capsys, tmp_path):
    warn = tmp_path / "warn.s"
    warn.write_text("br end\nli r1, #1\nend:\nhalt\n")  # dead code: RVP004 warning
    code, _ = run_cli(capsys, "lint", "--asm", str(warn))
    assert code == 0
    code, out = run_cli(capsys, "lint", "--asm", str(warn), "--strict")
    assert code == 1
    assert "RVP004" in out


def test_lint_disable_silences_a_rule(capsys, tmp_path):
    bad = tmp_path / "bad.s"
    bad.write_text("add r2, r1, #1\nhalt\n")
    code, _ = run_cli(capsys, "lint", "--asm", str(bad), "--disable", "RVP003")
    assert code == 0


def test_lint_unknown_workload_exits_two(capsys):
    code, out, err = run_cli_err(capsys, "lint", "gcc")
    assert code == 2
    assert "gcc" in err


def test_lint_nothing_to_lint_exits_two(capsys):
    code, out, err = run_cli_err(capsys, "lint")
    assert code == 2


def test_lint_missing_asm_file_exits_two(capsys, tmp_path):
    code, out, err = run_cli_err(capsys, "lint", "--asm", str(tmp_path / "nope.s"))
    assert code == 2


def test_lint_json_output(capsys):
    import json

    code, out = run_cli(capsys, "lint", "li", "--max-insts", "4000", "--json")
    assert code == 0
    payload = json.loads(out)
    assert payload["ok"] is True
    (target,) = payload["targets"]
    assert target["summary"]["error"] == 0
    assert isinstance(target["diagnostics"], list)


def test_lint_rules_catalog(capsys):
    code, out = run_cli(capsys, "lint", "--rules")
    assert code == 0
    for rule_id in ("RVP001", "RVP005", "RVP009"):
        assert rule_id in out


def test_lint_reuse_report(capsys):
    import json

    code, out = run_cli(
        capsys, "lint", "li", "--max-insts", "4000", "--reuse-report", "--json"
    )
    assert code == 0
    payload = json.loads(out)
    (entry,) = payload["reuse_report"]
    assert entry["program"] == "li"
    assert set(entry["static_counts"]) == {"same", "dead", "last_value", "none"}


def test_lint_max_gap_exit_three(capsys):
    import json

    # A zero tolerance always trips on real workloads: static weighted
    # fractions never match the profiled Figure-1 fractions exactly.
    code, out = run_cli(
        capsys, "lint", "li", "--max-insts", "4000",
        "--reuse-report", "--max-gap", "0.0", "--json",
    )
    assert code == 3
    payload = json.loads(out)
    assert payload["ok"] is True  # no lint errors: the gap alone caused exit 3
    assert any("gap" in line for line in payload["max_gap_failures"])


def test_lint_max_gap_within_tolerance(capsys):
    code, _ = run_cli(
        capsys, "lint", "li", "--max-insts", "4000",
        "--reuse-report", "--max-gap", "1.0",
    )
    assert code == 0


def test_analyze_workload(capsys):
    code, out = run_cli(capsys, "analyze", "li", "--max-insts", "4000")
    assert code == 0
    assert "li" in out


def test_analyze_json_payload(capsys):
    import json

    code, out = run_cli(capsys, "analyze", "li", "--max-insts", "4000", "--json")
    assert code == 0
    payload = json.loads(out)
    assert payload["ok"] is True and payload["failures"] == []
    (target,) = payload["targets"]
    assert target["target"] == "li"
    for key in (
        "induction", "unreachable_pcs", "decided_branches",
        "heuristic_counts", "symbolic_counts",
        "candidate_overlap", "heuristic_candidate_overlap", "by_loop_depth",
    ):
        assert key in target
    # Acceptance invariant the command enforces under --strict: symbolic
    # candidates overlap the profiled lists at least as well as heuristic.
    for cls in ("same", "dead"):
        assert (
            target["candidate_overlap"][cls]["both"]
            >= target["heuristic_candidate_overlap"][cls]["both"]
        )


def test_analyze_generated_programs(capsys):
    import json

    code, out = run_cli(capsys, "analyze", "--generated", "2", "--seed", "3", "--json")
    assert code == 0
    payload = json.loads(out)
    assert len(payload["targets"]) == 2
    for target in payload["targets"]:
        assert {"induction", "unreachable_pcs", "decided_branches"} <= set(target)


def test_analyze_unknown_workload_exits_two(capsys):
    code, out, err = run_cli_err(capsys, "analyze", "gcc")
    assert code == 2
    assert "gcc" in err


def test_analyze_nothing_exits_two(capsys):
    code, out, err = run_cli_err(capsys, "analyze")
    assert code == 2


def test_bad_workload_rejected():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--workload", "gcc"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_fuzz_command_clean(capsys):
    code, out = run_cli(capsys, "fuzz", "--runs", "5", "--seed", "0")
    assert code == 0
    assert "5 case(s) checked" in out
    assert "ok" in out


def test_fuzz_command_json(capsys):
    import json

    code, out = run_cli(capsys, "fuzz", "--runs", "3", "--seed", "2", "--json")
    assert code == 0
    payload = json.loads(out)
    assert payload["ok"] is True
    assert payload["checked"] == 3
    assert payload["failures"] == []
    assert len(payload["oracles"]) == 6
    assert "absint-soundness" in payload["oracles"]
    assert "pipeline-equivalence" in payload["oracles"]


def test_fuzz_command_oracle_subset(capsys):
    import json

    code, out = run_cli(
        capsys, "fuzz", "--runs", "2", "--oracle", "trace-equivalence", "--json"
    )
    assert code == 0
    payload = json.loads(out)
    assert payload["oracles"] == ["trace-equivalence"]


def test_fuzz_command_failure_exit_code_and_artifacts(capsys, tmp_path, monkeypatch):
    """A seeded defect makes `repro fuzz` exit 1 and write shrunk reproducers."""
    import json

    from repro.compiler import insertion

    monkeypatch.setattr(insertion, "_TEST_DROP_FIRST_INSERTED", True)
    out_dir = tmp_path / "repro-artifacts"
    code, out = run_cli(
        capsys, "fuzz", "--runs", "2", "--seed", "0",
        "--oracle", "pass-preservation", "--json", "--out", str(out_dir),
    )
    assert code == 1
    payload = json.loads(out)
    assert payload["ok"] is False
    assert payload["failures"]
    written = list(out_dir.glob("seed*-pass-preservation.s"))
    assert written, "expected shrunk reproducer artifacts"
    text = written[0].read_text()
    assert "halt" in text  # a runnable program, not a fragment


def test_fuzz_command_rejects_unknown_oracle():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["fuzz", "--oracle", "nonsense"])
