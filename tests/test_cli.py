"""CLI tests (python -m repro ...)."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_list_command(capsys):
    code, out = run_cli(capsys, "list")
    assert code == 0
    for name in ("go", "m88ksim", "turb3d"):
        assert name in out
    assert "drvp_all_dead_lv" in out and "no_predict" in out


def test_run_command(capsys):
    code, out = run_cli(
        capsys, "run", "--workload", "go", "--config", "no_predict", "drvp_all", "--max-insts", "6000"
    )
    assert code == 0
    assert "go" in out and "drvp_all" in out
    assert "speedups" in out  # no_predict present -> speedup table


def test_profile_command(capsys):
    code, out = run_cli(capsys, "profile", "--workload", "perl", "--max-insts", "8000")
    assert code == 0
    assert "load reuse" in out and "lists" in out


def test_realloc_command(capsys):
    code, out = run_cli(capsys, "realloc", "--workload", "mgrid", "--max-insts", "8000")
    assert code == 0
    assert "applied" in out


def test_recovery_and_wide_flags(capsys):
    code, out = run_cli(
        capsys,
        "run", "--workload", "go", "--config", "no_predict",
        "--recovery", "refetch", "--wide", "--max-insts", "5000",
    )
    assert code == 0 and "refetch" in out


def test_metrics_command_emits_json(capsys):
    import json

    code, out = run_cli(
        capsys, "metrics", "--workload", "li", "--config", "no_predict", "lvp_all", "--max-insts", "4000"
    )
    assert code == 0
    payload = json.loads(out)
    assert payload["workloads"] == ["li"]
    assert {cell["config"] for cell in payload["cells"]} == {"no_predict", "lvp_all"}
    assert payload["metrics"]["counters"]["sim.runs"] >= 1
    assert "sim.wall" in payload["metrics"]["timers"]


def test_run_profile_flag_appends_metrics_json(capsys):
    code, out = run_cli(
        capsys, "run", "--workload", "li", "--config", "no_predict", "--max-insts", "4000", "--profile"
    )
    assert code == 0
    assert '"counters"' in out and '"timers"' in out


def test_suite_command_with_jobs(capsys):
    code, out = run_cli(
        capsys, "suite", "--config", "no_predict", "lvp_all", "--max-insts", "1500", "--jobs", "2"
    )
    assert code == 0
    assert "cells done" in out
    assert "suite speedups" in out
    assert "FAILED" not in out


def test_bad_workload_rejected():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--workload", "gcc"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
