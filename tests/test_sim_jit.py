"""Unit tests for the trace-JIT tier: thresholds, caching, fault fidelity.

Functional equivalence against the reference engine is covered by the
cross-engine matrix (``test_sim_engines_matrix``) and the fuzz oracle; this
file pins the JIT-specific machinery — when blocks compile, how the
per-Program cache behaves, and that guard exits (faults mid-block, budgets
mid-trace) reproduce the decoded engine's observable state bit for bit.
"""

from __future__ import annotations

import pytest

import repro.sim.jit as jit_tier
from repro.isa.assembler import assemble
from repro.sim.functional import FunctionalSimulator
from repro.sim.jit import JitProgram, jit_decode
from repro.sim.memory import Memory
from repro.workloads.suite import make_workload


@pytest.fixture
def threshold_one(monkeypatch):
    monkeypatch.setattr(jit_tier, "JIT_THRESHOLD", 1)


def _run(program, memory, engine, max_insts=100_000):
    sim = FunctionalSimulator(program, memory=memory, engine=engine)
    result = sim.run(max_instructions=max_insts)
    return sim, result


# ----------------------------------------------------------------------
# Compilation policy
# ----------------------------------------------------------------------
def test_cold_blocks_never_compile(monkeypatch):
    monkeypatch.setattr(jit_tier, "JIT_THRESHOLD", 10**9)
    workload = make_workload("li")
    program = workload.program
    program.__dict__.pop("_jit_cache", None)
    _run(program, workload.memory("ref"), "jit", max_insts=2_000)
    assert jit_decode(program).blocks_compiled == 0


def test_hot_blocks_compile_and_cache_is_per_program(threshold_one):
    workload = make_workload("li")
    program = workload.program
    program.__dict__.pop("_jit_cache", None)
    _run(program, workload.memory("ref"), "jit", max_insts=2_000)
    jp = jit_decode(program)
    assert isinstance(jp, JitProgram)
    assert jp.blocks_compiled > 0
    # Memoized: a second run reuses the same JitProgram and recompiles nothing.
    compiled_before = jp.blocks_compiled
    _run(program, workload.memory("ref"), "jit", max_insts=2_000)
    assert jit_decode(program) is jp
    assert jp.blocks_compiled == compiled_before


def test_threshold_env_var_is_honored(monkeypatch):
    monkeypatch.setenv("REPRO_JIT_THRESHOLD", "7")
    import importlib

    importlib.reload(jit_tier)
    try:
        assert jit_tier.JIT_THRESHOLD == 7
    finally:
        monkeypatch.delenv("REPRO_JIT_THRESHOLD")
        importlib.reload(jit_tier)
    assert jit_tier.JIT_THRESHOLD == 16


def test_single_instruction_blocks_are_not_jit_candidates():
    # head_len only marks blocks of >= 2 instructions: a 1-instruction block
    # gains nothing from stitching and would double bookkeeping.
    program = assemble(
        """
        start:
            li r1, #1
        loop:
            add r2, r2, r1
            bne r2, done
            br loop
        done:
            halt
        """,
        name="tiny-blocks",
    )
    jp = jit_decode(program)
    assert all(length in (0,) or length >= 2 for length in jp.head_len)


# ----------------------------------------------------------------------
# Guard exits: faults inside a compiled block
# ----------------------------------------------------------------------
_FAULTY = """
    start:
        li r1, #8
        li r2, #0
    loop:
        add r2, r2, r1
        ld r3, 0x100(r31)
        add r3, r3, r1
        cmpult r4, r2, r3
        bne r4, loop
        li r5, #3
        ld r6, 3(r31)
        halt
"""


def test_fault_mid_block_matches_decoded(threshold_one):
    # The final block commits two instructions (li r5) before the unaligned
    # load faults; pc, commit count, and state must match decoded exactly.
    def build():
        program = assemble(_FAULTY, name="faulty")
        memory = Memory()
        memory.store(0x100, 64)
        return program, memory

    outcomes = {}
    for engine in ("decoded", "jit"):
        program, memory = build()
        sim = FunctionalSimulator(program, memory=memory, engine=engine)
        with pytest.raises(ValueError, match="unaligned access at address 0x3"):
            sim.run(max_instructions=10_000)
        result = sim.last_result
        outcomes[engine] = (
            result.instructions,
            sim.state.pc,
            tuple(sim.state.int_regs),
            dict(memory._words),
        )
    assert outcomes["jit"] == outcomes["decoded"]


def test_halt_inside_block_leaves_pc_on_halt(threshold_one):
    workload = make_workload("li")
    program = workload.program
    dec_sim, dec = _run(program, workload.memory("ref"), "decoded")
    jit_sim, jit = _run(program, workload.memory("ref"), "jit")
    assert dec.halted and jit.halted
    assert jit.instructions == dec.instructions
    assert jit_sim.state.pc == dec_sim.state.pc


# ----------------------------------------------------------------------
# Engine selection plumbing
# ----------------------------------------------------------------------
def test_engine_jit_is_accepted_and_counts_runs(threshold_one):
    from repro.core.metrics import get_metrics

    workload = make_workload("dotprod")
    before = get_metrics().get("sim.runs_jit")
    _run(workload.program, workload.memory("ref"), "jit", max_insts=5_000)
    assert get_metrics().get("sim.runs_jit") == before + 1


def test_unknown_engine_rejected():
    workload = make_workload("li")
    with pytest.raises(ValueError, match="engine"):
        FunctionalSimulator(workload.program, memory=workload.memory("ref"), engine="warp")
