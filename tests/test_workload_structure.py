"""Per-workload structural tests: each model's documented locality pattern
actually exists in its trace (guarding the calibration against regressions)."""

import pytest

from repro.profiling import ReuseProfile, StrideProfile
from repro.sim import run_program
from repro.workloads import make_workload

BUDGET = 40_000


def trace_of(name):
    workload = make_workload(name)
    return workload, run_program(*workload.build("ref"), max_instructions=BUDGET, collect_trace=True).trace


@pytest.fixture(scope="module")
def profiles():
    out = {}
    for name in ("m88ksim", "li", "mgrid", "hydro2d", "go", "turb3d"):
        workload, trace = trace_of(name)
        out[name] = (workload, trace, ReuseProfile.from_trace(trace))
    return out


def test_m88ksim_pc_load_correlates_with_dead_register(profiles):
    """The Figure 2b pattern: the guest-pc load's value sits in the register
    that computed it last iteration."""
    workload, trace, profile = profiles["m88ksim"]
    lists = profile.profile_lists(0.8)
    program = workload.program
    pc_loads = [pc for pc in lists.dead if program[pc].is_load and program[pc].imm == 32]
    assert pc_loads, "guest-pc load lost its dead-register hint"


def test_m88ksim_fetch_word_is_same_register_reusable(profiles):
    workload, trace, profile = profiles["m88ksim"]
    # The guest-instruction fetch: ld r1, 0(r11) at the loop top.
    fetch_pc = next(
        pc for pc, site in profile.sites.items()
        if site.is_load and workload.program[pc].dst is not None and workload.program[pc].dst.name == "r1"
    )
    assert profile.sites[fetch_pc].same_rate() > 0.5


def test_li_clobbered_car_load(profiles):
    """Figure 2c: the first car load's register is clobbered by the cdr, so
    its high last-value rate shows no same-register reuse."""
    workload, trace, profile = profiles["li"]
    clobbered = [
        site for site in profile.sites.values()
        if site.is_load and site.count > 500 and site.lv_rate() > 0.7 and site.same_rate() < 0.1
    ]
    assert clobbered, "li lost its clobbered-LVR pattern"


def test_mgrid_residuals_mostly_zero(profiles):
    workload, trace, profile = profiles["mgrid"]
    zero_loads = [r for r in trace if r.is_load and r.result == 0]
    loads = [r for r in trace if r.is_load]
    assert len(zero_loads) / len(loads) > 0.5


def test_hydro2d_memory_carried_chain(profiles):
    """The chain load reads the previous iteration's store."""
    workload, trace, profile = profiles["hydro2d"]
    stores = {r.addr for r in trace if r.inst.is_store}
    chain_loads = [r for r in trace if r.is_load and r.addr in stores]
    assert len(chain_loads) > 1000


def test_hydro2d_rotation_dead_hints(profiles):
    workload, trace, profile = profiles["hydro2d"]
    lists = profile.profile_lists(0.8)
    # The rotating stencil produces fp dead-register correlations.
    assert any(hint.reg.is_fp for hint in lists.dead.values())


def test_go_has_low_predictability(profiles):
    workload, trace, profile = profiles["go"]
    lists = profile.profile_lists(0.8, loads_only=True)
    # go: at most a couple of profile-qualified loads; weak locality is the point.
    assert len(lists.same) + len(lists.dead) <= 4


def test_turb3d_twiddle_is_group_constant(profiles):
    workload, trace, profile = profiles["turb3d"]
    best = max((s for s in profile.sites.values() if s.is_load), key=lambda s: s.same_rate())
    assert best.same_rate() > 0.6  # the twiddle load


def test_loop_counters_stride_by_one(profiles):
    workload, trace, profile = profiles["go"]
    strides = StrideProfile.from_trace(trace).strided_pcs(0.9, loads_only=False)
    assert 1 in strides.values() or -1 in strides.values()
