"""Golden equivalence: the streaming execution core matches the eager one.

``FunctionalSimulator.iter_run`` must yield exactly the records the eager
``run(collect_trace=True)`` path collects — same records, same final
architectural state, same run outcome — for every workload in the suite.
The streaming profilers must likewise reproduce the eager profiles, and the
online deadness resolution must agree with the backward-sweep reference.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.profiling import (
    MAX_MATCHES,
    CriticalPathBuilder,
    ReuseProfile,
    ReuseProfileBuilder,
    critical_path_profile,
    reg_id,
    resolve_deadness,
)
from repro.sim import FunctionalSimulator, stream_program
from repro.uarch import RecoveryScheme, table1_config
from repro.uarch.pipeline import simulate
from repro.uarch.stream import prepare_stream
from repro.vp.base import NoPredictor
from repro.vp.rvp import DynamicRVP
from repro.workloads.suite import WORKLOAD_CLASSES, make_workload

from conftest import random_memory, random_program

BUDGET = 3_000


@pytest.mark.parametrize("name", sorted(WORKLOAD_CLASSES))
@pytest.mark.parametrize("input_name", ["train", "ref"])
def test_iter_run_matches_eager_run(name, input_name):
    workload = make_workload(name)
    program = workload.program

    eager_sim = FunctionalSimulator(program, memory=workload.memory(input_name))
    eager = eager_sim.run(max_instructions=BUDGET, collect_trace=True)

    stream_sim = FunctionalSimulator(program, memory=workload.memory(input_name))
    streamed = list(stream_sim.iter_run(max_instructions=BUDGET))

    assert streamed == eager.trace
    result = stream_sim.last_result
    assert result.instructions == eager.instructions
    assert result.halted == eager.halted
    assert stream_sim.state.pc == eager_sim.state.pc
    assert stream_sim.state.state_equal(eager_sim.state)
    # Record-level spot check: identical bytes, not just dataclass equality.
    for got, want in zip(streamed[:50], eager.trace[:50]):
        assert (got.seq, got.pc, got.result, got.old_dest, got.addr) == (
            want.seq,
            want.pc,
            want.result,
            want.old_dest,
            want.addr,
        )


@pytest.mark.parametrize("name", ["m88ksim", "mgrid"])
def test_streaming_profilers_match_eager(name):
    workload = make_workload(name)
    trace = FunctionalSimulator(workload.program, memory=workload.memory("train")).run(
        max_instructions=BUDGET, collect_trace=True
    ).trace

    reuse = ReuseProfileBuilder()
    crit = CriticalPathBuilder()
    for record in trace:
        reuse.feed(record)
        crit.feed(record)
    streamed_profile = reuse.finish()
    eager_profile = ReuseProfile.from_trace(trace)

    assert streamed_profile.fig1.fractions() == eager_profile.fig1.fractions()
    assert set(streamed_profile.sites) == set(eager_profile.sites)
    for pc, site in eager_profile.sites.items():
        got = streamed_profile.sites[pc]
        assert (got.count, got.same_hits, got.lv_hits, got.any_hits) == (
            site.count,
            site.same_hits,
            site.lv_hits,
            site.any_hits,
        )
        assert got.dead_hits == site.dead_hits
        assert got.live_hits == site.live_hits
        assert got.producers == site.producers
    assert crit.finish() == critical_path_profile(trace)


@pytest.mark.parametrize("seed", range(8))
def test_online_deadness_matches_backward_sweep(seed):
    """The builder's online dead/live split must agree with the backward
    sweep in resolve_deadness on arbitrary traces.

    We re-derive the value-match queries the builder opens (reading its
    register mirrors *before* each feed, i.e. exactly the state the match
    is computed from), answer them with the independent backward resolver,
    and require the per-site, per-register dead/live tallies to coincide.
    """
    program = random_program(seed)
    trace = FunctionalSimulator(program, memory=random_memory(seed)).run(
        max_instructions=5_000, collect_trace=True
    ).trace

    builder = ReuseProfileBuilder()
    queries = []  # (seq, rid, pc)
    for record in trace:
        result = record.result
        dst = record.inst.writes
        if result is not None and dst is not None:
            holders = builder._value_to_regs.get(result, ())
            dst_rid = reg_id(dst)
            lo, hi = (0, 32) if dst.is_int else (32, 64)
            matched = tuple(
                rid for rid in holders if lo <= rid < hi and rid != dst_rid and rid % 32 != 31
            )[:MAX_MATCHES]
            for rid in matched:
                queries.append((record.seq, rid, record.pc))
        builder.feed(record)
    profile = builder.finish()

    answers = resolve_deadness(trace, [(seq, rid) for seq, rid, _ in queries])
    want_dead = {}
    want_live = {}
    for seq, rid, pc in queries:
        bucket = want_dead if answers[(seq, rid)] else want_live
        site = bucket.setdefault(pc, Counter())
        site[rid] += 1

    for pc, site in profile.sites.items():
        assert site.dead_hits == want_dead.get(pc, Counter()), f"pc {pc} dead mismatch"
        assert site.live_hits == want_live.get(pc, Counter()), f"pc {pc} live mismatch"
    assert queries, "degenerate trace: no value matches to cross-check"


def test_pipeline_accepts_generator_trace():
    """simulate()/prepare_stream run straight off a live generator and match
    the tuple-fed result exactly."""
    workload = make_workload("li")
    config = table1_config()

    eager_trace = FunctionalSimulator(workload.program, memory=workload.memory("ref")).run(
        max_instructions=BUDGET, collect_trace=True
    ).trace
    want = simulate(eager_trace, NoPredictor(), config, RecoveryScheme.SELECTIVE)

    _, stream = stream_program(workload.program, memory=workload.memory("ref"), max_instructions=BUDGET)
    got = simulate(stream, NoPredictor(), config, RecoveryScheme.SELECTIVE)
    assert got.cycles == want.cycles
    assert got.committed == want.committed

    # prepare_stream over a generator with a stateful predictor too.
    _, stream2 = stream_program(workload.program, memory=workload.memory("ref"), max_instructions=BUDGET)
    entries = prepare_stream(stream2, DynamicRVP(loads_only=False))
    eager_entries = prepare_stream(eager_trace, DynamicRVP(loads_only=False))
    assert len(entries) == len(eager_entries)
    assert [e.pred_correct for e in entries] == [e.pred_correct for e in eager_entries]


def test_observers_fire_during_streaming():
    workload = make_workload("go")
    seen = []
    sim = FunctionalSimulator(workload.program, memory=workload.memory("ref"))
    sim.add_observer(lambda record, state: seen.append(record.seq))
    records = list(sim.iter_run(max_instructions=500))
    assert seen == [record.seq for record in records]
