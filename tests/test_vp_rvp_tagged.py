"""Tagged-counter ablation plumbing tests (paper Section 7.2)."""

from repro.isa import Instruction, R, opcode
from repro.vp import DynamicRVP


def load(pc):
    return Instruction(op=opcode("ld"), dst=R[1], src1=R[2], imm=0, pc=pc)


def test_tagged_counter_requires_matching_pc():
    rvp = DynamicRVP(entries=64, tagged=True)
    for _ in range(8):
        rvp.update(5, True, 1)
    assert rvp.confident(5)
    # The aliasing pc (5 + 64) shares the counter but fails the tag.
    assert not rvp.confident(5 + 64)


def test_tagged_entry_stolen_on_alias_update():
    rvp = DynamicRVP(entries=64, tagged=True)
    for _ in range(8):
        rvp.update(5, True, 1)
    rvp.update(5 + 64, True, 2)  # steal
    assert not rvp.confident(5)
    assert not rvp.confident(5 + 64)  # new owner starts cold
    for _ in range(7):
        rvp.update(5 + 64, True, 2)
    assert rvp.confident(5 + 64)


def test_untagged_positive_interference():
    """The paper's point: two reusing instructions sharing an untagged
    counter help each other; with tags they evict each other."""
    untagged = DynamicRVP(entries=64, tagged=False)
    tagged = DynamicRVP(entries=64, tagged=True)
    for predictor in (untagged, tagged):
        for _ in range(8):  # interleaved updates from two aliasing pcs
            predictor.update(5, True, 1)
            predictor.update(5 + 64, True, 2)
    assert untagged.confident(5) and untagged.confident(5 + 64)
    assert not tagged.confident(5) and not tagged.confident(5 + 64)


def test_reset_clears_tags():
    rvp = DynamicRVP(entries=64, tagged=True)
    for _ in range(8):
        rvp.update(5, True, 1)
    rvp.reset()
    assert not rvp.confident(5)
    assert rvp.stored_value(5) is None
