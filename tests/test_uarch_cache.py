"""Cache hierarchy tests: LRU, fill latency, miss accounting."""

from repro.uarch import Cache, CacheConfig, MemoryHierarchy, table1_config


def small_cache(assoc=2, lines=4, penalty=10, parent=None):
    return Cache(CacheConfig(size_bytes=64 * lines * assoc, assoc=assoc, line_bytes=64, miss_penalty=penalty), parent)


def test_miss_then_hit():
    c = small_cache()
    assert c.access(0x1000, cycle=0) == 10
    assert c.access(0x1000, cycle=100) == 0
    assert c.misses == 1 and c.hits == 1


def test_same_line_words_share():
    c = small_cache()
    c.access(0x1000, cycle=0)
    assert c.access(0x1038, cycle=100) == 0  # same 64B line


def test_fill_latency_blocks_early_rehits():
    c = small_cache(penalty=10)
    assert c.access(0x1000, cycle=0) == 10  # fill arrives at cycle 10
    assert c.access(0x1008, cycle=4) == 6  # waits for the in-flight fill
    assert c.access(0x1010, cycle=10) == 0  # fill complete


def test_lru_eviction():
    c = small_cache(assoc=2, lines=1)  # one set, two ways
    c.access(0x0000, cycle=0)
    c.access(0x0040, cycle=0)  # second way (next line, same set since 1 set)
    c.access(0x0000, cycle=50)  # touch first -> second is LRU
    c.access(0x0080, cycle=50)  # evicts 0x0040
    assert c.access(0x0000, cycle=100) == 0
    assert c.access(0x0040, cycle=100) == 10  # was evicted


def test_l2_backs_l1():
    l2 = small_cache(assoc=2, lines=64, penalty=80)
    l1 = small_cache(assoc=2, lines=2, penalty=20, parent=l2)
    assert l1.access(0x1000, cycle=0) == 100  # L1 miss + L2 miss
    # Evict from the tiny L1 (same L1 set, different L2 sets) -> still in L2.
    l1.access(0x1080, cycle=200)
    l1.access(0x1100, cycle=200)
    l1.access(0x1180, cycle=200)
    l1.access(0x1200, cycle=200)
    assert l1.access(0x1000, cycle=1000) == 20  # L1 miss, L2 hit


def test_hierarchy_matches_table1():
    h = MemoryHierarchy(table1_config().l1i, table1_config().l1d, table1_config().l2)
    assert h.l1i.num_sets == 128 and h.l1d.num_sets == 128
    assert h.l2.num_sets == 4096
    assert h.data_latency(0x9000, cycle=0) == 100  # 20 + 80
    assert h.data_latency(0x9000, cycle=500) == 0
    # Instruction fetches are word-addressed pcs.
    assert h.fetch_latency(0, cycle=0) == 100
    assert h.fetch_latency(7, cycle=500) == 0  # same 64-byte line as pc 0


def test_miss_rate():
    c = small_cache()
    c.access(0x1000, 0)
    c.access(0x1000, 100)
    c.access(0x2000, 100)
    assert abs(c.miss_rate() - 2 / 3) < 1e-9


def test_bad_configs_rejected():
    import pytest

    with pytest.raises(ValueError):
        Cache(CacheConfig(1024, 4, 60, 10))  # line not power of two
    with pytest.raises(ValueError):
        Cache(CacheConfig(64, 4, 64, 10))  # too small for associativity
