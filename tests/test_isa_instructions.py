"""Instruction dataclass tests: reads/writes, rewriting, rendering."""

import pytest

from repro.isa import F, Instruction, R, opcode


def make(op, **kw):
    return Instruction(op=opcode(op), **kw)


def test_alu_reads_writes():
    inst = make("add", dst=R[3], src1=R[1], src2=R[2])
    assert inst.writes == R[3]
    assert inst.reads == (R[1], R[2])


def test_zero_register_write_is_discarded():
    inst = make("add", dst=R[31], src1=R[1], src2=R[2])
    assert inst.writes is None


def test_store_reads_base_and_data():
    inst = make("st", src1=R[2], src2=R[5], imm=16)
    assert inst.writes is None
    assert set(inst.reads) == {R[2], R[5]}
    assert inst.is_store and not inst.is_load


def test_load_fields():
    inst = make("ld", dst=R[4], src1=R[2], imm=8)
    assert inst.is_load and inst.writes == R[4] and inst.reads == (R[2],)


def test_branch_classification():
    inst = make("beq", src1=R[1], target="loop")
    assert inst.is_control and inst.is_conditional
    assert make("br", target="x").is_control
    assert not make("br", target="x").is_conditional
    assert make("halt").is_halt


def test_rewrite_registers():
    inst = make("add", dst=R[3], src1=R[1], src2=R[3])
    out = inst.rewrite_registers({R[3]: R[7]})
    assert out.dst == R[7] and out.src2 == R[7] and out.src1 == R[1]
    # Original untouched (instructions are immutable).
    assert inst.dst == R[3]


def test_rewrite_never_touches_zero():
    inst = make("add", dst=R[1], src1=R[31], imm=1)
    out = inst.rewrite_registers({R[31]: R[7]})
    assert out.src1 == R[31]


def test_rvp_marking_roundtrip():
    load = make("ld", dst=R[4], src1=R[2], imm=0)
    marked = load.as_rvp_marked()
    assert marked.op.name == "rvp_ld" and marked.op.rvp_marked
    assert marked.as_rvp_marked().op.name == "rvp_ld"  # idempotent
    assert marked.without_rvp_mark().op.name == "ld"
    fload = make("fld", dst=F[4], src1=R[2], imm=0)
    assert fload.as_rvp_marked().op.name == "rvp_fld"


def test_rvp_marking_rejects_non_loads():
    with pytest.raises(ValueError):
        make("add", dst=R[1], src1=R[2], imm=3).as_rvp_marked()


@pytest.mark.parametrize(
    "inst,text",
    [
        (make("add", dst=R[3], src1=R[1], src2=R[2]), "add r3, r1, r2"),
        (make("add", dst=R[3], src1=R[1], imm=5), "add r3, r1, #5"),
        (make("li", dst=R[3], imm=7), "li r3, #7"),
        (make("ld", dst=R[4], src1=R[2], imm=16), "ld r4, 16(r2)"),
        (make("st", src1=R[2], src2=R[5], imm=-8), "st r5, -8(r2)"),
        (make("beq", src1=R[1], target="loop"), "beq r1, loop"),
        (make("jsr", dst=R[26], target="fn"), "jsr r26, fn"),
        (make("ret", src1=R[26]), "ret r26"),
        (make("halt"), "halt"),
        (make("mov", dst=R[2], src1=R[1]), "mov r2, r1"),
    ],
)
def test_render(inst, text):
    assert inst.render() == text
    assert str(inst) == text
