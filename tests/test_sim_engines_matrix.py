"""Differential matrix across every execution tier, workload, and variant.

Each cell of the matrix runs one (workload, program variant) pair through
all four engines — ``reference`` (the oracle), ``decoded`` (the fast
interpreter), ``jit`` (trace-JIT superinstructions), and lane 0 of a
multi-lane ``batched`` run — and requires byte-identical final architectural
state: commit count, halt status, final pc, every integer and FP register,
and the full nonzero memory image.

The batched leg deliberately runs *multiple* lanes (lane 0 on the cell's
input, lane 1 on the train input) so lane masking and per-lane retirement
are actually exercised, then checks only lane 0 against the scalar engines.
"""

from __future__ import annotations

import pytest

from repro.core.session import SimSession
from repro.sim.batched import run_batch
from repro.sim.functional import FunctionalSimulator
from repro.workloads.suite import WORKLOAD_CLASSES, make_workload

MAX_INSTS = 3_000
VARIANTS = ("base", "srvp_dead", "realloc")


@pytest.fixture(scope="module")
def session():
    # One session for the whole matrix: variant construction (profiling for
    # srvp_dead, train artifacts for realloc) is paid once per workload.
    return SimSession()


def _snapshot(sim, result):
    state = sim.state
    return {
        "instructions": result.instructions,
        "halted": result.halted,
        "pc": state.pc,
        "int_regs": tuple(state.int_regs),
        "fp_regs": tuple(state.fp_regs),
        "memory": tuple(sorted((k, v) for k, v in sim.memory._words.items() if v)),
    }


def _run_scalar(program, memory, engine):
    sim = FunctionalSimulator(program, memory=memory, engine=engine)
    result = sim.run(max_instructions=MAX_INSTS)
    return _snapshot(sim, result)


def _run_batched_lane0(program, ref_memory, other_memory):
    lanes = run_batch(program, [ref_memory, other_memory], max_instructions=MAX_INSTS)
    lane = lanes[0]
    assert lane.error is None
    state = lane.state
    return {
        "instructions": lane.instructions,
        "halted": lane.halted,
        "pc": state.pc,
        "int_regs": tuple(state.int_regs),
        "fp_regs": tuple(state.fp_regs),
        "memory": tuple(sorted((k, v) for k, v in lane.memory._words.items() if v)),
    }


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("name", sorted(WORKLOAD_CLASSES))
def test_engine_matrix_cell(session, name, variant):
    program = session.program_variant(name, 1.0, MAX_INSTS, variant, None, 0.8)
    workload = make_workload(name)

    oracle = _run_scalar(program, workload.memory("ref"), "reference")
    assert oracle["instructions"] > 0

    for engine in ("decoded", "jit"):
        got = _run_scalar(program, workload.memory("ref"), engine)
        assert got == oracle, f"{name}/{variant}: {engine} diverged from reference"

    batched = _run_batched_lane0(program, workload.memory("ref"), workload.memory("train"))
    assert batched == oracle, f"{name}/{variant}: batched lane 0 diverged from reference"
