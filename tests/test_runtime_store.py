"""Tests for the content-addressed shared result store."""

import json
import os

import pytest

from repro.core.metrics import get_metrics, reset_metrics
from repro.runtime.store import (
    STORE_SCHEMA,
    ResultStore,
    StoreError,
    cell_store_key,
    result_digest,
)
from repro.uarch.config import table1_config


RESULT = {"ipc": 1.25, "workload": "li", "config": "lvp"}


@pytest.fixture(autouse=True)
def _fresh_metrics():
    reset_metrics()
    yield
    reset_metrics()


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------
def test_cell_store_key_is_stable_across_machine_encodings():
    machine = table1_config()
    from dataclasses import asdict

    key_obj = cell_store_key("li/lvp/selective", machine, 1500, 0.5, 1.0)
    key_dict = cell_store_key("li/lvp/selective", asdict(machine), 1500, 0.5, 1.0)
    assert key_obj == key_dict
    assert len(key_obj) == 64  # sha256 hex


def test_cell_store_key_varies_with_every_identity_field():
    machine = table1_config()
    base = cell_store_key("li/lvp/selective", machine, 1500, 0.5, 1.0)
    assert cell_store_key("go/lvp/selective", machine, 1500, 0.5, 1.0) != base
    assert cell_store_key("li/lvp/selective", machine, 2000, 0.5, 1.0) != base
    assert cell_store_key("li/lvp/selective", machine, 1500, 0.6, 1.0) != base
    assert cell_store_key("li/lvp/selective", machine, 1500, 0.5, 2.0) != base


def test_result_digest_is_order_insensitive():
    assert result_digest({"a": 1, "b": 2}) == result_digest({"b": 2, "a": 1})
    assert result_digest({"a": 1}) != result_digest({"a": 2})


# ----------------------------------------------------------------------
# Round trip and sharding
# ----------------------------------------------------------------------
def test_put_get_roundtrip(tmp_path):
    store = ResultStore(str(tmp_path / "store"), writer="t1")
    key = cell_store_key("li/lvp/selective", table1_config(), 1500, 0.5, 1.0)
    path = store.put(key, RESULT, cell_id="li/lvp/selective")
    assert os.path.exists(path)
    assert key in store
    assert store.get(key) == RESULT
    entry = json.loads(open(path).read())
    assert entry["schema"] == STORE_SCHEMA
    assert entry["writer"] == "t1"
    assert entry["digest"] == result_digest(RESULT)


def test_store_layout_is_two_level_sharded(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    key = "ab" + "0" * 62
    assert store.path_for(key) == os.path.join(store.root, "ab", f"{key}.json")
    store.put(key, RESULT)
    assert store.keys() == [key]
    assert len(store) == 1


def test_get_miss_counts_metric(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    assert store.get("ff" + "0" * 62) is None
    assert get_metrics().get("store.misses") == 1


# ----------------------------------------------------------------------
# Corruption: every defect is a miss, and the bad entry is discarded
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "corruptor",
    [
        lambda entry: "{ not json",
        lambda entry: json.dumps({**entry, "digest": "0" * 64}),
        lambda entry: json.dumps({**entry, "schema": "other/9"}),
        lambda entry: json.dumps({**entry, "key": "f" * 64}),
        lambda entry: json.dumps({**entry, "result": None}),
    ],
    ids=["bad-json", "digest-mismatch", "wrong-schema", "wrong-key", "no-result"],
)
def test_corrupt_entry_is_miss_and_unlinked(tmp_path, corruptor):
    store = ResultStore(str(tmp_path / "store"))
    key = cell_store_key("li/lvp/selective", table1_config(), 1500, 0.5, 1.0)
    path = store.put(key, RESULT)
    entry = json.loads(open(path).read())
    with open(path, "w") as handle:
        handle.write(corruptor(entry))

    assert store.get(key) is None
    assert get_metrics().get("store.corrupt") == 1
    assert not os.path.exists(path)  # slot repaired for the next writer
    # A fresh put heals the slot.
    store.put(key, RESULT)
    assert store.get(key) == RESULT


def test_last_writer_wins(tmp_path):
    store_a = ResultStore(str(tmp_path / "store"), writer="a")
    store_b = ResultStore(str(tmp_path / "store"), writer="b")
    key = "cd" + "0" * 62
    store_a.put(key, {"ipc": 1.0})
    store_b.put(key, {"ipc": 2.0})
    assert store_a.get(key) == {"ipc": 2.0}


def test_store_root_must_be_a_directory(tmp_path):
    blocker = tmp_path / "file"
    blocker.write_text("x")
    with pytest.raises((StoreError, OSError)):
        ResultStore(str(blocker))


# ----------------------------------------------------------------------
# Maintenance
# ----------------------------------------------------------------------
def test_prune_max_entries_evicts_oldest_first(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    keys = [f"{i:02x}" + "0" * 62 for i in range(4)]
    for i, key in enumerate(keys):
        path = store.put(key, {"ipc": float(i)})
        os.utime(path, (1000 + i, 1000 + i))  # deterministic age ordering
    removed = store.prune(max_entries=2)
    assert removed == 2
    assert store.keys() == sorted(keys[2:])
    assert get_metrics().get("store.evictions") == 2


def test_prune_max_age_removes_stale_entries(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    old_key, new_key = "aa" + "0" * 62, "bb" + "0" * 62
    old_path = store.put(old_key, {"ipc": 1.0})
    store.put(new_key, {"ipc": 2.0})
    os.utime(old_path, (0, 0))  # epoch-old
    removed = store.prune(max_age_s=3600.0)
    assert removed == 1
    assert store.keys() == [new_key]


def test_stats_reports_traffic_and_size(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    key = "ee" + "0" * 62
    store.put(key, RESULT)
    store.get(key)
    store.get("ff" + "0" * 62)
    stats = store.stats()
    assert stats == {"hits": 1, "misses": 1, "puts": 1, "corrupt": 0, "entries": 1}
