"""Throughput benchmarks for the execution core, with regression tracking.

``repro bench`` measures three layers of the stack on real workloads:

* **funcsim** — committed instructions per second for the reference
  interpreter (``step()``-equivalent loop), the decoded no-record fast path
  and the decoded trace path.  The decoded/reference ratio is the headline
  number the pre-decoded interpreter is accountable for.
* **engines** — the two upper execution tiers: trace-JIT committed
  instructions per second (``jit_minstr_s``) and batched lane-instruction
  throughput across a multi-lane batch (``batched_minstr_s_per_lane``,
  i.e. per-lane committed instructions summed over all lanes, divided by
  the batch wall time).  The batched series is what same-program campaign
  fusion is accountable for: it must beat the decoded fast path's
  single-lane rate by a wide margin to pay for lane masking.
* **pipeline** — cycle-engine throughput (simulated cycles per wall second)
  driving :func:`repro.uarch.pipeline.simulate` off a materialized trace, for
  both timing tiers: the reference per-cycle loop measured cold (stream
  preparation included, series-continuous with pre-fast-tier baselines) and
  the event-driven fast tier measured over a pre-built stream — the way
  campaign cells run it through the SimSession stream cache.
* **session** — cold-vs-warm :meth:`~repro.core.session.SimSession.ref_trace`
  latency, i.e. what the artifact caches buy a sweep.

Results are emitted as ``BENCH_<n>.json`` at the repository root, where ``n``
auto-increments past the largest committed baseline.  A run can be compared
against the previous baseline (or an explicit ``--baseline`` file): summary
throughput metrics that drop by more than the fail threshold make the run
fail (exit 1); drops between the warn and fail thresholds only warn.

Every timed section runs ``repeats`` times and keeps the *best* wall time —
the standard trick for interpreter benchmarks, since the minimum is the
least-noisy estimator of the true cost on a shared machine.
"""

from __future__ import annotations

import json
import math
import os
import platform
import re
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.session import SimSession
from ..sim.functional import FunctionalSimulator
from ..uarch.config import table1_config
from ..uarch.pipeline import simulate
from ..uarch.recovery import RecoveryScheme
from ..uarch.stream import prepare_stream
from ..vp.base import NoPredictor
from ..workloads.suite import WORKLOAD_CLASSES, make_workload

#: Schema identifier written into every BENCH file.
BENCH_SCHEMA = "repro-bench/1"

#: Filename pattern for committed baselines at the repo root.
_BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")

#: Summary metrics checked for regressions (all are higher-is-better).
REGRESSION_METRICS = (
    "fast_minstr_s_geomean",
    "trace_minstr_s_geomean",
    "pipeline_cycles_per_s_geomean",
    "pipeline_fast_cycles_per_s_geomean",
    # The two upper execution tiers.  Baselines that predate these series
    # (BENCH_1.json) simply skip them in compare_benchmarks, so the gate
    # only arms once a baseline carrying them is committed.
    "jit_minstr_s_geomean",
    "batched_minstr_s_per_lane_geomean",
)

#: Workloads used by ``--quick`` (one SPECint, one SPECfp).
QUICK_WORKLOADS = ("m88ksim", "mgrid")


@dataclass
class BenchConfig:
    """What to measure and how hard."""

    workloads: Sequence[str] = field(default_factory=lambda: tuple(WORKLOAD_CLASSES))
    max_instructions: int = 40_000
    repeats: int = 3
    lanes: int = 32
    quick: bool = False
    #: >0 enables the cProfile hook: top-N cumulative hot spots per benched
    #: engine (funcsim reference/decoded, pipeline reference/fast) collected
    #: on the first workload and attached to the payload under ``profiles``.
    profile_top: int = 0

    def validated(self) -> "BenchConfig":
        unknown = [name for name in self.workloads if name not in WORKLOAD_CLASSES]
        if unknown:
            raise ValueError(f"unknown workload(s): {', '.join(unknown)}")
        if self.max_instructions <= 0:
            raise ValueError("max_instructions must be positive")
        if self.repeats <= 0:
            raise ValueError("repeats must be positive")
        if self.lanes <= 0:
            raise ValueError("lanes must be positive")
        return self

    @classmethod
    def quick_config(cls) -> "BenchConfig":
        # Quick keeps the default lane count: the batched series' aggregate
        # rate scales with lanes, so a narrower quick batch would compare
        # apples-to-oranges against a full-run baseline and false-fail.
        return cls(workloads=QUICK_WORKLOADS, max_instructions=20_000, repeats=2, quick=True)


def _best_time(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``fn`` (min is the low-noise estimator)."""
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _geomean(values: Sequence[float]) -> Optional[float]:
    positives = [v for v in values if v > 0]
    if not positives:
        return None
    return math.exp(sum(math.log(v) for v in positives) / len(positives))


# ----------------------------------------------------------------------
# Individual benchmarks
# ----------------------------------------------------------------------
def _bench_funcsim(name: str, max_insts: int, repeats: int) -> Dict[str, float]:
    """Reference vs decoded-fast vs decoded-trace committed-instruction rates."""
    workload = make_workload(name)

    def run(engine: str, collect_trace: bool) -> int:
        # Fresh memory per run: the ref input is mutated by stores.
        program, memory = workload.build("ref")
        sim = FunctionalSimulator(program, memory=memory, engine=engine)
        return sim.run(max_instructions=max_insts, collect_trace=collect_trace).instructions

    instructions = run("decoded", False)
    ref_s = _best_time(lambda: run("reference", False), repeats)
    fast_s = _best_time(lambda: run("decoded", False), repeats)
    trace_s = _best_time(lambda: run("decoded", True), repeats)
    minstr = lambda seconds: instructions / seconds / 1e6 if seconds > 0 else 0.0
    ref_rate, fast_rate, trace_rate = minstr(ref_s), minstr(fast_s), minstr(trace_s)
    return {
        "instructions": instructions,
        "reference_minstr_s": ref_rate,
        "fast_minstr_s": fast_rate,
        "trace_minstr_s": trace_rate,
        "fast_speedup": fast_rate / ref_rate if ref_rate else 0.0,
        "trace_speedup": trace_rate / ref_rate if ref_rate else 0.0,
    }


def _bench_engines(name: str, max_insts: int, repeats: int, lanes: int) -> Dict[str, float]:
    """Trace-JIT and batched-tier throughput on one workload.

    ``jit_minstr_s`` is directly comparable to ``fast_minstr_s``: same
    single-lane run, same commit count, hot blocks stitched into compiled
    superinstructions.  ``batched_minstr_s_per_lane`` sums per-lane committed
    instructions across a ``lanes``-wide batch and divides by the batch wall
    time — the aggregate rate campaign fusion achieves per wall second.
    """
    from ..sim.batched import run_batch

    workload = make_workload(name)
    program, _ = workload.build("ref")

    def run_jit() -> int:
        # Fresh memory per run: the ref input is mutated by stores.
        _, memory = workload.build("ref")
        sim = FunctionalSimulator(program, memory=memory, engine="jit")
        return sim.run(max_instructions=max_insts).instructions

    instructions = run_jit()  # warms the per-Program JIT block cache
    jit_s = _best_time(run_jit, repeats)
    jit_rate = instructions / jit_s / 1e6 if jit_s > 0 else 0.0

    best_s = math.inf
    lane_instructions = 0
    for _ in range(repeats):
        memories = [workload.build("ref")[1] for _ in range(lanes)]
        start = time.perf_counter()
        lanes_out = run_batch(program, memories, max_instructions=max_insts)
        best_s = min(best_s, time.perf_counter() - start)
        lane_instructions = sum(lane.instructions for lane in lanes_out)
    batched_rate = lane_instructions / best_s / 1e6 if best_s > 0 else 0.0

    return {
        "instructions": instructions,
        "jit_minstr_s": jit_rate,
        "lanes": lanes,
        "lane_instructions": lane_instructions,
        "batched_minstr_s_per_lane": batched_rate,
    }


def _bench_pipeline(name: str, max_insts: int, repeats: int) -> Dict[str, float]:
    """Cycle-engine throughput over a materialized trace (no-predict baseline).

    ``cycles_per_s`` is the reference tier measured cold (stream preparation
    inside the timed region, exactly how pre-fast-tier baselines measured
    it); ``fast_cycles_per_s`` is the event-driven tier over a pre-built
    stream — what a campaign cell pays after the SimSession stream cache has
    warmed.  The two runs must produce identical stats, so the bench itself
    is a cheap differential gate.
    """
    workload = make_workload(name)
    program, memory = workload.build("ref")
    trace = FunctionalSimulator(program, memory=memory).run(
        max_instructions=max_insts, collect_trace=True
    ).trace
    config = table1_config()
    stats = simulate(trace, NoPredictor(), config, RecoveryScheme.SELECTIVE, engine="reference")
    seconds = _best_time(
        lambda: simulate(trace, NoPredictor(), config, RecoveryScheme.SELECTIVE, engine="reference"),
        repeats,
    )
    stream = prepare_stream(trace, NoPredictor())
    fast_stats = simulate(
        None, NoPredictor(), config, RecoveryScheme.SELECTIVE, engine="fast", stream=stream
    )
    if fast_stats != stats:
        raise RuntimeError(f"fast/reference stats diverged on {name}")
    fast_seconds = _best_time(
        lambda: simulate(
            None, NoPredictor(), config, RecoveryScheme.SELECTIVE, engine="fast", stream=stream
        ),
        repeats,
    )
    rate = stats.cycles / seconds if seconds > 0 else 0.0
    fast_rate = stats.cycles / fast_seconds if fast_seconds > 0 else 0.0
    return {
        "cycles": stats.cycles,
        "cycles_per_s": rate,
        "wall_s": seconds,
        "fast_cycles_per_s": fast_rate,
        "fast_wall_s": fast_seconds,
        "fast_speedup": fast_rate / rate if rate else 0.0,
    }


def _bench_session(name: str, max_insts: int) -> Dict[str, float]:
    """Cold vs warm ref-trace latency through a fresh :class:`SimSession`."""
    session = SimSession()
    start = time.perf_counter()
    session.ref_trace(name, 1.0, max_insts)
    cold_s = time.perf_counter() - start
    start = time.perf_counter()
    session.ref_trace(name, 1.0, max_insts)
    warm_s = time.perf_counter() - start
    return {
        "cold_s": cold_s,
        "warm_s": warm_s,
        "warm_speedup": cold_s / warm_s if warm_s > 0 else 0.0,
        "cached_entries": sum(session.cache_stats().values()),
    }


# ----------------------------------------------------------------------
# Profiling hook (``repro bench --profile``)
# ----------------------------------------------------------------------
def _profile_hotspots(fn: Callable[[], object], top: int) -> List[Dict[str, object]]:
    """Top-``top`` cumulative-time hot spots of one ``fn()`` call."""
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        fn()
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    rows: List[Dict[str, object]] = []
    ordered = sorted(stats.stats.items(), key=lambda item: item[1][3], reverse=True)
    for (filename, lineno, func), (cc, nc, tt, ct, _callers) in ordered[:top]:
        rows.append(
            {
                "where": f"{os.path.basename(filename)}:{lineno}({func})",
                "ncalls": nc,
                "tottime_s": round(tt, 6),
                "cumtime_s": round(ct, 6),
            }
        )
    return rows


def _profile_engines(name: str, max_insts: int, top: int) -> Dict[str, List[Dict[str, object]]]:
    """Hot-spot attribution for every benched engine, on one workload."""
    workload = make_workload(name)

    def funcsim(engine: str) -> Callable[[], object]:
        def run() -> object:
            program, memory = workload.build("ref")
            sim = FunctionalSimulator(program, memory=memory, engine=engine)
            return sim.run(max_instructions=max_insts)

        return run

    program, memory = workload.build("ref")
    trace = FunctionalSimulator(program, memory=memory).run(
        max_instructions=max_insts, collect_trace=True
    ).trace
    config = table1_config()
    stream = prepare_stream(trace, NoPredictor())
    return {
        "funcsim_reference": _profile_hotspots(funcsim("reference"), top),
        "funcsim_decoded": _profile_hotspots(funcsim("decoded"), top),
        "pipeline_reference": _profile_hotspots(
            lambda: simulate(trace, NoPredictor(), config, RecoveryScheme.SELECTIVE, engine="reference"),
            top,
        ),
        "pipeline_fast": _profile_hotspots(
            lambda: simulate(
                None, NoPredictor(), config, RecoveryScheme.SELECTIVE, engine="fast", stream=stream
            ),
            top,
        ),
    }


# ----------------------------------------------------------------------
# Campaign
# ----------------------------------------------------------------------
def run_benchmarks(
    config: BenchConfig, progress: Optional[Callable[[str], None]] = None
) -> Dict[str, object]:
    """Run the full campaign and return the BENCH payload (sans file metadata)."""
    config = config.validated()
    note = progress or (lambda message: None)
    funcsim: Dict[str, Dict[str, float]] = {}
    engines: Dict[str, Dict[str, float]] = {}
    pipeline: Dict[str, Dict[str, float]] = {}
    session: Dict[str, Dict[str, float]] = {}
    for name in config.workloads:
        note(f"bench {name}: funcsim")
        funcsim[name] = _bench_funcsim(name, config.max_instructions, config.repeats)
        note(f"bench {name}: engines")
        engines[name] = _bench_engines(
            name, config.max_instructions, config.repeats, config.lanes
        )
        note(f"bench {name}: pipeline")
        pipeline[name] = _bench_pipeline(name, config.max_instructions, config.repeats)
        note(f"bench {name}: session")
        session[name] = _bench_session(name, config.max_instructions)

    summary = {
        "reference_minstr_s_geomean": _geomean([r["reference_minstr_s"] for r in funcsim.values()]),
        "fast_minstr_s_geomean": _geomean([r["fast_minstr_s"] for r in funcsim.values()]),
        "trace_minstr_s_geomean": _geomean([r["trace_minstr_s"] for r in funcsim.values()]),
        "fast_speedup_geomean": _geomean([r["fast_speedup"] for r in funcsim.values()]),
        "trace_speedup_geomean": _geomean([r["trace_speedup"] for r in funcsim.values()]),
        "jit_minstr_s_geomean": _geomean([r["jit_minstr_s"] for r in engines.values()]),
        "batched_minstr_s_per_lane_geomean": _geomean(
            [r["batched_minstr_s_per_lane"] for r in engines.values()]
        ),
        "pipeline_cycles_per_s_geomean": _geomean([r["cycles_per_s"] for r in pipeline.values()]),
        "pipeline_fast_cycles_per_s_geomean": _geomean(
            [r["fast_cycles_per_s"] for r in pipeline.values()]
        ),
        "pipeline_fast_speedup_geomean": _geomean([r["fast_speedup"] for r in pipeline.values()]),
    }
    profiles: Dict[str, List[Dict[str, object]]] = {}
    if config.profile_top > 0 and config.workloads:
        note(f"bench {config.workloads[0]}: profiling engines")
        profiles = _profile_engines(
            config.workloads[0], config.max_instructions, config.profile_top
        )
    return {
        "schema": BENCH_SCHEMA,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": sys.platform,
            "machine": platform.machine(),
        },
        "config": {
            "quick": config.quick,
            "workloads": list(config.workloads),
            "max_instructions": config.max_instructions,
            "repeats": config.repeats,
            "lanes": config.lanes,
        },
        "results": {
            "funcsim": funcsim,
            "engines": engines,
            "pipeline": pipeline,
            "session": session,
        },
        "summary": summary,
        **({"profiles": profiles} if profiles else {}),
    }


# ----------------------------------------------------------------------
# Baselines and regression comparison
# ----------------------------------------------------------------------
def find_latest_bench(root: str) -> Optional[str]:
    """Path of the highest-numbered ``BENCH_<n>.json`` under ``root``, if any."""
    best_n, best_path = -1, None
    try:
        names = os.listdir(root)
    except OSError:
        return None
    for name in names:
        match = _BENCH_RE.match(name)
        if match and int(match.group(1)) > best_n:
            best_n, best_path = int(match.group(1)), os.path.join(root, name)
    return best_path


def next_bench_path(root: str) -> str:
    """``BENCH_<n+1>.json`` one past the highest existing baseline (min n=1)."""
    latest = find_latest_bench(root)
    if latest is None:
        return os.path.join(root, "BENCH_1.json")
    n = int(_BENCH_RE.match(os.path.basename(latest)).group(1))
    return os.path.join(root, f"BENCH_{n + 1}.json")


def compare_benchmarks(
    current: Dict[str, object],
    baseline: Dict[str, object],
    fail_threshold: float = 0.30,
    warn_threshold: float = 0.10,
) -> List[Dict[str, object]]:
    """Compare summary throughput metrics against a baseline payload.

    Returns one entry per checked metric with the fractional ``drop``
    ((baseline − current) / baseline; negative means *faster*) and a
    ``status`` of ``ok`` / ``warn`` / ``fail``.  A metric measured now but
    absent from the baseline gets status ``missing`` (never a failure): the
    gate for a new series only arms once a baseline carrying it is
    committed.  Metrics absent from the current run are skipped entirely —
    an old-schema baseline never fails a new run.
    """
    cur_summary = current.get("summary") or {}
    base_summary = baseline.get("summary") or {}
    report: List[Dict[str, object]] = []
    for metric in REGRESSION_METRICS:
        cur, base = cur_summary.get(metric), base_summary.get(metric)
        if not isinstance(cur, (int, float)):
            continue
        if not isinstance(base, (int, float)) or base <= 0:
            report.append(
                {"metric": metric, "baseline": None, "current": cur, "drop": None,
                 "status": "missing"}
            )
            continue
        drop = (base - cur) / base
        status = "ok"
        if drop > fail_threshold:
            status = "fail"
        elif drop > warn_threshold:
            status = "warn"
        report.append(
            {"metric": metric, "baseline": base, "current": cur, "drop": drop, "status": status}
        )
    return report


def load_bench(path: str) -> Dict[str, object]:
    """Load a BENCH JSON file, validating the schema tag."""
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"{path}: not a {BENCH_SCHEMA} file (schema={payload.get('schema')!r})")
    return payload


def write_bench(path: str, payload: Dict[str, object]) -> None:
    """Persist a BENCH payload atomically (temp + rename + fsync).

    A crashed or SIGKILLed bench run therefore never leaves a truncated
    ``BENCH_<n>.json`` for the *next* run to trip over as its baseline.
    """
    from ..runtime.atomic import atomic_write_json

    atomic_write_json(path, payload)
