"""Performance benchmark harness for the execution core (``repro bench``)."""

from .harness import (
    BENCH_SCHEMA,
    BenchConfig,
    compare_benchmarks,
    find_latest_bench,
    load_bench,
    next_bench_path,
    run_benchmarks,
    write_bench,
)

__all__ = [
    "BENCH_SCHEMA",
    "BenchConfig",
    "compare_benchmarks",
    "find_latest_bench",
    "load_bench",
    "next_bench_path",
    "run_benchmarks",
    "write_bench",
]
