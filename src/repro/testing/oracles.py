"""Differential oracles over generated programs.

Six oracle families, each a callable ``oracle(case)`` registered in
:data:`ORACLES` that raises :class:`OracleViolation` on failure:

``trace-equivalence``
    The eager (``run(collect_trace=True)``) and streaming (``iter_run``)
    executors must produce identical record sequences, final architectural
    state, memory and halt status — and both must match the retained
    reference interpreter (``engine="reference"``, the pre-decode ``step()``
    loop) bit for bit, pinning the decoded execution core to its oracle.
    Two further legs pin the PR-8 execution tiers: the trace-JIT
    (``engine="jit"``) must match the reference on a full run *and* match
    the decoded engine on a truncated-budget run that forces guard exits
    mid-superinstruction, and the batched vectorized tier (``run_batch``)
    must reproduce the reference on lane 0 while a deliberately perturbed
    lane 1 (one flipped memory word, forcing lane divergence) matches a
    decoded run over the identically perturbed memory — fault type, message,
    pc and commit count included.

``pass-preservation``
    Every verifier-guarded compiler pass (marking, insertion, stride,
    reallocation) must leave observable semantics unchanged under
    no-speculation execution: identical memory, identical per-instruction
    results/addresses/branch outcomes, and — for the insertion-based passes —
    a committed-instruction count that accounts for every inserted
    instruction (a silently dropped insertion is a detected defect, not a
    smaller program).

``predictor-sanity``
    Confidence state never escapes its encoding (resetting counters stay in
    ``[0, COUNTER_MAX]`` for RVP, LVP and the Gabbay predictor), and static
    RVP and dynamic RVP agree exactly on per-pc correctly-predicted counts
    when trained on the same underlying value stream.

``recovery-invariant``
    All three recovery schemes commit the complete trace; reissue replays at
    least as much as selective reissue; refetch squashes actually refetch;
    and no predictor means no recovery activity anywhere.

``pipeline-equivalence``
    The event-driven fast timing tier (``engine="fast"``) must reproduce the
    reference per-cycle pipeline loop's complete ``SimStats`` — every
    counter, including stall attribution and summed IQ occupancy — across
    {lvp, rvp, stride} × all three recovery schemes.  The fast tier's
    test-only switch (``repro.uarch.fast._TEST_SKIP_EVENT``) seeds a
    skip-accounting defect the self-tests use to prove this family detects
    broken cycle skipping.

``absint-soundness``
    No verdict of the abstract interpreter (:mod:`repro.analysis.absint`) is
    contradicted by the committed trace: every produced value lies in its
    proven interval, proven-one-way branches go that way, interval-pruned
    blocks never execute, constant address expressions match the effective
    address, and the symbolic reuse classes (SAME / LAST_VALUE / sibling
    DEAD) hold dynamically while execution stays inside the classified
    loop.  This is the *only* soundness guarantee the absint layer claims —
    in particular the allocation-site no-alias model is an assumption this
    oracle exists to police.

Helper entry points (``_eager_run`` / ``_streaming_run`` / ``_reference_run``
/ ``_simulate`` / ``_train_predictor``) are deliberate seams: the mutation self-tests
monkeypatch them to seed defects and prove each family actually detects
something.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..analysis.diagnostics import VerificationError
from ..compiler.insertion import insert_after
from ..analysis.effects import explicit_defs, explicit_uses
from ..compiler.marking import MARKING_LEVELS, mark_static_rvp
from ..compiler.realloc import reallocate
from ..compiler.stride_pass import apply_stride_pass
from ..isa.instructions import Instruction
from ..isa.opcodes import MASK64, OpKind, opcode, to_signed
from ..isa.program import Program
from ..profiling.critpath import CriticalPathBuilder
from ..profiling.deadness import reg_id
from ..profiling.reuse import ReuseProfile
from ..sim.functional import FunctionalSimulator, RunResult, SimulationError, run_program, stream_program
from ..sim.memory import Memory
from ..sim.trace import TraceRecord
from ..uarch.config import table1_config
from ..uarch.recovery import RecoveryScheme
from ..uarch.pipeline import simulate
from ..vp.base import NoPredictor, SourceKind, ValuePredictor
from ..vp.confidence import COUNTER_MAX
from ..vp.gabbay import GabbayRegisterPredictor
from ..vp.lvp import LastValuePredictor
from ..vp.rvp import DynamicRVP
from ..vp.static_rvp import StaticRVP
from ..vp.stride import StridePredictor
from .generator import GeneratedCase

#: Committed-instruction budget per functional run of a generated case.
MAX_INSTRUCTIONS = 50_000
#: Profile threshold/min-count tuned so small generated loops produce hints.
PROFILE_THRESHOLD = 0.6
PROFILE_MIN_COUNT = 2


class OracleViolation(AssertionError):
    """A differential oracle found a divergence."""

    def __init__(self, oracle: str, message: str) -> None:
        super().__init__(f"[{oracle}] {message}")
        self.oracle = oracle
        self.message = message


class CaseInvalid(RuntimeError):
    """The case cannot be judged (did not halt in budget / malformed).

    Raised instead of a violation so the fuzz runner and the shrinker can
    discard the candidate rather than reporting a false positive.
    """


def _require(condition: bool, oracle: str, message: str) -> None:
    if not condition:
        raise OracleViolation(oracle, message)


# ----------------------------------------------------------------------
# Execution seams (monkeypatched by the mutation self-tests)
# ----------------------------------------------------------------------
def _eager_run(program: Program, memory) -> RunResult:
    return run_program(program, memory=memory, max_instructions=MAX_INSTRUCTIONS, collect_trace=True)


def _streaming_run(program: Program, memory):
    sim, records = stream_program(program, memory=memory, max_instructions=MAX_INSTRUCTIONS)
    trace = list(records)
    return sim, trace


def _reference_run(program: Program, memory) -> RunResult:
    sim = FunctionalSimulator(program, memory=memory, engine="reference")
    return sim.run(max_instructions=MAX_INSTRUCTIONS, collect_trace=True)


def _engine_run(program: Program, memory, engine: str, max_instructions: int):
    """Run one engine, capturing the fault instead of propagating it.

    Returns ``(sim, result, error)`` where ``result`` is ``sim.last_result``
    when the run faulted — the tier contracts require faulting runs to leave
    the same partial state behind as the decoded engine.
    """
    sim = FunctionalSimulator(program, memory=memory, engine=engine)
    error: Optional[BaseException] = None
    try:
        result = sim.run(max_instructions=max_instructions)
    except Exception as exc:
        error = exc
        result = sim.last_result
    return sim, result, error


def _perturbed_memory(case: GeneratedCase, reference: RunResult):
    """The case's memory with the first word the program *reads* inverted.

    Feeding this as a sibling batch lane forces data divergence (and usually
    control divergence) against the pristine lane, exercising the batched
    tier's masking machinery on every fuzz case.  Targeting the first loaded
    address (from the reference trace) rather than an arbitrary word is what
    makes the perturbation reliably observable.
    """
    memory = case.memory()
    index = None
    for record in reference.trace or ():
        if record.inst.op.is_load and record.addr is not None:
            index = record.addr >> 3
            break
    if index is None:
        words = getattr(memory, "_words", {})
        index = min(words) if words else 0
    memory.store_word_index(index, memory.load_word_index(index) ^ MASK64)
    return memory


def _simulate(trace: Sequence[TraceRecord], predictor: ValuePredictor, recovery: RecoveryScheme):
    return simulate(trace, predictor, table1_config(), recovery)


def _base_run(case: GeneratedCase) -> RunResult:
    """The reference no-speculation run; a non-halting case is unjudgeable."""
    try:
        result = _eager_run(case.program, case.memory())
    except SimulationError as exc:
        raise CaseInvalid(f"functional run failed: {exc}") from None
    if not result.halted:
        raise CaseInvalid(f"did not halt within {MAX_INSTRUCTIONS} instructions")
    return result


def _projection(record: TraceRecord) -> Tuple:
    """The register-allocation-independent observables of one record."""
    return (record.pc, record.next_pc, record.result, record.addr, record.store_value, record.taken)


# ----------------------------------------------------------------------
# Oracle family 1: eager vs streaming trace equivalence
# ----------------------------------------------------------------------
def check_trace_equivalence(case: GeneratedCase) -> None:
    name = "trace-equivalence"
    eager = _base_run(case)
    sim, stream_trace = _streaming_run(case.program, case.memory())
    _require(
        len(eager.trace) == len(stream_trace),
        name,
        f"eager committed {len(eager.trace)} records, streaming {len(stream_trace)}",
    )
    for expected, got in zip(eager.trace, stream_trace):
        _require(expected == got, name, f"record diverges at seq {expected.seq}: {expected} != {got}")
    _require(eager.state.state_equal(sim.state), name, "final architectural register state diverges")
    _require(eager.memory == sim.memory, name, "final memory diverges")
    last = sim.last_result
    _require(last is not None and last.halted == eager.halted, name, "halt status diverges")
    _require(last.instructions == eager.instructions, name, "instruction counts diverge")

    # Third leg: the decoded execution core against the retained reference
    # interpreter — identical records, state, memory and commit counts.
    reference = _reference_run(case.program, case.memory())
    _require(
        len(eager.trace) == len(reference.trace),
        name,
        f"decoded committed {len(eager.trace)} records, reference {len(reference.trace)}",
    )
    for expected, got in zip(reference.trace, eager.trace):
        _require(
            expected == got,
            name,
            f"decoded record diverges from reference at seq {expected.seq}: {expected} != {got}",
        )
    _require(
        eager.state.state_equal(reference.state), name, "decoded final state diverges from reference"
    )
    _require(eager.memory == reference.memory, name, "decoded final memory diverges from reference")
    _require(
        (reference.halted, reference.instructions) == (eager.halted, eager.instructions),
        name,
        "decoded halt/commit-count diverges from reference",
    )

    # Fourth leg: the trace-JIT tier.  A full run must match the reference;
    # a half-budget rerun must match the decoded engine at the same commit
    # count — truncation lands mid-execution, so the JIT's budget guard has
    # to fall back to single decoded steps instead of overcommitting a
    # superinstruction (the seeded-guard-defect self-test lives here).
    # Generated cases are small (tens of commits), so the hotness threshold
    # is pinned to 1 for the leg: every multi-instruction block compiles and
    # the guard discipline is exercised on every case, not just long ones.
    from ..sim import jit as jit_tier

    saved_threshold = jit_tier.JIT_THRESHOLD
    jit_tier.JIT_THRESHOLD = 1
    try:
        _jit_leg(case, reference, name)
    finally:
        jit_tier.JIT_THRESHOLD = saved_threshold

    # Fifth leg: the batched vectorized tier.
    _batched_leg(case, reference, name)


def _jit_leg(case: GeneratedCase, reference: RunResult, name: str) -> None:
    _, jit_full, jit_err = _engine_run(case.program, case.memory(), "jit", MAX_INSTRUCTIONS)
    _require(jit_err is None, name, f"jit engine faulted on a clean case: {jit_err!r}")
    _require(
        (jit_full.halted, jit_full.instructions) == (reference.halted, reference.instructions),
        name,
        f"jit halt/commit-count diverges from reference: "
        f"{(jit_full.halted, jit_full.instructions)} != {(reference.halted, reference.instructions)}",
    )
    _require(jit_full.state.state_equal(reference.state), name, "jit final state diverges from reference")
    _require(jit_full.memory == reference.memory, name, "jit final memory diverges from reference")

    budget = max(1, reference.instructions // 2)
    dec_sim, dec_cut, dec_cut_err = _engine_run(case.program, case.memory(), "decoded", budget)
    jit_sim, jit_cut, jit_cut_err = _engine_run(case.program, case.memory(), "jit", budget)
    _require(
        (dec_cut_err is None) == (jit_cut_err is None),
        name,
        f"truncated jit fault status diverges from decoded: {jit_cut_err!r} vs {dec_cut_err!r}",
    )
    _require(
        jit_cut.instructions == dec_cut.instructions,
        name,
        f"truncated jit committed {jit_cut.instructions}, decoded {dec_cut.instructions} "
        f"(budget {budget}): guard exit overcommitted a superinstruction",
    )
    _require(
        jit_sim.state.pc == dec_sim.state.pc,
        name,
        f"truncated jit stopped at pc {jit_sim.state.pc}, decoded at {dec_sim.state.pc}",
    )
    _require(jit_cut.state.state_equal(dec_cut.state), name, "truncated jit state diverges from decoded")
    _require(jit_cut.memory == dec_cut.memory, name, "truncated jit memory diverges from decoded")

#: Companion program for the batched leg: one data-dependent branch plus
#: disjoint stores per side.  Generated programs are verifier-clean counted
#: loops whose control flow is input-independent, so two lanes of a
#: generated case can data-diverge but never *control*-diverge; this probe
#: is what actually drives the two batch lanes down different paths and
#: exercises the divergence-masking machinery (and its mutation seam) on
#: every fuzz case.
_DIVERGENCE_PROBE_TEXT = """
    ld r1, 0x0(r31)
    li r2, #0
    li r3, #0
    bne r1, taken
    li r2, #1111
    st r2, 0x8(r31)
    br done
taken:
    li r3, #2222
    st r3, 0x10(r31)
done:
    add r4, r2, r3
    mul r5, r1, r4
    halt
"""


def _divergence_probe() -> Program:
    from ..isa.assembler import assemble

    return assemble(_DIVERGENCE_PROBE_TEXT, name="divergence-probe")


def _batched_leg(case: GeneratedCase, reference: RunResult, name: str) -> None:
    """Lane 0 re-runs the pristine case and must reproduce the reference;
    lane 1 runs a deliberately perturbed memory image (forcing divergence
    between the lanes) and must match a decoded run over the identically
    perturbed image — fault type/message/pc included when the perturbation
    makes the program crash."""
    from ..sim.batched import run_batch

    lane0, lane1 = run_batch(
        case.program,
        [case.memory(), _perturbed_memory(case, reference)],
        max_instructions=MAX_INSTRUCTIONS,
    )
    _require(lane0.error is None, name, f"batched lane 0 faulted on a clean case: {lane0.error!r}")
    _require(
        (lane0.halted, lane0.instructions) == (reference.halted, reference.instructions),
        name,
        f"batched lane 0 halt/commit-count diverges from reference: "
        f"{(lane0.halted, lane0.instructions)} != {(reference.halted, reference.instructions)}",
    )
    _require(
        lane0.state.state_equal(reference.state), name, "batched lane 0 state diverges from reference"
    )
    _require(lane0.memory == reference.memory, name, "batched lane 0 memory diverges from reference")

    pert_sim, pert_res, pert_err = _engine_run(
        case.program, _perturbed_memory(case, reference), "decoded", MAX_INSTRUCTIONS
    )
    _require(
        type(lane1.error) is type(pert_err) and str(lane1.error) == str(pert_err),
        name,
        f"batched lane 1 fault diverges from decoded on perturbed memory: "
        f"{lane1.error!r} vs {pert_err!r}",
    )
    _require(
        (lane1.halted, lane1.instructions) == (pert_res.halted, pert_res.instructions),
        name,
        f"batched lane 1 halt/commit-count diverges from decoded on perturbed memory: "
        f"{(lane1.halted, lane1.instructions)} != {(pert_res.halted, pert_res.instructions)}",
    )
    _require(
        lane1.state.pc == pert_sim.state.pc,
        name,
        f"batched lane 1 stopped at pc {lane1.state.pc}, decoded at {pert_sim.state.pc}",
    )
    _require(
        lane1.state.state_equal(pert_sim.state), name, "batched lane 1 state diverges from decoded"
    )
    _require(lane1.memory == pert_sim.memory, name, "batched lane 1 memory diverges from decoded")

    # Divergence probe: two lanes forced down opposite sides of a branch
    # (generated cases cannot control-diverge — see _DIVERGENCE_PROBE_TEXT).
    probe = _divergence_probe()
    probe_values = (0, (case.seed & MASK64) | 1)
    memories = []
    for value in probe_values:
        memory = Memory()
        memory.store_word_index(0, value)
        memories.append(memory)
    probe_lanes = run_batch(probe, memories, max_instructions=64)
    for which, (value, lane) in enumerate(zip(probe_values, probe_lanes)):
        solo_memory = Memory()
        solo_memory.store_word_index(0, value)
        solo_sim, solo_res, solo_err = _engine_run(probe, solo_memory, "decoded", 64)
        _require(
            lane.error is None and solo_err is None,
            name,
            f"divergence probe lane {which} faulted: {lane.error!r} / {solo_err!r}",
        )
        _require(
            (lane.halted, lane.instructions) == (solo_res.halted, solo_res.instructions)
            and lane.state.state_equal(solo_sim.state)
            and lane.memory == solo_sim.memory,
            name,
            f"divergence probe lane {which} diverges from decoded "
            f"(lane-mask handling is broken): committed {lane.instructions} "
            f"vs {solo_res.instructions}",
        )


# ----------------------------------------------------------------------
# Oracle family 2: compiler-pass semantic preservation
# ----------------------------------------------------------------------
def _same_shape_equivalent(name: str, label: str, base: RunResult, transformed: Program, case: GeneratedCase) -> RunResult:
    """For 1:1 rewrites (marking, realloc): identical projected trace + memory."""
    try:
        after = _eager_run(transformed, case.memory())
    except SimulationError as exc:
        raise OracleViolation(name, f"{label}: transformed program crashed: {exc!r}")
    _require(after.halted, name, f"{label}: transformed program did not halt")
    _require(
        after.instructions == base.instructions,
        name,
        f"{label}: committed {after.instructions} vs base {base.instructions}",
    )
    for expected, got in zip(base.trace, after.trace):
        _require(
            _projection(expected) == _projection(got),
            name,
            f"{label}: observable divergence at seq {expected.seq}: "
            f"{_projection(expected)} != {_projection(got)}",
        )
    _require(after.memory == base.memory, name, f"{label}: final memory diverges")
    return after


def _insertion_diff(name: str, label: str, old: Program, new: Program) -> Tuple[Dict[int, int], List[int]]:
    """Recover (pc_map, insertion sites) from an insertion-only rewrite.

    Returns ``old pc -> new pc`` plus the list of old pcs each inserted
    instruction was placed after.  Relies on inserted instructions being
    distinguishable from the originals (self-moves / shadow-register adds,
    which the generator never emits).
    """

    def key(inst: Instruction) -> Tuple:
        return (inst.op.name, inst.dst, inst.src1, inst.src2, inst.imm, inst.target)

    pc_map: Dict[int, int] = {}
    sites: List[int] = []
    i = 0
    for j in range(len(new)):
        if i < len(old) and key(new[j]) == key(old[i]):
            pc_map[i] = j
            i += 1
        else:
            _require(i > 0, name, f"{label}: instruction inserted before program start")
            sites.append(i - 1)
    _require(i == len(old), name, f"{label}: rewrite dropped {len(old) - i} original instruction(s)")
    return pc_map, sites


def _inserted_equivalent(
    name: str,
    label: str,
    base: RunResult,
    old: Program,
    new: Program,
    case: GeneratedCase,
    dyn_counts: Counter,
    expected_sites: Optional[Sequence[int]] = None,
    expected_count: Optional[int] = None,
) -> RunResult:
    """For insertion passes: accounted committed count + projected equality.

    ``expected_sites`` (exact) or ``expected_count`` (at least) pin the diff
    against what the pass was *asked* to insert — a pass that silently drops
    an insertion produces a self-consistent smaller program, so the recovered
    diff alone cannot catch it.
    """
    pc_map, sites = _insertion_diff(name, label, old, new)
    if expected_sites is not None:
        _require(
            sorted(sites) == sorted(expected_sites),
            name,
            f"{label}: inserted after pcs {sorted(sites)}, requested {sorted(expected_sites)}",
        )
    if expected_count is not None:
        _require(
            len(sites) == expected_count,
            name,
            f"{label}: {len(sites)} insertion(s) found, pass reported {expected_count}",
        )
    expected_extra = sum(dyn_counts[site] for site in sites)
    try:
        after = _eager_run(new, case.memory())
    except SimulationError as exc:
        raise OracleViolation(name, f"{label}: transformed program crashed: {exc!r}")
    _require(after.halted, name, f"{label}: transformed program did not halt")
    _require(
        after.instructions == base.instructions + expected_extra,
        name,
        f"{label}: committed {after.instructions}, expected "
        f"{base.instructions} + {expected_extra} inserted executions",
    )
    _require(after.memory == base.memory, name, f"{label}: final memory diverges")
    inverse = {new_pc: old_pc for old_pc, new_pc in pc_map.items()}
    originals = [r for r in after.trace if r.pc in inverse]
    _require(
        len(originals) == len(base.trace),
        name,
        f"{label}: {len(originals)} original-instruction commits vs base {len(base.trace)}",
    )
    for expected, got in zip(base.trace, originals):
        _require(
            (inverse[got.pc], got.result, got.addr, got.store_value, got.taken)
            == (expected.pc, expected.result, expected.addr, expected.store_value, expected.taken),
            name,
            f"{label}: observable divergence at base seq {expected.seq}",
        )
    return after


def _explicit_regs(program: Program):
    touched = set()
    for inst in program:
        touched |= set(explicit_defs(inst)) | set(explicit_uses(inst))
    return touched


def check_pass_preservation(case: GeneratedCase) -> None:
    name = "pass-preservation"
    base = _base_run(case)
    program = case.program
    dyn_counts = Counter(record.pc for record in base.trace)
    profile = ReuseProfile.from_trace(base.trace)
    lists_loads = profile.profile_lists(PROFILE_THRESHOLD, loads_only=True, min_count=PROFILE_MIN_COUNT)
    lists_all = profile.profile_lists(PROFILE_THRESHOLD, loads_only=False, min_count=PROFILE_MIN_COUNT)
    critical = CriticalPathBuilder()
    for record in base.trace:
        critical.feed(record)

    # -- static RVP marking: pure opcode swap at every level ------------
    for level in MARKING_LEVELS:
        try:
            marked = mark_static_rvp(program, lists_loads, level)
        except VerificationError as exc:
            raise OracleViolation(name, f"marking[{level}]: verifier rejected output: {exc}")
        _same_shape_equivalent(name, f"marking[{level}]", base, marked, case)

    # -- raw insertion: benign self-moves after deterministic ALU sites --
    # Each site self-moves its own destination register: that register is
    # defined at the insertion point by construction, so the check is
    # independent of the allocator's register numbering (IR-lowered
    # programs need not define r0 first).
    alu_sites = [
        inst.pc
        for inst in program
        if inst.op.kind is OpKind.ALU and inst.writes is not None and inst.writes.is_int and not inst.writes.is_zero
    ]
    if alu_sites:
        step = max(1, len(alu_sites) // 3)
        chosen = alu_sites[::step][:3]
        moves = {
            pc: [Instruction(op=opcode("mov"), dst=program[pc].writes, src1=program[pc].writes)]
            for pc in chosen
        }
        try:
            inserted, _ = insert_after(program, moves)
        except VerificationError as exc:
            raise OracleViolation(name, f"insertion: verifier rejected output: {exc}")
        after = _inserted_equivalent(
            name, "insertion", base, program, inserted, case, dyn_counts, expected_sites=chosen
        )
        _require(
            after.state.state_equal(base.state),
            name,
            "insertion: self-moves changed final register state",
        )

    # -- stride pass: shadow adds must execute and stay shadow-only ------
    int_sites = [
        inst.pc
        for inst in program
        if inst.writes is not None and inst.writes.is_int and inst.op.kind in (OpKind.ALU, OpKind.LOAD)
    ]
    if int_sites:
        step = max(1, len(int_sites) // 3)
        strides = {pc: 1 + (case.seed + pc) % 7 for pc in int_sites[::step][:3]}
        try:
            strided, _, report = apply_stride_pass(program, strides, lists_all)
        except VerificationError as exc:
            raise OracleViolation(name, f"stride: verifier rejected output: {exc}")
        after = _inserted_equivalent(
            name, "stride", base, program, strided, case, dyn_counts, expected_count=report.applied
        )
        base_regs = _explicit_regs(program)
        for reg in sorted(base_regs, key=lambda r: (r.kind, r.index)):
            _require(
                after.state.read(reg) == base.state.read(reg),
                name,
                f"stride: base-program register {reg.name} diverges "
                f"({after.state.read(reg)} vs {base.state.read(reg)})",
            )

    # -- Section 7.3 reallocation: values move registers, nothing else ---
    try:
        realloc, _report = reallocate(program, lists_all, critical.finish())
    except VerificationError as exc:
        raise OracleViolation(name, f"realloc: verifier rejected output: {exc}")
    _same_shape_equivalent(name, "realloc", base, realloc, case)


# ----------------------------------------------------------------------
# Oracle family 3: cross-predictor sanity
# ----------------------------------------------------------------------
def _train_predictor(trace: Iterable[TraceRecord], predictor: ValuePredictor) -> Dict[int, Tuple[int, int]]:
    """Drive a predictor through a committed trace the way the pipeline does.

    Mirrors :func:`repro.uarch.stream.prepare_stream`'s correctness logic
    (same-register, correlated-register and previous-instance sources) and
    calls ``predictor.update`` for every candidate, whether or not a
    prediction would have been issued.  Returns ``pc -> (updates, correct)``.
    """
    reg_values = [0] * 64
    last_result_of_pc: Dict[int, int] = {}
    counts: Dict[int, Tuple[int, int]] = {}
    for record in trace:
        inst = record.inst
        source = predictor.source(inst)
        if source is not None and record.result is not None:
            if source.kind is SourceKind.DST:
                correct = record.result == record.old_dest
            elif source.kind is SourceKind.REG:
                correct = record.result == reg_values[reg_id(source.reg)]
            else:  # STORED: previous instance of this pc
                prev = last_result_of_pc.get(inst.pc)
                correct = prev is not None and record.result == prev
            predictor.update(inst.pc, correct, record.result)
            updates, hits = counts.get(inst.pc, (0, 0))
            counts[inst.pc] = (updates + 1, hits + (1 if correct else 0))
        if inst.writes is not None and record.result is not None:
            reg_values[reg_id(inst.writes)] = record.result
        if record.result is not None:
            last_result_of_pc[inst.pc] = record.result
    return counts


def _counter_cells(predictor: ValuePredictor) -> List[int]:
    if isinstance(predictor, DynamicRVP):
        return list(predictor.counters._counters)
    if isinstance(predictor, (LastValuePredictor, GabbayRegisterPredictor)):
        return list(predictor._counters)
    return []


def check_predictor_sanity(case: GeneratedCase) -> None:
    name = "predictor-sanity"
    base = _base_run(case)
    trace = base.trace

    predictors = [
        DynamicRVP(entries=64, threshold=4),
        DynamicRVP(entries=16, threshold=4, tagged=True),
        LastValuePredictor(entries=64, loads_only=True),
        LastValuePredictor(entries=16, loads_only=False),
        GabbayRegisterPredictor(threshold=4),
    ]
    for predictor in predictors:
        counts = _train_predictor(trace, predictor)
        cells = _counter_cells(predictor)
        _require(
            all(0 <= cell <= COUNTER_MAX for cell in cells),
            name,
            f"{predictor.name}: confidence counter escaped [0, {COUNTER_MAX}]: {cells}",
        )
        for pc, (updates, hits) in counts.items():
            _require(
                0 <= hits <= updates,
                name,
                f"{predictor.name}: pc {pc} has {hits} correct out of {updates} updates",
            )

    # Static vs dynamic RVP: identical per-pc correct counts on the same
    # value stream.  The marked program executes identically, so a marked
    # load's same-register outcome must be bit-identical either way.
    profile = ReuseProfile.from_trace(trace)
    lists = profile.profile_lists(PROFILE_THRESHOLD, loads_only=True, min_count=PROFILE_MIN_COUNT)
    if lists.same:
        try:
            marked = mark_static_rvp(case.program, lists, "same")
        except VerificationError as exc:
            raise OracleViolation(name, f"marking for static RVP rejected: {exc}")
        marked_run = _eager_run(marked, case.memory())
        static_counts = _train_predictor(marked_run.trace, StaticRVP())
        dynamic_counts = _train_predictor(trace, DynamicRVP(loads_only=True))
        for pc in sorted(lists.same):
            if not case.program[pc].is_load:
                continue
            _require(
                static_counts.get(pc) == dynamic_counts.get(pc),
                name,
                f"static vs dynamic RVP disagree at pc {pc}: "
                f"static {static_counts.get(pc)} vs dynamic {dynamic_counts.get(pc)}",
            )


# ----------------------------------------------------------------------
# Oracle family 4: recovery invariants
# ----------------------------------------------------------------------
def check_recovery_invariant(case: GeneratedCase) -> None:
    name = "recovery-invariant"
    base = _base_run(case)
    trace = tuple(base.trace)

    stats = {
        scheme: _simulate(trace, DynamicRVP(threshold=2), scheme) for scheme in RecoveryScheme
    }
    for scheme, s in stats.items():
        _require(
            s.committed == len(trace),
            name,
            f"{scheme.value}: committed {s.committed} of {len(trace)} trace records",
        )
        _require(
            0 <= s.correct_predictions <= s.predictions,
            name,
            f"{scheme.value}: {s.correct_predictions} correct of {s.predictions} predictions",
        )

    reissue, selective = stats[RecoveryScheme.REISSUE], stats[RecoveryScheme.SELECTIVE]
    refetch = stats[RecoveryScheme.REFETCH]

    # Reissue and selective see the identical rename/commit sequence, so the
    # predictor makes the same decisions; selective replays a subset.
    _require(
        (reissue.predictions, reissue.correct_predictions)
        == (selective.predictions, selective.correct_predictions),
        name,
        f"reissue/selective prediction streams diverge: "
        f"{(reissue.predictions, reissue.correct_predictions)} vs "
        f"{(selective.predictions, selective.correct_predictions)}",
    )
    _require(
        reissue.reissued_instructions >= selective.reissued_instructions,
        name,
        f"selective replayed more than reissue "
        f"({selective.reissued_instructions} > {reissue.reissued_instructions})",
    )

    mispredicts = refetch.predictions - refetch.correct_predictions
    _require(
        refetch.value_squashes <= mispredicts,
        name,
        f"refetch squashed {refetch.value_squashes} times on {mispredicts} mispredictions",
    )
    refetch_replay = refetch.fetched - refetch.committed
    _require(
        refetch_replay >= refetch.value_squashes,
        name,
        f"refetch squashes ({refetch.value_squashes}) without refetched "
        f"instructions (fetched-committed = {refetch_replay})",
    )
    if mispredicts == reissue.predictions - reissue.correct_predictions:
        # Same misprediction stream: refetch squashes everything from the
        # first use onward (a superset of the selective cone) per event.
        _require(
            refetch_replay >= selective.reissued_instructions,
            name,
            f"refetch replayed less ({refetch_replay}) than the selective "
            f"cone ({selective.reissued_instructions})",
        )

    for scheme in RecoveryScheme:
        quiet = _simulate(trace, NoPredictor(), scheme)
        _require(
            quiet.value_squashes == 0 and quiet.reissued_instructions == 0,
            name,
            f"{scheme.value}: recovery activity with no predictor "
            f"(squashes={quiet.value_squashes}, reissued={quiet.reissued_instructions})",
        )
        _require(quiet.committed == len(trace), name, f"{scheme.value}: no-predict run lost commits")


# ----------------------------------------------------------------------
# Oracle family: fast-vs-reference pipeline stats equivalence
# ----------------------------------------------------------------------
def _engine_stats(trace: Sequence[TraceRecord], predictor: ValuePredictor, recovery: RecoveryScheme, engine: str):
    """Seam: one timing-tier run (monkeypatched by the mutation self-tests;
    the fast tier's own seam is ``repro.uarch.fast._TEST_SKIP_EVENT``)."""
    return simulate(trace, predictor, table1_config(), recovery, engine=engine)


def check_pipeline_equivalence(case: GeneratedCase) -> None:
    """The fast timing tier must reproduce the reference per-cycle loop's
    *complete* ``SimStats`` — cycles, stall attribution and IQ occupancy
    included, not just IPC — for every predictor × recovery combination.

    Predictors run with a low confidence threshold so small generated loops
    actually speculate; each engine gets a fresh predictor instance (the
    tiers train identical state, but sharing one instance would let the
    first run's training leak into the second)."""
    name = "pipeline-equivalence"
    base = _base_run(case)
    trace = tuple(base.trace)
    predictors = (
        ("lvp", lambda: LastValuePredictor(threshold=2)),
        ("rvp", lambda: DynamicRVP(threshold=2)),
        ("stride", lambda: StridePredictor(threshold=2)),
    )
    for label, make in predictors:
        for scheme in RecoveryScheme:
            reference = _engine_stats(trace, make(), scheme, "reference").counters()
            fast = _engine_stats(trace, make(), scheme, "fast").counters()
            if fast != reference:
                diff = {
                    key: (reference[key], fast[key])
                    for key in reference
                    if reference[key] != fast[key]
                }
                _require(
                    False,
                    name,
                    f"{label}/{scheme.value}: fast tier diverged from reference "
                    f"(counter: (reference, fast)) {diff}",
                )


# ----------------------------------------------------------------------
# Oracle family 5: abstract-interpretation soundness
# ----------------------------------------------------------------------
def _build_absint(program: Program):
    """Seam: the analyses under test (monkeypatched/flag-mutated by self-tests)."""
    from ..analysis.absint import ProgramAbsint
    from ..analysis.reuse_symbolic import SymbolicReuseEstimator

    absint = ProgramAbsint(program)
    estimator = SymbolicReuseEstimator(program, absint=absint)
    return absint, estimator.estimate()


def check_absint_soundness(case: GeneratedCase) -> None:
    name = "absint-soundness"
    from ..analysis.reuse_static import ReuseClass
    from ..ir.nodes import IRError

    program = case.program
    try:
        absint, estimate = _build_absint(program)
    except IRError as exc:
        raise CaseInvalid(f"program cannot be raised to SSA: {exc}") from None
    # Unlike the differential families, a truncated run is still judgeable:
    # every committed record is a fact the verdicts must agree with, so a
    # long-running workload is checked on its committed prefix.
    try:
        base = _eager_run(program, case.memory())
    except SimulationError as exc:
        raise CaseInvalid(f"functional run failed: {exc}") from None
    trace = base.trace
    if not trace:
        raise CaseInvalid("empty trace")

    # -- interval-pruned blocks must never commit an instruction ---------
    executed = {record.pc for record in trace}
    dead = absint.unreachable_pcs() & executed
    _require(not dead, name, f"absint-unreachable pcs executed: {sorted(dead)}")

    # -- per-record facts: intervals, branch decisions, const addresses --
    for record in trace:
        if record.result is not None and program[record.pc].writes is not None:
            interval = absint.interval_at(record.pc)
            if interval is not None:
                value = to_signed(record.result)
                _require(
                    interval.contains(value),
                    name,
                    f"pc {record.pc} produced {value}, outside proven interval "
                    f"{interval.render()}",
                )
        if record.taken is not None:
            decided = absint.branch_decision(record.pc)
            if decided is not None:
                _require(
                    decided == record.taken,
                    name,
                    f"branch at pc {record.pc} proven always-{decided} but went {record.taken}",
                )
        if record.addr is not None:
            expr = absint.addr_expr_at(record.pc)
            if expr is not None and not expr.terms:
                _require(
                    (expr.offset & MASK64) == (record.addr & MASK64),
                    name,
                    f"pc {record.pc} accessed address {record.addr}, symbolic "
                    f"expression proves constant {expr.offset}",
                )

    # -- reuse verdicts: values must repeat while inside the loop --------
    # Watched state is cleared whenever control leaves the classified loop
    # body (including into callees), which only *weakens* the check — it can
    # never produce a false violation.
    tracked: Dict[int, Tuple[object, frozenset]] = {}
    bodies: Dict[int, frozenset] = {}
    for pc, verdict in estimate.loads.items():
        if verdict.reuse is ReuseClass.NONE:
            continue
        loop = program.innermost_loop(pc)
        if loop is None:
            continue
        body = frozenset(loop.body)
        tracked[pc] = (verdict, body)
        bodies[pc] = body
        if verdict.reuse is ReuseClass.DEAD and verdict.source_pc is not None:
            bodies.setdefault(verdict.source_pc, body)
    if tracked:
        values: Dict[int, int] = {}  # watched pc -> last result this loop visit
        for record in trace:
            for pc in list(values):
                if record.pc not in bodies[pc]:
                    del values[pc]
            entry = tracked.get(record.pc)
            if entry is not None and record.result is not None:
                verdict, _body = entry
                prev = values.get(record.pc)
                if prev is not None and verdict.reuse in (ReuseClass.SAME, ReuseClass.LAST_VALUE):
                    _require(
                        record.result == prev,
                        name,
                        f"load at pc {record.pc} classified {verdict.reuse.value} "
                        f"reloaded {record.result}, previous iteration loaded {prev}",
                    )
                    if verdict.reuse is ReuseClass.SAME:
                        _require(
                            record.old_dest == prev,
                            name,
                            f"load at pc {record.pc} classified same-register, but the "
                            f"destination held {record.old_dest}, not the prior value {prev}",
                        )
                if verdict.reuse is ReuseClass.DEAD and verdict.source_pc is not None:
                    sibling = values.get(verdict.source_pc)
                    if sibling is not None:
                        _require(
                            record.result == sibling,
                            name,
                            f"load at pc {record.pc} classified dead via sibling pc "
                            f"{verdict.source_pc}, loaded {record.result} vs sibling's {sibling}",
                        )
            if record.pc in bodies and record.result is not None:
                values[record.pc] = record.result


#: The five oracle families, by CLI/report name.
ORACLES: Dict[str, Callable[[GeneratedCase], None]] = {
    "trace-equivalence": check_trace_equivalence,
    "pass-preservation": check_pass_preservation,
    "predictor-sanity": check_predictor_sanity,
    "recovery-invariant": check_recovery_invariant,
    "absint-soundness": check_absint_soundness,
    "pipeline-equivalence": check_pipeline_equivalence,
}

ORACLE_FAMILIES: Tuple[str, ...] = tuple(ORACLES)
