"""The fuzz campaign driver behind ``repro fuzz``.

One campaign = ``runs`` consecutive seeds starting at ``seed``; each seed is
generated once and judged by every selected oracle family.  Failures carry a
shrunk reproducer (greedy block/instruction deletion while the same family
still fails) rendered as assembler text, so a CI artifact is enough to replay
the bug without the generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..analysis.verifier import verify_program
from .generator import GeneratedCase, GeneratorConfig, generate_case
from .oracles import ORACLE_FAMILIES, ORACLES, CaseInvalid, OracleViolation
from .shrinker import shrink_case


@dataclass
class FuzzFailure:
    """One oracle violation plus its minimised reproducer."""

    seed: int
    oracle: str
    message: str
    original_instructions: int
    shrunk_instructions: int
    reproducer: str  # rendered assembler of the shrunk program

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "oracle": self.oracle,
            "message": self.message,
            "original_instructions": self.original_instructions,
            "shrunk_instructions": self.shrunk_instructions,
            "reproducer": self.reproducer,
        }


@dataclass
class FuzzReport:
    """Outcome of one fuzz campaign."""

    seed: int
    runs: int
    oracles: Sequence[str]
    checked: int = 0
    invalid: int = 0  # generated cases that could not be judged
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict:
        return {
            "ok": self.ok,
            "seed": self.seed,
            "runs": self.runs,
            "oracles": list(self.oracles),
            "checked": self.checked,
            "invalid": self.invalid,
            "failures": [failure.to_dict() for failure in self.failures],
        }


def _still_fails_same_family(oracle: str) -> Callable[[GeneratedCase], bool]:
    """Shrink predicate: candidate is valid, verifier-error-free, and the
    same oracle family still rejects it."""
    check = ORACLES[oracle]

    def predicate(candidate: GeneratedCase) -> bool:
        try:
            if any(d.is_error for d in verify_program(candidate.program)):
                return False
            check(candidate)
        except OracleViolation:
            return True
        except Exception:
            return False  # malformed candidate, crash, or CaseInvalid
        return False

    return predicate


def run_fuzz(
    seed: int = 0,
    runs: int = 100,
    oracles: Optional[Sequence[str]] = None,
    shrink: bool = True,
    config: GeneratorConfig = GeneratorConfig(),
    progress: Optional[Callable[[int, int], None]] = None,
    journal=None,
) -> FuzzReport:
    """Run a fuzz campaign; never raises for oracle failures (see the report).

    With a :class:`~repro.runtime.journal.RunJournal` attached, every judged
    seed is committed durably (its failures embedded in the record), and
    seeds already ``ok`` in the journal are restored without re-generating or
    re-judging — an interrupted campaign resumes at the first unjudged seed.
    """
    selected = list(oracles) if oracles else list(ORACLE_FAMILIES)
    unknown = [name for name in selected if name not in ORACLES]
    if unknown:
        raise ValueError(f"unknown oracle(s) {unknown}; choose from {list(ORACLE_FAMILIES)}")

    report = FuzzReport(seed=seed, runs=runs, oracles=selected)
    journaled = journal.states() if journal is not None else {}
    for offset in range(runs):
        case_seed = seed + offset
        entry = journaled.get(f"seed{case_seed}")
        if entry is not None and entry.get("status") == "ok":
            stored = entry.get("result") or {}
            if stored.get("judged"):
                report.checked += 1
            else:
                report.invalid += 1
            for payload in stored.get("failures", ()):
                report.failures.append(FuzzFailure(**payload))
            if progress is not None:
                progress(offset + 1, runs)
            continue
        case = generate_case(case_seed, config)
        judged = False
        for oracle in selected:
            try:
                ORACLES[oracle](case)
                judged = True
            except CaseInvalid:
                break  # no oracle can judge this case
            except OracleViolation as violation:
                judged = True
                shrunk = case
                if shrink:
                    shrunk = shrink_case(case, _still_fails_same_family(oracle))
                report.failures.append(
                    FuzzFailure(
                        seed=case_seed,
                        oracle=oracle,
                        message=violation.message,
                        original_instructions=len(case.program),
                        shrunk_instructions=len(shrunk.program),
                        reproducer=shrunk.program.render(),
                    )
                )
        if judged:
            report.checked += 1
        else:
            report.invalid += 1
        if journal is not None:
            seed_failures = [f.to_dict() for f in report.failures if f.seed == case_seed]
            journal.record(
                f"seed{case_seed}", "ok",
                result={"judged": judged, "failures": seed_failures},
            )
        if progress is not None:
            progress(offset + 1, runs)
    return report
