"""Greedy failing-case minimisation by block and instruction deletion.

The shrinker never needs to understand *why* an oracle fails: it deletes
candidate instruction ranges, rebuilds a structurally valid program (labels
and procedure boundaries remapped exactly the way
:func:`repro.compiler.insertion.insert_after` shifts them, in reverse) and
keeps the deletion iff the caller's predicate still reports the failure.
Invalid intermediates (empty procedures, labels falling off the end, programs
that no longer halt) are simply rejected by the predicate wrapper in
:mod:`repro.testing.runner`.

Granularity is coarse-to-fine: whole basic blocks first (fast progress on
loop-heavy generated programs), then single instructions, repeated until a
full pass removes nothing.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Set

from ..isa.program import Procedure, Program
from .generator import GeneratedCase

#: Predicate driven by the shrinker: True iff the candidate still fails
#: the same way the original did.
StillFails = Callable[[GeneratedCase], bool]


def delete_pcs(program: Program, pcs: Iterable[int]) -> Optional[Program]:
    """Rebuild ``program`` without the given pcs, or None if that is invalid.

    Labels and procedure boundaries are remapped to the next surviving
    instruction; a deletion that empties a procedure or strands a label (or
    branch) past the end of the program is rejected.
    """
    doomed: Set[int] = {pc for pc in pcs if 0 <= pc < len(program)}
    if not doomed:
        return None
    keep = [inst for inst in program if inst.pc not in doomed]
    if not keep:
        return None

    # shifted(p): new index of original boundary position p (0..len).
    shifted_cache: List[int] = []
    survivors = 0
    for pc in range(len(program)):
        shifted_cache.append(survivors)
        if pc not in doomed:
            survivors += 1
    shifted_cache.append(survivors)

    def shifted(position: int) -> int:
        return shifted_cache[position]

    labels = {name: shifted(pc) for name, pc in program.labels.items()}
    used_labels = {inst.target for inst in keep if inst.target is not None}
    if any(labels[name] >= len(keep) for name in used_labels):
        return None  # a surviving branch would target past the end
    procedures = [
        Procedure(p.name, shifted(p.start), shifted(p.end)) for p in program.procedures
    ]
    if any(p.start >= p.end for p in procedures):
        return None  # a procedure became empty
    try:
        return Program(keep, labels, f"{program.name}~shrunk", procedures)
    except ValueError:
        return None


def _try_delete(case: GeneratedCase, pcs: Iterable[int], still_fails: StillFails) -> Optional[GeneratedCase]:
    candidate_program = delete_pcs(case.program, pcs)
    if candidate_program is None:
        return None
    candidate = case.with_program(candidate_program)
    return candidate if still_fails(candidate) else None


def shrink_case(case: GeneratedCase, still_fails: StillFails, max_rounds: int = 8) -> GeneratedCase:
    """Greedily minimise ``case`` while ``still_fails`` keeps holding.

    Returns the smallest failing case found (possibly the input itself).
    The predicate is assumed deterministic; it is never called on the
    unmodified input.
    """
    current = case
    for _ in range(max_rounds):
        before = len(current.program)

        # Coarse pass: drop whole basic blocks, largest first.
        progressed = True
        while progressed:
            progressed = False
            blocks = [
                block
                for proc in current.program.procedures
                for block in current.program.basic_blocks(proc)
            ]
            for block in sorted(blocks, key=lambda blk: blk.end - blk.start, reverse=True):
                shrunk = _try_delete(current, block.pcs(), still_fails)
                if shrunk is not None:
                    current = shrunk
                    progressed = True
                    break  # block layout changed; recompute

        # Fine pass: drop single instructions back-to-front.
        for pc in range(len(current.program) - 1, -1, -1):
            shrunk = _try_delete(current, (pc,), still_fails)
            if shrunk is not None:
                current = shrunk

        if len(current.program) == before:
            break
    return current
