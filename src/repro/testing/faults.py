"""Deterministic fault injection for the execution layer.

Two targets, matching the production fault paths that must keep working:

:class:`ParallelSuiteRunner`
    The real runner is kept; only the executor boundary is faked.
    :class:`FaultyExecutor` is a drop-in ``ProcessPoolExecutor`` stand-in
    that runs each submitted cell inline (same process, real experiment
    code) but, per a seeded :class:`FaultPlan`, makes chosen futures raise a
    worker timeout, a poisoned-result error, or a pool-level
    ``BrokenProcessPool``.  Because the runner's own ``_run_parallel`` /
    ``_retry_cell`` / ``_run_serial`` logic executes unmodified, a passing
    injection run *proves* the timeout-retry and serial-fallback paths
    recover every cell.

:class:`~repro.core.session.SimSession`
    :func:`evict_traces` forces LRU evictions on the shared trace cache;
    :func:`verify_trace_refill` shows a post-eviction refill reproduces the
    evicted trace bit-for-bit (staleness is impossible by construction, and
    this checks the construction).
"""

from __future__ import annotations

import random
from concurrent.futures import TimeoutError as FutureTimeout, process
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..core.session import ParallelSuiteRunner, SimSession, SuiteReport
from ..sim.functional import SimulationError

#: Fault kinds a cell slot can carry.
TIMEOUT = "timeout"
POISON = "poison"
BREAK_POOL = "break-pool"
SIM_FAULT = "sim-fault"
INTERRUPT = "interrupt"


class PoisonedCellError(RuntimeError):
    """Stands in for a worker that returned garbage (e.g. unpicklable state).

    An in-transit loss, not an experiment failure — the class-attribute hook
    :func:`repro.runtime.errors.classify_failure` honours marks it transient
    (retryable) without the taxonomy module importing this package.
    """

    transient = True


@dataclass(frozen=True)
class FaultPlan:
    """Which submission slots fail, and how.  Slots are submission order."""

    timeout_slots: FrozenSet[int] = frozenset()
    poison_slots: FrozenSet[int] = frozenset()
    #: slots whose cell raises a *deterministic* simulator fault — the
    #: taxonomy's fail-fast path (exactly one attempt, no retry)
    sim_fault_slots: FrozenSet[int] = frozenset()
    #: slot whose result collapses the whole pool (serial-fallback path)
    break_pool_slot: Optional[int] = None
    #: slot whose result raises KeyboardInterrupt mid-campaign (kill path)
    interrupt_slot: Optional[int] = None

    @classmethod
    def from_seed(
        cls,
        seed: int,
        slots: int,
        timeouts: int = 1,
        poisons: int = 1,
        sim_faults: int = 0,
        break_pool: bool = False,
        interrupt: bool = False,
    ) -> "FaultPlan":
        """Deterministically pick disjoint fault slots for a given seed."""
        rng = random.Random(seed)
        order = list(range(slots))
        rng.shuffle(order)
        cursor = 0

        def take(count: int) -> FrozenSet[int]:
            nonlocal cursor
            picked = frozenset(order[cursor : cursor + count])
            cursor += len(picked)
            return picked

        timeout_slots = take(min(timeouts, slots))
        poison_slots = take(min(poisons, max(0, slots - cursor)))
        sim_fault_slots = take(min(sim_faults, max(0, slots - cursor)))
        break_slot = order[cursor] if break_pool and cursor < slots else None
        cursor += break_slot is not None
        interrupt_slot = order[cursor] if interrupt and cursor < slots else None
        return cls(
            timeout_slots=timeout_slots,
            poison_slots=poison_slots,
            sim_fault_slots=sim_fault_slots,
            break_pool_slot=break_slot,
            interrupt_slot=interrupt_slot,
        )

    def fault_for(self, slot: int) -> Optional[str]:
        if slot == self.break_pool_slot:
            return BREAK_POOL
        if slot == self.interrupt_slot:
            return INTERRUPT
        if slot in self.timeout_slots:
            return TIMEOUT
        if slot in self.poison_slots:
            return POISON
        if slot in self.sim_fault_slots:
            return SIM_FAULT
        return None


class _FaultyFuture:
    """A future that either computes inline or raises its planned fault."""

    def __init__(self, fn, args, fault: Optional[str]) -> None:
        self._fn = fn
        self._args = args
        self.fault = fault
        self.cancelled = False

    def result(self, timeout: Optional[float] = None):
        if self.fault == TIMEOUT:
            raise FutureTimeout("injected worker timeout")
        if self.fault == POISON:
            raise PoisonedCellError("injected poisoned cell result")
        if self.fault == BREAK_POOL:
            raise process.BrokenProcessPool("injected pool collapse")
        if self.fault == SIM_FAULT:
            raise SimulationError("injected deterministic simulator fault")
        if self.fault == INTERRUPT:
            raise KeyboardInterrupt("injected mid-campaign interrupt")
        return self._fn(*self._args)

    def cancel(self) -> bool:
        self.cancelled = True
        return True


class FaultyExecutor:
    """Drop-in ``ProcessPoolExecutor`` replacement with scripted failures.

    ``shutdown`` calls are recorded (``(wait, cancel_futures)`` tuples) so
    tests can assert the runner's interrupt path really cancelled queued
    futures instead of waiting on them — the orphaned-pool regression.
    """

    def __init__(self, plan: FaultPlan, max_workers: Optional[int] = None) -> None:
        self.plan = plan
        self.max_workers = max_workers
        self.submitted: List[_FaultyFuture] = []
        self.shutdown_calls: List[Tuple[bool, bool]] = []

    def __enter__(self) -> "FaultyExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)
        return None

    def submit(self, fn, *args, **kwargs) -> _FaultyFuture:
        slot = len(self.submitted)
        future = _FaultyFuture(fn, args, self.plan.fault_for(slot))
        self.submitted.append(future)
        return future

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        self.shutdown_calls.append((wait, cancel_futures))
        if cancel_futures:
            for future in self.submitted:
                future.cancel()


@dataclass
class FaultInjector:
    """Installs a :class:`FaultPlan` on runners and records what it did."""

    plan: FaultPlan
    executors: List[FaultyExecutor] = field(default_factory=list)

    def install(self, runner: ParallelSuiteRunner) -> ParallelSuiteRunner:
        def factory(max_workers: Optional[int] = None) -> FaultyExecutor:
            executor = FaultyExecutor(self.plan, max_workers)
            self.executors.append(executor)
            return executor

        runner.executor_factory = factory
        return runner

    def injected_faults(self) -> Dict[str, int]:
        counts: Dict[str, int] = {TIMEOUT: 0, POISON: 0, BREAK_POOL: 0, SIM_FAULT: 0, INTERRUPT: 0}
        for executor in self.executors:
            for future in executor.submitted:
                if future.fault is not None:
                    counts[future.fault] += 1
        return counts


def exercise_suite_recovery(
    plan: FaultPlan,
    workloads=("li",),
    configs=("no_predict",),
    jobs: int = 2,
    max_instructions: int = 1_500,
    **runner_kwargs,
) -> Tuple[SuiteReport, Dict[str, int]]:
    """Run a faulted suite; the report shows whether every cell recovered.

    The injected faults hit the executor boundary only, so every recovery
    (retried timeout, retried poison, post-collapse serial fallback) is the
    production code path doing its job.
    """
    runner = ParallelSuiteRunner(
        workloads=workloads,
        configs=configs,
        jobs=jobs,
        max_instructions=max_instructions,
        **runner_kwargs,
    )
    injector = FaultInjector(plan)
    injector.install(runner)
    report = runner.run()
    return report, injector.injected_faults()


# ----------------------------------------------------------------------
# Chaos injection for the campaign service (repro.runtime.service)
# ----------------------------------------------------------------------
#: Chaos actions a dispatch slot can carry.  Slots are *dispatch* order
#: across the whole supervised run (re-dispatches get new slots), so a
#: script can say "the 3rd dispatch is SIGKILLed, its retry succeeds".
CHAOS_OK = "ok"
CHAOS_KILL = "kill"            # worker SIGKILL: the pool breaks (POSIX semantics)
CHAOS_CRASH = "crash"          # single worker death without pool collapse
CHAOS_STALL = "stall"          # wedged worker: never completes, never beats
CHAOS_SLOW = "slow"            # completes after N ticks, heartbeating throughout
CHAOS_TORN_STORE = "torn-store"  # tears its store entry mid-write, then dies
CHAOS_INTERRUPT = "chaos-interrupt"  # supervisor-side interrupt (models its death)


@dataclass(frozen=True)
class ChaosPolicy:
    """A deterministic script of service-layer failures, by dispatch slot.

    Extends the :class:`FaultPlan` idea one layer up: where a ``FaultPlan``
    scripts *future results* inside one ``ParallelSuiteRunner`` pool, a
    ``ChaosPolicy`` scripts *worker lifecycle* events against the campaign
    supervisor — kills that break the pool, stalls that force lease expiry,
    torn store writes, slow cells that must keep their lease via heartbeats.
    Unscripted slots behave (``ok``).
    """

    script: Dict[int, str] = field(default_factory=dict)
    #: ticks a ``slow`` dispatch stays in flight before completing.
    slow_ticks: int = 3
    #: ticks an ``ok`` dispatch stays in flight (1 = harvested next poll).
    ok_ticks: int = 1

    @classmethod
    def from_actions(cls, *actions: str, **kwargs) -> "ChaosPolicy":
        """Script slots 0..n-1 positionally: ``from_actions('kill', 'ok')``."""
        return cls(script=dict(enumerate(actions)), **kwargs)

    def action_for(self, slot: int) -> str:
        return self.script.get(slot, CHAOS_OK)


class _ChaosFuture:
    """A scripted stand-in for one dispatched worker future."""

    def __init__(self, fn, args, action: str, harness: "ChaosHarness") -> None:
        self._fn = fn
        self._args = args
        self.action = action
        self.harness = harness
        # Service worker signature: (cell, machine, max_instructions,
        # threshold, scale, heartbeat_dir, worker_tag, beat_interval,
        # store_root, store_key).
        self.cell = args[0]
        self.worker_tag = args[6] if len(args) > 6 else "chaos"
        self.store_root = args[8] if len(args) > 8 else None
        self.store_key = args[9] if len(args) > 9 else None
        self.cancelled = False
        if action == CHAOS_SLOW:
            self.ticks_left = harness.policy.slow_ticks
        elif action == CHAOS_STALL:
            self.ticks_left = -1  # never completes
        else:
            self.ticks_left = harness.policy.ok_ticks

    # -- lifecycle driven by the harness tick ---------------------------
    def on_tick(self) -> None:
        if self.ticks_left > 0:
            self.ticks_left -= 1
        # Healthy and slow workers heartbeat; stalled/killed ones fall silent.
        if self.action in (CHAOS_OK, CHAOS_SLOW, CHAOS_TORN_STORE) and not self.done():
            self.harness.board.beat(self.cell.cell_id, self.worker_tag)

    # -- future protocol -------------------------------------------------
    def done(self) -> bool:
        if self.action == CHAOS_STALL:
            return False
        return self.ticks_left <= 0

    def result(self, timeout: Optional[float] = None):
        if self.action == CHAOS_KILL:
            raise process.BrokenProcessPool("chaos: worker SIGKILLed, pool broken")
        if self.action == CHAOS_CRASH:
            from ..runtime.errors import WorkerCrashed

            raise WorkerCrashed("chaos: worker process died")
        if self.action == CHAOS_INTERRUPT:
            raise KeyboardInterrupt("chaos: supervisor interrupted")
        if self.action == CHAOS_TORN_STORE:
            self._tear_store_entry()
            from ..runtime.errors import WorkerCrashed

            raise WorkerCrashed("chaos: died mid store write (entry torn)")
        return self._fn(*self._args)

    def cancel(self) -> bool:
        self.cancelled = True
        return True

    def _tear_store_entry(self) -> None:
        """Leave a half-written entry where the result should have gone."""
        if not (self.store_root and self.store_key):
            return
        import os

        from ..runtime.store import ResultStore

        path = ResultStore(self.store_root).path_for(self.store_key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"schema": "repro-store/1", "key": "' + self.store_key[:16])


class ChaosExecutor:
    """Pool stand-in whose futures follow a :class:`ChaosPolicy` script."""

    def __init__(self, harness: "ChaosHarness", max_workers: Optional[int] = None) -> None:
        self.harness = harness
        self.max_workers = max_workers
        self.submitted: List[_ChaosFuture] = []
        self.shutdown_calls: List[Tuple[bool, bool]] = []

    def submit(self, fn, *args, **kwargs) -> _ChaosFuture:
        slot = self.harness.next_slot()
        action = self.harness.policy.action_for(slot)
        future = _ChaosFuture(fn, args, action, self.harness)
        self.harness.injected[action] = self.harness.injected.get(action, 0) + 1
        self.submitted.append(future)
        self.harness.live.append(future)
        return future

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        self.shutdown_calls.append((wait, cancel_futures))
        if cancel_futures:
            for future in self.submitted:
                future.cancel()


class ChaosHarness:
    """Drives a :class:`~repro.runtime.service.CampaignSupervisor` through chaos.

    Owns the :class:`~repro.runtime.heartbeat.ManualClock`, the in-memory
    heartbeat board, and the scripted executor factory.  Installing the
    harness replaces the supervisor's ``_sleep`` with :meth:`sleep`, so each
    supervisor poll tick *is* a harness tick: the clock advances by exactly
    the requested interval and every live future gets one ``on_tick`` —
    lease-expiry races become scripted sequences, never wall-clock races.

    Build supervisors with ``CampaignSupervisor(..., **harness.supervisor_kwargs())``
    then call :meth:`attach`.
    """

    def __init__(self, policy: ChaosPolicy) -> None:
        from ..runtime.heartbeat import HeartbeatBoard, ManualClock

        self.policy = policy
        self.clock = ManualClock()
        self.board = HeartbeatBoard(clock=self.clock)
        self.live: List[_ChaosFuture] = []
        self.executors: List[ChaosExecutor] = []
        self.injected: Dict[str, int] = {}
        self._slots = 0
        self.ticks = 0

    def next_slot(self) -> int:
        slot = self._slots
        self._slots += 1
        return slot

    def executor_factory(self, max_workers: Optional[int] = None) -> ChaosExecutor:
        executor = ChaosExecutor(self, max_workers)
        self.executors.append(executor)
        return executor

    def supervisor_kwargs(self) -> Dict[str, object]:
        """Constructor kwargs that put the supervisor on harness time."""
        return {
            "clock": self.clock,
            "heartbeats": self.board,
            "executor_factory": self.executor_factory,
            "use_heartbeat_files": False,
        }

    def attach(self, supervisor) -> None:
        supervisor._sleep = self.sleep

    def sleep(self, seconds: float) -> None:
        self.ticks += 1
        self.clock.advance(seconds)
        for future in list(self.live):
            future.on_tick()


# ----------------------------------------------------------------------
# SimSession cache faults
# ----------------------------------------------------------------------
def evict_traces(session: SimSession, keep: int = 0) -> int:
    """Force LRU eviction down to ``keep`` cached traces; returns evicted count."""
    evicted = 0
    while len(session._traces) > max(0, keep):
        _, trace = session._traces.popitem(last=False)
        session._trace_resident_bytes -= session._trace_cost(trace)
        evicted += 1
    return evicted


def verify_trace_refill(session: SimSession, **ref_trace_kwargs) -> bool:
    """Prove a forced eviction is recoverable: refill equals the original."""
    before = session.ref_trace(**ref_trace_kwargs)
    evict_traces(session, keep=0)
    after = session.ref_trace(**ref_trace_kwargs)
    return before == after
