"""Deterministic fault injection for the execution layer.

Two targets, matching the production fault paths that must keep working:

:class:`ParallelSuiteRunner`
    The real runner is kept; only the executor boundary is faked.
    :class:`FaultyExecutor` is a drop-in ``ProcessPoolExecutor`` stand-in
    that runs each submitted cell inline (same process, real experiment
    code) but, per a seeded :class:`FaultPlan`, makes chosen futures raise a
    worker timeout, a poisoned-result error, or a pool-level
    ``BrokenProcessPool``.  Because the runner's own ``_run_parallel`` /
    ``_retry_cell`` / ``_run_serial`` logic executes unmodified, a passing
    injection run *proves* the timeout-retry and serial-fallback paths
    recover every cell.

:class:`~repro.core.session.SimSession`
    :func:`evict_traces` forces LRU evictions on the shared trace cache;
    :func:`verify_trace_refill` shows a post-eviction refill reproduces the
    evicted trace bit-for-bit (staleness is impossible by construction, and
    this checks the construction).
"""

from __future__ import annotations

import random
from concurrent.futures import TimeoutError as FutureTimeout, process
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..core.session import ParallelSuiteRunner, SimSession, SuiteReport
from ..sim.functional import SimulationError

#: Fault kinds a cell slot can carry.
TIMEOUT = "timeout"
POISON = "poison"
BREAK_POOL = "break-pool"
SIM_FAULT = "sim-fault"
INTERRUPT = "interrupt"


class PoisonedCellError(RuntimeError):
    """Stands in for a worker that returned garbage (e.g. unpicklable state).

    An in-transit loss, not an experiment failure — the class-attribute hook
    :func:`repro.runtime.errors.classify_failure` honours marks it transient
    (retryable) without the taxonomy module importing this package.
    """

    transient = True


@dataclass(frozen=True)
class FaultPlan:
    """Which submission slots fail, and how.  Slots are submission order."""

    timeout_slots: FrozenSet[int] = frozenset()
    poison_slots: FrozenSet[int] = frozenset()
    #: slots whose cell raises a *deterministic* simulator fault — the
    #: taxonomy's fail-fast path (exactly one attempt, no retry)
    sim_fault_slots: FrozenSet[int] = frozenset()
    #: slot whose result collapses the whole pool (serial-fallback path)
    break_pool_slot: Optional[int] = None
    #: slot whose result raises KeyboardInterrupt mid-campaign (kill path)
    interrupt_slot: Optional[int] = None

    @classmethod
    def from_seed(
        cls,
        seed: int,
        slots: int,
        timeouts: int = 1,
        poisons: int = 1,
        sim_faults: int = 0,
        break_pool: bool = False,
        interrupt: bool = False,
    ) -> "FaultPlan":
        """Deterministically pick disjoint fault slots for a given seed."""
        rng = random.Random(seed)
        order = list(range(slots))
        rng.shuffle(order)
        cursor = 0

        def take(count: int) -> FrozenSet[int]:
            nonlocal cursor
            picked = frozenset(order[cursor : cursor + count])
            cursor += len(picked)
            return picked

        timeout_slots = take(min(timeouts, slots))
        poison_slots = take(min(poisons, max(0, slots - cursor)))
        sim_fault_slots = take(min(sim_faults, max(0, slots - cursor)))
        break_slot = order[cursor] if break_pool and cursor < slots else None
        cursor += break_slot is not None
        interrupt_slot = order[cursor] if interrupt and cursor < slots else None
        return cls(
            timeout_slots=timeout_slots,
            poison_slots=poison_slots,
            sim_fault_slots=sim_fault_slots,
            break_pool_slot=break_slot,
            interrupt_slot=interrupt_slot,
        )

    def fault_for(self, slot: int) -> Optional[str]:
        if slot == self.break_pool_slot:
            return BREAK_POOL
        if slot == self.interrupt_slot:
            return INTERRUPT
        if slot in self.timeout_slots:
            return TIMEOUT
        if slot in self.poison_slots:
            return POISON
        if slot in self.sim_fault_slots:
            return SIM_FAULT
        return None


class _FaultyFuture:
    """A future that either computes inline or raises its planned fault."""

    def __init__(self, fn, args, fault: Optional[str]) -> None:
        self._fn = fn
        self._args = args
        self.fault = fault
        self.cancelled = False

    def result(self, timeout: Optional[float] = None):
        if self.fault == TIMEOUT:
            raise FutureTimeout("injected worker timeout")
        if self.fault == POISON:
            raise PoisonedCellError("injected poisoned cell result")
        if self.fault == BREAK_POOL:
            raise process.BrokenProcessPool("injected pool collapse")
        if self.fault == SIM_FAULT:
            raise SimulationError("injected deterministic simulator fault")
        if self.fault == INTERRUPT:
            raise KeyboardInterrupt("injected mid-campaign interrupt")
        return self._fn(*self._args)

    def cancel(self) -> bool:
        self.cancelled = True
        return True


class FaultyExecutor:
    """Drop-in ``ProcessPoolExecutor`` replacement with scripted failures.

    ``shutdown`` calls are recorded (``(wait, cancel_futures)`` tuples) so
    tests can assert the runner's interrupt path really cancelled queued
    futures instead of waiting on them — the orphaned-pool regression.
    """

    def __init__(self, plan: FaultPlan, max_workers: Optional[int] = None) -> None:
        self.plan = plan
        self.max_workers = max_workers
        self.submitted: List[_FaultyFuture] = []
        self.shutdown_calls: List[Tuple[bool, bool]] = []

    def __enter__(self) -> "FaultyExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)
        return None

    def submit(self, fn, *args, **kwargs) -> _FaultyFuture:
        slot = len(self.submitted)
        future = _FaultyFuture(fn, args, self.plan.fault_for(slot))
        self.submitted.append(future)
        return future

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        self.shutdown_calls.append((wait, cancel_futures))
        if cancel_futures:
            for future in self.submitted:
                future.cancel()


@dataclass
class FaultInjector:
    """Installs a :class:`FaultPlan` on runners and records what it did."""

    plan: FaultPlan
    executors: List[FaultyExecutor] = field(default_factory=list)

    def install(self, runner: ParallelSuiteRunner) -> ParallelSuiteRunner:
        def factory(max_workers: Optional[int] = None) -> FaultyExecutor:
            executor = FaultyExecutor(self.plan, max_workers)
            self.executors.append(executor)
            return executor

        runner.executor_factory = factory
        return runner

    def injected_faults(self) -> Dict[str, int]:
        counts: Dict[str, int] = {TIMEOUT: 0, POISON: 0, BREAK_POOL: 0, SIM_FAULT: 0, INTERRUPT: 0}
        for executor in self.executors:
            for future in executor.submitted:
                if future.fault is not None:
                    counts[future.fault] += 1
        return counts


def exercise_suite_recovery(
    plan: FaultPlan,
    workloads=("li",),
    configs=("no_predict",),
    jobs: int = 2,
    max_instructions: int = 1_500,
    **runner_kwargs,
) -> Tuple[SuiteReport, Dict[str, int]]:
    """Run a faulted suite; the report shows whether every cell recovered.

    The injected faults hit the executor boundary only, so every recovery
    (retried timeout, retried poison, post-collapse serial fallback) is the
    production code path doing its job.
    """
    runner = ParallelSuiteRunner(
        workloads=workloads,
        configs=configs,
        jobs=jobs,
        max_instructions=max_instructions,
        **runner_kwargs,
    )
    injector = FaultInjector(plan)
    injector.install(runner)
    report = runner.run()
    return report, injector.injected_faults()


# ----------------------------------------------------------------------
# SimSession cache faults
# ----------------------------------------------------------------------
def evict_traces(session: SimSession, keep: int = 0) -> int:
    """Force LRU eviction down to ``keep`` cached traces; returns evicted count."""
    evicted = 0
    while len(session._traces) > max(0, keep):
        _, trace = session._traces.popitem(last=False)
        session._trace_resident_bytes -= session._trace_cost(trace)
        evicted += 1
    return evicted


def verify_trace_refill(session: SimSession, **ref_trace_kwargs) -> bool:
    """Prove a forced eviction is recoverable: refill equals the original."""
    before = session.ref_trace(**ref_trace_kwargs)
    evict_traces(session, keep=0)
    after = session.ref_trace(**ref_trace_kwargs)
    return before == after
