"""Property-based differential testing and fault injection.

Four layers, composed by :func:`run_fuzz` (the engine behind ``repro fuzz``):

- :mod:`~repro.testing.generator` — seeded random RVP programs that pass the
  verifier clean (RVP001–RVP009), parameterised by loop depth, load density,
  register pressure and branch mix.
- :mod:`~repro.testing.oracles` — the four differential oracle families:
  trace-equivalence, pass-preservation, predictor-sanity, recovery-invariant.
- :mod:`~repro.testing.shrinker` — greedy block/instruction deletion while an
  oracle still fails.
- :mod:`~repro.testing.faults` — deterministic fault injection for
  :class:`~repro.core.session.ParallelSuiteRunner` (timeouts, poisoned cells,
  pool collapse) and :class:`~repro.core.session.SimSession` cache eviction.
"""

from .faults import (
    BREAK_POOL,
    CHAOS_CRASH,
    CHAOS_INTERRUPT,
    CHAOS_KILL,
    CHAOS_OK,
    CHAOS_SLOW,
    CHAOS_STALL,
    CHAOS_TORN_STORE,
    INTERRUPT,
    POISON,
    SIM_FAULT,
    TIMEOUT,
    ChaosExecutor,
    ChaosHarness,
    ChaosPolicy,
    FaultInjector,
    FaultPlan,
    FaultyExecutor,
    PoisonedCellError,
    evict_traces,
    exercise_suite_recovery,
    verify_trace_refill,
)
from .generator import GeneratedCase, GeneratorConfig, generate_case
from .oracles import (
    ORACLE_FAMILIES,
    ORACLES,
    CaseInvalid,
    OracleViolation,
    check_pass_preservation,
    check_predictor_sanity,
    check_recovery_invariant,
    check_trace_equivalence,
)
from .runner import FuzzFailure, FuzzReport, run_fuzz
from .shrinker import delete_pcs, shrink_case

__all__ = [
    "BREAK_POOL",
    "CHAOS_CRASH",
    "CHAOS_INTERRUPT",
    "CHAOS_KILL",
    "CHAOS_OK",
    "CHAOS_SLOW",
    "CHAOS_STALL",
    "CHAOS_TORN_STORE",
    "ChaosExecutor",
    "ChaosHarness",
    "ChaosPolicy",
    "INTERRUPT",
    "POISON",
    "SIM_FAULT",
    "TIMEOUT",
    "CaseInvalid",
    "FaultInjector",
    "FaultPlan",
    "FaultyExecutor",
    "FuzzFailure",
    "FuzzReport",
    "GeneratedCase",
    "GeneratorConfig",
    "ORACLES",
    "ORACLE_FAMILIES",
    "OracleViolation",
    "PoisonedCellError",
    "check_pass_preservation",
    "check_predictor_sanity",
    "check_recovery_invariant",
    "check_trace_equivalence",
    "delete_pcs",
    "evict_traces",
    "exercise_suite_recovery",
    "generate_case",
    "run_fuzz",
    "shrink_case",
    "verify_trace_refill",
]
