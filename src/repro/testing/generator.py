"""Seeded random-program generator for the differential fuzzing harness.

Programs come out *verifier-clean* (no RVP001–RVP009 errors or warnings) and
*provably terminating*, so every oracle can run them without hand-written
termination proofs:

* every working register is initialised before the first computed
  instruction (RVP003 never fires — generated programs have no
  entry-garbage reads);
* all loops are counted: a reserved counter register is loaded with a
  positive trip count, decremented once per iteration and tested with
  ``bne``, and body instructions never touch the counters;
* forward branches only skip straight-line runs inside the same segment,
  so every instruction stays reachable (RVP004 never fires);
* a single procedure, no calls — the calling-convention rules (RVP005)
  hold vacuously.

The shape knobs mirror the dimensions the paper's workloads vary across:
loop nesting (:attr:`GeneratorConfig.loop_depth`), memory traffic
(:attr:`~GeneratorConfig.load_density` / :attr:`~GeneratorConfig.store_density`),
working-set size (:attr:`~GeneratorConfig.register_pressure`) and control
structure (:attr:`~GeneratorConfig.branch_mix`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import List, Tuple

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from ..isa.registers import F, R, Reg
from ..sim.memory import Memory

#: Loop counters, reserved — never part of the working set.
LOOP_COUNTERS = (R[9], R[10], R[11])

#: Word-aligned address pool for generated loads/stores (absolute, off r31).
ADDRESS_POOL = tuple(0x2000 + 8 * i for i in range(16))

_INT_OPS = ("add", "sub", "and", "or", "xor", "mul", "cmpeq", "cmplt", "sll", "srl")
_FP_OPS = ("fadd", "fsub", "fmul")
_BRANCH_OPS = ("beq", "bne", "bge", "blt")


@dataclass(frozen=True)
class GeneratorConfig:
    """Shape parameters for one generated program."""

    #: top-level segments (each a loop nest, a guarded run, or plain ops)
    segments: int = 4
    #: max straight-line instructions emitted per segment level
    ops_per_segment: int = 8
    #: max loop nesting depth (0 = straight-line only); capped by the
    #: reserved counter registers
    loop_depth: int = 2
    #: probability an op slot becomes a load
    load_density: float = 0.25
    #: probability an op slot becomes a store
    store_density: float = 0.15
    #: integer working registers in play (2..8; fp set scales along)
    register_pressure: int = 8
    #: probability a segment is guarded by a forward conditional skip
    branch_mix: float = 0.4
    #: loop trip counts drawn from [1, max_trips]
    max_trips: int = 4
    #: program construction path: "flat" emits architectural registers
    #: through :class:`~repro.isa.builder.ProgramBuilder`; "ir" authors the
    #: same shape family against :class:`~repro.ir.builder.IRBuilder`
    #: temporaries and runs the full SSA mid-end (allocation, lowering)
    frontend: str = "flat"

    def validated(self) -> "GeneratorConfig":
        if self.frontend not in ("flat", "ir"):
            raise ValueError(f"unknown generator frontend {self.frontend!r}; choose 'flat' or 'ir'")
        cfg = replace(
            self,
            segments=max(1, self.segments),
            ops_per_segment=max(1, self.ops_per_segment),
            loop_depth=max(0, min(self.loop_depth, len(LOOP_COUNTERS))),
            load_density=min(max(self.load_density, 0.0), 1.0),
            store_density=min(max(self.store_density, 0.0), 1.0),
            register_pressure=max(2, min(self.register_pressure, 8)),
            branch_mix=min(max(self.branch_mix, 0.0), 1.0),
            max_trips=max(1, self.max_trips),
        )
        return cfg


@dataclass(frozen=True)
class GeneratedCase:
    """One fuzz input: a program plus its (rebuildable) initial memory."""

    seed: int
    config: GeneratorConfig
    program: Program
    memory_words: Tuple[Tuple[int, int], ...] = field(default=())

    def memory(self) -> Memory:
        """A fresh initial-memory image (simulation mutates memory)."""
        memory = Memory()
        for addr, value in self.memory_words:
            memory.store(addr, value)
        return memory

    def with_program(self, program: Program) -> "GeneratedCase":
        return replace(self, program=program)


def generate_case(seed: int, config: GeneratorConfig = GeneratorConfig()) -> GeneratedCase:
    """Deterministically generate one verifier-clean, terminating case."""
    cfg = config.validated()
    rng = random.Random(seed)
    if cfg.frontend == "ir":
        program = _generate_ir_program(seed, cfg, rng)
        words = tuple((addr, rng.randrange(0, 1 << 20)) for addr in ADDRESS_POOL)
        return GeneratedCase(seed=seed, config=cfg, program=program, memory_words=words)
    int_regs: List[Reg] = [R[i] for i in range(1, cfg.register_pressure + 1)]
    fp_regs: List[Reg] = [F[i] for i in range(1, max(2, cfg.register_pressure - 2) + 1)]

    b = ProgramBuilder(f"fuzz_{seed}")
    with b.procedure("main"):
        # RVP003 cleanliness: define every working register up front.
        for reg in int_regs:
            b.li(reg, rng.randrange(0, 1 << 16))
        for reg in fp_regs:
            b.fli(reg, rng.randrange(0, 1 << 12))

        def emit_op() -> None:
            roll = rng.random()
            if roll < cfg.load_density:
                addr = rng.choice(ADDRESS_POOL)
                if rng.random() < 0.3:
                    b.fld(rng.choice(fp_regs), R[31], addr)
                else:
                    b.ld(rng.choice(int_regs), R[31], addr)
            elif roll < cfg.load_density + cfg.store_density:
                addr = rng.choice(ADDRESS_POOL)
                if rng.random() < 0.3:
                    b.fst(rng.choice(fp_regs), R[31], addr)
                else:
                    b.st(rng.choice(int_regs), R[31], addr)
            elif rng.random() < 0.25:
                op = rng.choice(_FP_OPS)
                b.emit(op, dst=rng.choice(fp_regs), src1=rng.choice(fp_regs), src2=rng.choice(fp_regs))
            else:
                op = rng.choice(_INT_OPS)
                dst, a = rng.choice(int_regs), rng.choice(int_regs)
                if rng.random() < 0.5:
                    b.emit(op, dst=dst, src1=a, src2=rng.choice(int_regs))
                else:
                    b.emit(op, dst=dst, src1=a, imm=rng.randrange(0, 64))

        def emit_run(limit: int) -> None:
            for _ in range(rng.randrange(1, limit + 1)):
                emit_op()

        def emit_segment(depth: int) -> None:
            if depth < cfg.loop_depth and rng.random() < 0.6:
                # Counted loop; the counter register is exclusive to this depth.
                counter = LOOP_COUNTERS[depth]
                label = b.fresh_label(f"loop_d{depth}")
                b.li(counter, rng.randrange(1, cfg.max_trips + 1))
                b.label(label)
                emit_run(cfg.ops_per_segment)
                if depth + 1 < cfg.loop_depth and rng.random() < 0.5:
                    emit_segment(depth + 1)
                b.subi(counter, counter, 1)
                b.bne(counter, label)
                return
            if rng.random() < cfg.branch_mix:
                # Guarded forward skip: both paths rejoin, everything reachable.
                skip = b.fresh_label("skip")
                b.emit(rng.choice(_BRANCH_OPS), src1=rng.choice(int_regs), target=skip)
                emit_run(max(1, cfg.ops_per_segment // 2))
                b.label(skip)
                return
            emit_run(cfg.ops_per_segment)

        for _ in range(rng.randrange(1, cfg.segments + 1)):
            emit_segment(0)
        b.halt()

    words = tuple((addr, rng.randrange(0, 1 << 20)) for addr in ADDRESS_POOL)
    return GeneratedCase(seed=seed, config=cfg, program=b.build(), memory_words=words)


def _generate_ir_program(seed: int, cfg: GeneratorConfig, rng: random.Random) -> Program:
    """The IR-front-end twin of the flat generator body.

    Same shape family (counted loops, guarded skips, straight-line runs over
    a fixed working set), but operands are IR temporaries instead of
    architectural registers: the emitted program is whatever the SSA
    mid-end's allocator and lowerer produce, so fuzzing with this frontend
    exercises coalescing, phi elimination and (under pressure) spilling on
    every case.  Loop counters are ordinary temporaries here — exclusivity
    falls out of interference, no reservation needed.
    """
    from ..ir import IRBuilder

    b = IRBuilder(f"fuzz_{seed}")
    f = b.function("main")
    f.block("main")
    int_vars = [f.var(f"v{i}") for i in range(cfg.register_pressure)]
    fp_vars = [f.var(f"w{i}", "fp") for i in range(max(2, cfg.register_pressure - 2))]
    for var in int_vars:
        f.li(var, rng.randrange(0, 1 << 16))
    for var in fp_vars:
        f.fli(var, rng.randrange(0, 1 << 12))

    labels = iter(range(1 << 20))

    def fresh(stem: str) -> str:
        return f"{stem}_{next(labels)}"

    def emit_op() -> None:
        roll = rng.random()
        if roll < cfg.load_density:
            addr = rng.choice(ADDRESS_POOL)
            if rng.random() < 0.3:
                f.fld(rng.choice(fp_vars), R[31], addr)
            else:
                f.ld(rng.choice(int_vars), R[31], addr)
        elif roll < cfg.load_density + cfg.store_density:
            addr = rng.choice(ADDRESS_POOL)
            if rng.random() < 0.3:
                f.fst(rng.choice(fp_vars), R[31], addr)
            else:
                f.st(rng.choice(int_vars), R[31], addr)
        elif rng.random() < 0.25:
            op = rng.choice(_FP_OPS)
            f.emit(op, dst=rng.choice(fp_vars), src1=rng.choice(fp_vars), src2=rng.choice(fp_vars))
        else:
            op = rng.choice(_INT_OPS)
            dst, a = rng.choice(int_vars), rng.choice(int_vars)
            if rng.random() < 0.5:
                f.emit(op, dst=dst, src1=a, src2=rng.choice(int_vars))
            else:
                f.emit(op, dst=dst, src1=a, imm=rng.randrange(0, 64))

    def emit_run(limit: int) -> None:
        for _ in range(rng.randrange(1, limit + 1)):
            emit_op()

    def emit_segment(depth: int) -> None:
        if depth < cfg.loop_depth and rng.random() < 0.6:
            counter = f.var(fresh(f"c{depth}"))
            head = fresh(f"loop_d{depth}")
            f.li(counter, rng.randrange(1, cfg.max_trips + 1))
            f.block(head)
            emit_run(cfg.ops_per_segment)
            if depth + 1 < cfg.loop_depth and rng.random() < 0.5:
                emit_segment(depth + 1)
            f.sub(counter, counter, 1)
            f.bne(counter, head)
            f.block(fresh("after"))
            return
        if rng.random() < cfg.branch_mix:
            skip = fresh("skip")
            f.emit(rng.choice(_BRANCH_OPS), src1=rng.choice(int_vars), target=skip)
            f.block(fresh("then"))
            emit_run(max(1, cfg.ops_per_segment // 2))
            f.block(skip)
            return
        emit_run(cfg.ops_per_segment)

    for _ in range(rng.randrange(1, cfg.segments + 1)):
        emit_segment(0)
    f.halt()
    return b.program()
