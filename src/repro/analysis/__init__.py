"""Static analysis: dataflow engine, program verifier/linter, reuse estimation.

Layers (see DESIGN.md, "Static verification"):

* :mod:`repro.analysis.dataflow` — generic forward/backward fixpoint solver
  over basic blocks; liveness, reaching definitions and available copies are
  instances.
* :mod:`repro.analysis.facts` — per-procedure fact bundles (reaching defs,
  def-use/use-def chains, dominance, reachability, copies).
* :mod:`repro.analysis.verifier` — the rule registry and the ``RVP###``
  rule catalog; compiler passes run it as an on-by-default postcondition.
* :mod:`repro.analysis.reuse_static` — profile-free estimation of the
  paper's reuse classes from dataflow facts alone.
* :mod:`repro.analysis.absint` — abstract interpretation over the SSA IR:
  interval value ranges, induction-variable recognition, and a symbolic
  ``base + k*iv + offset`` address/alias domain.
* :mod:`repro.analysis.reuse_symbolic` — absint-backed reuse classification
  and profile-free RVP candidate selection for the marking pass.

The engine (:mod:`.dataflow`) and the diagnostic types (:mod:`.diagnostics`)
are dependency-free and imported eagerly; everything that depends on
:mod:`repro.compiler` (facts, verifier, reuse estimation) is exported
lazily via PEP 562 so that ``compiler.liveness`` can itself import the
engine without a cycle.
"""

from .dataflow import (
    BACKWARD,
    FORWARD,
    INTERSECT,
    UNION,
    DataflowProblem,
    DataflowResult,
    NodeSolution,
    solve,
    solve_nodes,
)
from .effects import (
    ALL_REGS,
    CALL_USES,
    EXIT_USES,
    NONVOLATILES,
    VOLATILES,
    defs_and_uses,
    explicit_defs,
    explicit_uses,
    implicit_defs,
    implicit_uses,
)
from .diagnostics import (
    Diagnostic,
    RuleInfo,
    Severity,
    VerificationError,
    has_errors,
    registered_rules,
    rule,
    summarize,
)

#: Lazily resolved name -> defining submodule (all depend on repro.compiler).
_LAZY = {
    "AvailableCopiesProblem": "facts",
    "ProcedureFacts": "facts",
    "ProgramFacts": "facts",
    "ReachingDefsProblem": "facts",
    "UseSite": "facts",
    "VERIFY_ENV": "verifier",
    "AllocationCheck": "verifier",
    "LintConfig": "verifier",
    "check_program": "verifier",
    "rule_catalog": "verifier",
    "verification_enabled": "verifier",
    "verify_program": "verifier",
    "ReuseClass": "reuse_static",
    "StaticReuseEstimate": "reuse_static",
    "StaticReuseEstimator": "reuse_static",
    "compare_with_profile": "reuse_static",
    "AbsintError": "absint",
    "AffineExpr": "absint",
    "Alias": "absint",
    "FunctionAbsint": "absint",
    "InductionFact": "absint",
    "Interval": "absint",
    "ProgramAbsint": "absint",
    "SymbolicReuseEstimator": "reuse_symbolic",
    "candidate_overlap": "reuse_symbolic",
    "select_rvp_candidates": "reuse_symbolic",
    "symbolic_reuse_by_depth": "reuse_symbolic",
}

__all__ = [
    "BACKWARD",
    "FORWARD",
    "INTERSECT",
    "UNION",
    "DataflowProblem",
    "DataflowResult",
    "NodeSolution",
    "solve",
    "solve_nodes",
    "ALL_REGS",
    "CALL_USES",
    "EXIT_USES",
    "NONVOLATILES",
    "VOLATILES",
    "defs_and_uses",
    "explicit_defs",
    "explicit_uses",
    "implicit_defs",
    "implicit_uses",
    "Diagnostic",
    "RuleInfo",
    "Severity",
    "VerificationError",
    "has_errors",
    "registered_rules",
    "rule",
    "summarize",
    *_LAZY,
]


def __getattr__(name: str):
    submodule = _LAZY.get(name)
    if submodule is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{submodule}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
