"""Symbolic (absint-backed) reuse classification and profile-free marking.

:class:`SymbolicReuseEstimator` keeps the flat estimator's classification
skeleton (loop walk, liveness, copy/sibling dead-holder arguments) but swaps
its three judgement hooks for SSA-level symbolic facts from
:class:`~repro.analysis.absint.ProgramAbsint`:

* *address invariance* is "no symbol of the load's affine address expression
  is defined inside the loop" — robust against register-name reuse, copies
  of the base pointer, and rematerialised constants, where the flat
  heuristic only asks whether the base *register name* is redefined.
* *memory invariance* asks the alias domain for a no-alias verdict between
  the load and every store in the loop, instead of comparing base register
  names; a store that provably writes back the load's own value is exempt
  (the cell keeps the value either way).  Calls inside the loop clobber
  unless the callee (transitively) contains no store.
* *sibling detection* is must-alias of the two loads' address expressions.

On top of the classifier:

* :func:`select_rvp_candidates` turns an estimate into profile-free
  :class:`~repro.profiling.lists.ProfileLists` for the marking pass — the
  ROADMAP's "no profiling run at all" path.
* :func:`symbolic_reuse_by_depth` buckets reuse per loop depth in the
  Razzak-et-al. style (PAPERS.md): per-depth class counts plus a
  trip-weighted expected reuse fraction ``(trip-1)/trip`` for loads whose
  loop has a proven trip count.
* :func:`candidate_overlap` scores candidate lists against profiled lists.

All of this inherits the absint caveats: verdicts are *estimates* whose
only soundness guarantee is the dynamic one enforced by the
``absint-soundness`` fuzz oracle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.nodes import IRError, Value
from ..isa.opcodes import OpKind
from ..isa.program import Loop, Program
from ..isa.registers import Reg
from ..profiling.lists import DeadHint, ProfileLists
from .absint import Alias, ProgramAbsint
from .reuse_static import ReuseClass, StaticReuseEstimate, StaticReuseEstimator


class SymbolicReuseEstimator(StaticReuseEstimator):
    """Reuse classification with symbolic addresses instead of base names.

    Construction raises :class:`~repro.ir.nodes.IRError` when the program
    cannot be raised to SSA (e.g. unreachable blocks); callers that want a
    soft fallback should catch it and use :class:`StaticReuseEstimator`.
    """

    def __init__(self, program: Program, absint: Optional[ProgramAbsint] = None) -> None:
        super().__init__(program)
        self.absint = absint if absint is not None else ProgramAbsint(program)
        self._no_store_procs = _no_store_procedures(program)

    # ------------------------------------------------------------------
    # Hook overrides
    # ------------------------------------------------------------------
    def _address_invariant(self, loop: Loop, pc: int, defs_in_loop) -> bool:
        entry = self.absint.lookup(pc)
        expr = self.absint.addr_expr_at(pc)
        if entry is None or expr is None:
            return super()._address_invariant(loop, pc, defs_in_loop)
        analysis = entry[0]
        labels = self.absint.body_labels(pc, loop.body)
        return analysis.invariant_in(expr, labels)

    def _memory_invariant(self, loop: Loop, pc: int, defs_in_loop) -> bool:
        entry = self.absint.lookup(pc)
        load_expr = self.absint.addr_expr_at(pc)
        if entry is None or load_expr is None:
            return super()._memory_invariant(loop, pc, defs_in_loop)
        analysis, load_instr, _ = entry
        load_value = load_instr.defined
        for other_pc in loop.body:
            other = self.program[other_pc]
            if other.op.kind is OpKind.CALL:
                if other.target not in self._no_store_procs:
                    return False  # callee may store anywhere we can't see
                continue
            if not other.is_store:
                continue
            store_entry = self.absint.lookup(other_pc)
            store_expr = self.absint.addr_expr_at(other_pc)
            if store_entry is None or store_expr is None:
                return False
            if analysis.alias(load_expr, store_expr) is Alias.NO:
                continue
            # Same-value exemption: storing the load's own result back to
            # an aliasing cell leaves the loaded value in place.
            stored = store_entry[1].src2
            if (
                isinstance(stored, Value)
                and isinstance(load_value, Value)
                and stored.vid == load_value.vid
            ):
                continue
            return False
        return True

    def _sibling_shares_address(self, loop: Loop, pc: int, other_pc: int, defs_in_loop) -> bool:
        entry = self.absint.lookup(pc)
        expr = self.absint.addr_expr_at(pc)
        other_expr = self.absint.addr_expr_at(other_pc)
        if entry is None or expr is None or other_expr is None:
            return super()._sibling_shares_address(loop, pc, other_pc, defs_in_loop)
        analysis = entry[0]
        if analysis.alias(expr, other_expr) is not Alias.MUST:
            return False
        labels = self.absint.body_labels(pc, loop.body)
        if not analysis.invariant_in(expr, labels):
            return False
        return self._memory_invariant(loop, pc, defs_in_loop)


def _no_store_procedures(program: Program) -> Set[str]:
    """Procedure names that (transitively) execute no store instruction."""
    direct_store: Dict[str, bool] = {}
    callees: Dict[str, Set[str]] = {}
    for proc in program.procedures:
        stores = False
        called: Set[str] = set()
        for pc in range(proc.start, proc.end):
            inst = program[pc]
            if inst.is_store:
                stores = True
            if inst.op.kind is OpKind.CALL and inst.target is not None:
                called.add(inst.target)
        direct_store[proc.name] = stores
        callees[proc.name] = called
    clean = {name for name, stores in direct_store.items() if not stores}
    changed = True
    while changed:
        changed = False
        for name in list(clean):
            if any(callee not in clean for callee in callees[name] if callee in direct_store):
                clean.discard(name)
                changed = True
    return clean


# ----------------------------------------------------------------------
# Profile-free candidate selection for the marking pass
# ----------------------------------------------------------------------
def select_rvp_candidates(
    program: Program,
    estimate: Optional[StaticReuseEstimate] = None,
) -> ProfileLists:
    """Build marking-pass input lists from static facts alone.

    The returned :class:`ProfileLists` mirrors what a profiling run would
    feed :func:`~repro.compiler.marking.mark_static_rvp`: SAME sites in
    ``same``, sibling-sourced DEAD sites (with their holder register and
    producing pc) in ``dead``, LAST_VALUE sites in ``last_value``.  Loads
    whose destination is the zero register never predict usefully (their
    result is dropped) and are excluded, matching the RVP006 rule.
    ``threshold`` is 0.0: static facts hold on every iteration or not at
    all — there is no confidence to threshold.
    """
    if estimate is None:
        estimate = SymbolicReuseEstimator(program).estimate()
    lists = ProfileLists(threshold=0.0)
    for pc, verdict in estimate.loads.items():
        if program[pc].writes is None:
            continue  # zero-register destination: nothing to reuse
        if verdict.reuse is ReuseClass.SAME:
            lists.same.add(pc)
        elif verdict.reuse is ReuseClass.DEAD and verdict.source_reg is not None:
            lists.dead[pc] = DeadHint(reg=verdict.source_reg, producer_pc=verdict.source_pc)
        elif verdict.reuse is ReuseClass.LAST_VALUE:
            lists.last_value.add(pc)
    return lists


def candidate_overlap(candidates: ProfileLists, profiled: ProfileLists) -> Dict[str, Dict[str, int]]:
    """How the static candidate lists line up with profiled lists, per class."""

    def score(static_pcs: Set[int], profiled_pcs: Set[int]) -> Dict[str, int]:
        return {
            "static": len(static_pcs),
            "profiled": len(profiled_pcs),
            "both": len(static_pcs & profiled_pcs),
        }

    return {
        "same": score(set(candidates.same), set(profiled.same)),
        "dead": score(set(candidates.dead), set(profiled.dead)),
        "last_value": score(set(candidates.last_value), set(profiled.last_value)),
    }


# ----------------------------------------------------------------------
# Razzak-style per-loop-depth attribution
# ----------------------------------------------------------------------
def symbolic_reuse_by_depth(
    absint: ProgramAbsint,
    estimate: StaticReuseEstimate,
    lists: Optional[ProfileLists] = None,
) -> Dict[str, Dict[str, object]]:
    """Bucket reuse classes by absint loop depth, with trip-weighted reuse.

    Unlike :func:`~repro.analysis.reuse_static.reuse_by_loop_depth` this
    needs no lowered source map — depth comes from the raised SSA CFG, so
    it works for every program absint can analyze.  For loads in loops with
    a proven trip count ``t`` the expected dynamic reuse fraction of an
    invariant load is ``(t-1)/t`` (every iteration after the first); the
    per-depth ``trip_weighted_reuse`` averages that over the provable
    SAME/DEAD/LAST_VALUE loads of the depth, ``None`` when no trip is
    proven at that depth.
    """
    trip_by_header: Dict[tuple, int] = {}
    for name, fact in absint.induction_facts():
        if fact.trip is not None:
            key = (name, fact.header)
            existing = trip_by_header.get(key)
            trip_by_header[key] = fact.trip if existing is None else min(existing, fact.trip)

    buckets: Dict[int, Dict[str, object]] = {}

    def bucket(depth: int) -> Dict[str, object]:
        return buckets.setdefault(
            depth,
            {
                "loads": 0,
                **{cls.value: 0 for cls in ReuseClass},
                "profiled_same": 0,
                "profiled_dead": 0,
                "profiled_last_value": 0,
                "_trip_fractions": [],
            },
        )

    for pc, verdict in estimate.loads.items():
        depth = absint.loop_depth_at(pc)
        entry = bucket(depth)
        entry["loads"] += 1
        entry[verdict.reuse.value] += 1
        if verdict.reuse in (ReuseClass.SAME, ReuseClass.DEAD, ReuseClass.LAST_VALUE):
            trip = _innermost_trip(absint, pc, trip_by_header)
            if trip is not None and trip > 0:
                entry["_trip_fractions"].append((trip - 1) / trip)
    if lists is not None:
        for attr in ("same", "dead", "last_value"):
            for pc in getattr(lists, attr):
                if pc in estimate.loads:
                    bucket(absint.loop_depth_at(pc))[f"profiled_{attr}"] += 1

    out: Dict[str, Dict[str, object]] = {}
    for depth in sorted(buckets):
        entry = buckets[depth]
        fractions: List[float] = entry.pop("_trip_fractions")
        entry["proven_trip_loads"] = len(fractions)
        entry["trip_weighted_reuse"] = (
            round(sum(fractions) / len(fractions), 4) if fractions else None
        )
        out[str(depth)] = entry
    return out


def _innermost_trip(
    absint: ProgramAbsint, pc: int, trip_by_header: Dict[tuple, int]
) -> Optional[int]:
    entry = absint.lookup(pc)
    if entry is None:
        return None
    analysis, _, label = entry
    best: Optional[tuple] = None  # (depth, trip)
    for loop in analysis.loops:
        if label not in loop.body:
            continue
        trip = trip_by_header.get((analysis.func.name, loop.header))
        if trip is None:
            continue
        if best is None or loop.depth > best[0]:
            best = (loop.depth, trip)
    return best[1] if best is not None else None


__all__ = [
    "SymbolicReuseEstimator",
    "select_rvp_candidates",
    "candidate_overlap",
    "symbolic_reuse_by_depth",
    "IRError",
]
