"""Program verifier: machine-checked legality of (transformed) programs.

:func:`verify_program` runs every registered rule over a program and returns
structured :class:`~repro.analysis.diagnostics.Diagnostic` records;
:func:`check_program` raises :class:`VerificationError` when any
error-severity diagnostic is produced.  Compiler passes use it as an
on-by-default postcondition (opt out with ``REPRO_VERIFY_PASSES=0``), and
:class:`~repro.core.session.SimSession` verifies each program variant once
at cache-fill time — an illegal program is rejected *before* it can poison
the shared trace cache.

Rule catalog
------------

=======  ========  ====================================================
RVP001   error     opcode/operand arity (required/forbidden fields)
RVP002   error     register-class legality (int/fp operand files)
RVP003   error     use-before-def (entry garbage; warning if partial)
RVP004   warning   unreachable basic block
RVP005   error     calling-convention violations (call/branch targets)
RVP006   error     illegal ``rvp_*`` marking destination
RVP007   error     allocation validity vs the interference graph
RVP008   error     loop-exclusive (LVR) register shared within its loop
RVP009   error     spill: a colouring node found no free register
RVP010   warning   rvp-marked invariant load provably clobbered in-loop
RVP011   warning   dead stride mark: the proven shadow-add stride is 0
RVP012   warning   code unreachable under interval-pruned branches
RVP013   warning   load result provably dropped (zero dest / SSA-dead)
=======  ========  ====================================================

RVP007–RVP009 are *context* rules: they need artifacts only a compiler pass
holds (the pre-rewrite interference graph and assignment, the applied LVR
set, a colouring result), so they check nothing unless that context is
supplied — the interference graph of :mod:`repro.compiler.webs` is built on
per-register live ranges, deliberately conservative, and re-deriving it from
the rewritten program alone would flag legal programs.  The reallocator and
colourer pass their context in; ``verify_program`` on a bare program runs
RVP001–RVP006.

RVP010–RVP013 are *heavy* rules backed by the abstract-interpretation layer
(:mod:`repro.analysis.absint`): they raise the program to SSA and run the
interval/induction/alias domains, so inline pass postconditions skip them
(``LintConfig.include_heavy``); the explicit ``repro lint`` and ``repro
analyze`` surfaces run them.  Programs absint cannot raise (e.g. with
unreachable blocks, which RVP004 already reports) skip these rules silently.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..isa.instructions import Instruction
from ..isa.opcodes import OpKind
from ..isa.program import Procedure, Program
from ..isa.registers import ARG_REGS, FP_ARG_REGS, RETURN_ADDRESS, Reg, is_volatile
from .diagnostics import (
    Diagnostic,
    RuleInfo,
    Severity,
    VerificationError,
    has_errors,
    registered_rules,
    rule,
)
from .facts import ProgramFacts

#: Environment variable gating the pass postconditions (default: on).
VERIFY_ENV = "REPRO_VERIFY_PASSES"


def verification_enabled(explicit: Optional[bool] = None) -> bool:
    """Resolve a pass's ``verify`` argument against the environment default."""
    if explicit is not None:
        return explicit
    return os.environ.get(VERIFY_ENV, "1").lower() not in ("0", "false", "no", "off")


@dataclass
class LintConfig:
    """Which rules run and how findings are graded."""

    disabled: Set[str] = field(default_factory=set)
    #: Treat warnings as errors (CI strict mode).
    strict: bool = False
    #: Run the heavy absint-backed rules (RVP010–RVP013).  Lint surfaces
    #: default to True; pass postconditions pass False (see check_program).
    include_heavy: bool = True

    @classmethod
    def parse(
        cls, disabled: Iterable[str] = (), strict: bool = False, include_heavy: bool = True
    ) -> "LintConfig":
        return cls(disabled={r.upper() for r in disabled}, strict=strict, include_heavy=include_heavy)


@dataclass
class AllocationCheck:
    """A pass's allocation artifacts for one procedure (RVP007 context).

    ``webs``/``adjacency`` describe the *pre-rewrite* program (the graph the
    pass was obliged to respect); ``assignment`` maps web index to the
    register the pass chose.
    """

    proc_name: str
    webs: Sequence[object]  # compiler.webs.Web
    adjacency: Dict[int, Set[int]]
    assignment: Dict[int, Reg]


@dataclass
class VerifyContext:
    """Everything a rule may inspect."""

    program: Program
    facts: ProgramFacts
    #: Profile lists the marking was derived from, when known.
    lists: Optional[object] = None
    #: pcs whose destination register must be loop-exclusive (applied LVR).
    lvr_pcs: Set[int] = field(default_factory=set)
    #: per-procedure (webs, interference, assignment) from a realloc pass.
    allocations: Sequence[AllocationCheck] = ()
    #: spill diagnostics surfaced by the colourer (RVP009).
    spills: Sequence[Diagnostic] = ()
    #: lazy ProgramAbsint cache for the heavy rules (None until first use).
    _absint: Optional[object] = field(default=None, repr=False, compare=False)
    _absint_failed: bool = field(default=False, repr=False, compare=False)

    def procedures(self) -> Sequence[Procedure]:
        return self.program.procedures

    def proc_name(self, pc: int) -> str:
        return self.program.procedure_of(pc).name

    def absint(self):
        """The program's abstract interpretation, built once on demand.

        Returns None when the program cannot be raised to SSA (e.g. it has
        CFG-unreachable blocks, which RVP004 already reports) — heavy rules
        then skip silently.
        """
        if self._absint is None and not self._absint_failed:
            from ..ir.nodes import IRError
            from .absint import ProgramAbsint

            try:
                self._absint = ProgramAbsint(self.program)
            except IRError:
                self._absint_failed = True
        return self._absint


# ----------------------------------------------------------------------
# RVP001 — operand arity
# ----------------------------------------------------------------------
#: kind -> (required fields, forbidden fields); 'li'-family handled inline.
_ARITY: Dict[OpKind, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {
    OpKind.LOAD: (("dst", "src1"), ("src2", "target")),
    OpKind.STORE: (("src1", "src2"), ("dst", "target")),
    OpKind.BRANCH: (("src1", "target"), ("dst", "src2")),
    OpKind.JUMP: (("target",), ("dst", "src1", "src2")),
    OpKind.CALL: (("dst", "target"), ("src1", "src2")),
    OpKind.INDIRECT: (("src1",), ("dst", "src2", "target")),
    OpKind.HALT: ((), ("dst", "src1", "src2", "target")),
    OpKind.NOP: ((), ("dst", "src1", "src2", "target")),
}


@rule("RVP001", Severity.ERROR, "opcode/operand arity: required and forbidden operand fields")
def _check_arity(ctx: VerifyContext) -> Iterator[Diagnostic]:
    for inst in ctx.program:
        kind = inst.op.kind
        if kind is OpKind.ALU:
            required: Tuple[str, ...]
            if inst.op.name in ("li", "fli"):
                required, forbidden = ("dst",), ("src1", "src2", "target")
                if inst.imm is None:
                    yield _diag(ctx, "RVP001", Severity.ERROR, inst.pc, f"{inst.op.name} requires an immediate")
            else:
                required, forbidden = ("dst", "src1"), ("target",)
                if inst.src2 is not None and inst.imm is not None:
                    yield _diag(
                        ctx, "RVP001", Severity.ERROR, inst.pc,
                        f"{inst.op.name} has both a register and an immediate second operand",
                    )
        else:
            required, forbidden = _ARITY[kind]
        for name in required:
            if getattr(inst, name) is None:
                yield _diag(ctx, "RVP001", Severity.ERROR, inst.pc, f"{inst.op.name} requires operand {name}")
        for name in forbidden:
            if getattr(inst, name) is not None:
                yield _diag(ctx, "RVP001", Severity.ERROR, inst.pc, f"{inst.op.name} forbids operand {name}")


# ----------------------------------------------------------------------
# RVP002 — register classes
# ----------------------------------------------------------------------
def _expected_src_kind(inst: Instruction, slot: str) -> Optional[str]:
    """'int' / 'fp' / None (don't care) for one source slot."""
    op = inst.op
    kind = op.kind
    if kind is OpKind.LOAD:
        return "int"  # base address
    if kind is OpKind.STORE:
        if slot == "src1":
            return "int"  # base address
        return "fp" if op.name == "fst" else "int"
    if kind is OpKind.BRANCH:
        return "fp" if op.name.startswith("fb") else "int"
    if kind is OpKind.INDIRECT:
        return "int"
    if kind is OpKind.ALU:
        if op.name == "itof":
            return "int"
        if op.name == "ftoi":
            return "fp"
        return "fp" if op.fu.value == "fp" else "int"
    return None


@rule("RVP002", Severity.ERROR, "register-class legality: operands in the right register file")
def _check_register_classes(ctx: VerifyContext) -> Iterator[Diagnostic]:
    for inst in ctx.program:
        if inst.dst is not None and inst.op.writes_dest:
            expected = "fp" if inst.op.fp_dest else "int"
            if inst.dst.kind != expected:
                yield _diag(
                    ctx, "RVP002", Severity.ERROR, inst.pc,
                    f"{inst.op.name} destination {inst.dst.name} is {inst.dst.kind}, expected {expected}",
                )
        for slot in ("src1", "src2"):
            reg = getattr(inst, slot)
            if reg is None:
                continue
            expected = _expected_src_kind(inst, slot)
            if expected is not None and reg.kind != expected:
                yield _diag(
                    ctx, "RVP002", Severity.ERROR, inst.pc,
                    f"{inst.op.name} {slot} {reg.name} is {reg.kind}, expected {expected}",
                )


# ----------------------------------------------------------------------
# RVP003 — use-before-def
# ----------------------------------------------------------------------
_ENTRY_MEANINGFUL = frozenset(ARG_REGS) | frozenset(FP_ARG_REGS) | {RETURN_ADDRESS}


def _garbage_at_entry(reg: Reg) -> bool:
    """True if the calling convention leaves ``reg`` undefined at entry."""
    return is_volatile(reg) and reg not in _ENTRY_MEANINGFUL


@rule("RVP003", Severity.ERROR, "use-before-def: read of an entry-garbage register (warning when only some paths)")
def _check_use_before_def(ctx: VerifyContext) -> Iterator[Diagnostic]:
    for facts in ctx.facts:
        reachable = facts.reachable_blocks
        blocks = {b.start: b for b in ctx.program.basic_blocks(facts.proc)}
        reachable_pcs = {pc for start in reachable for pc in blocks[start].pcs()}
        for pc in range(facts.proc.start, facts.proc.end):
            if pc not in reachable_pcs:
                continue  # RVP004 reports dead code; its uses are moot
            for use in facts.use_sites(pc):
                if not _garbage_at_entry(use.reg):
                    continue
                defs = facts.reaching_defs_of_use(use)
                if (None, use.reg) not in defs:
                    continue
                definitely = all(def_pc is None for def_pc, _ in defs)
                severity = Severity.ERROR if definitely else Severity.WARNING
                path = "every path" if definitely else "some path"
                yield _diag(
                    ctx, "RVP003", severity, pc,
                    f"{use.reg.name} read by {ctx.program[pc].op.name} ({use.slot}) is undefined on {path}",
                )


# ----------------------------------------------------------------------
# RVP004 — unreachable blocks
# ----------------------------------------------------------------------
@rule("RVP004", Severity.WARNING, "unreachable basic block (dead code)")
def _check_unreachable(ctx: VerifyContext) -> Iterator[Diagnostic]:
    for facts in ctx.facts:
        for block in facts.unreachable_blocks():
            yield _diag(
                ctx, "RVP004", Severity.WARNING, block.start,
                f"block [{block.start},{block.end}) is unreachable from {facts.proc.name} entry",
            )


# ----------------------------------------------------------------------
# RVP005 — calling convention across call sites
# ----------------------------------------------------------------------
@rule("RVP005", Severity.ERROR, "calling-convention violations: call/branch targets and link register")
def _check_calling_convention(ctx: VerifyContext) -> Iterator[Diagnostic]:
    program = ctx.program
    entries = {proc.start: proc.name for proc in program.procedures}
    for inst in program:
        kind = inst.op.kind
        if kind is OpKind.CALL:
            if inst.target_pc is not None and inst.target_pc not in entries:
                yield _diag(
                    ctx, "RVP005", Severity.ERROR, inst.pc,
                    f"call target {inst.target!r} (pc {inst.target_pc}) is not a procedure entry",
                )
            if inst.dst is not None and inst.dst != RETURN_ADDRESS:
                yield _diag(
                    ctx, "RVP005", Severity.WARNING, inst.pc,
                    f"call links through {inst.dst.name}, convention expects {RETURN_ADDRESS.name}",
                )
        elif kind in (OpKind.BRANCH, OpKind.JUMP):
            if inst.target_pc is not None and inst.target_pc not in program.procedure_of(inst.pc):
                yield _diag(
                    ctx, "RVP005", Severity.ERROR, inst.pc,
                    f"{inst.op.name} target {inst.target!r} (pc {inst.target_pc}) crosses a procedure boundary",
                )


# ----------------------------------------------------------------------
# RVP006 — rvp_load-marking legality
# ----------------------------------------------------------------------
@rule("RVP006", Severity.ERROR, "illegal rvp_* marking: destination cannot hold the predicted-reuse class")
def _check_rvp_marking(ctx: VerifyContext) -> Iterator[Diagnostic]:
    for inst in ctx.program:
        if not inst.op.rvp_marked:
            continue
        if not inst.op.is_load:
            yield _diag(ctx, "RVP006", Severity.ERROR, inst.pc, f"{inst.op.name} marking on a non-load")
            continue
        if inst.dst is not None and inst.dst.is_zero:
            yield _diag(
                ctx, "RVP006", Severity.ERROR, inst.pc,
                f"rvp-marked load writes hardwired zero {inst.dst.name}: the destination "
                "can never hold a reusable prior value",
            )
        elif ctx.lists is not None:
            hint = ctx.lists.hint_for(inst.pc, use_dead=True, use_live=True, use_lv=True)
            if hint is None:
                yield _diag(
                    ctx, "RVP006", Severity.WARNING, inst.pc,
                    "rvp-marked load has no supporting entry in any profile list",
                )


# ----------------------------------------------------------------------
# RVP007 — allocation validity vs the interference graph
# ----------------------------------------------------------------------
@rule("RVP007", Severity.ERROR, "allocation validity: interfering webs assigned the same register")
def _check_allocation(ctx: VerifyContext) -> Iterator[Diagnostic]:
    for check in ctx.allocations:
        webs = check.webs
        reported: Set[Tuple[int, int]] = set()
        for web in webs:
            chosen = check.assignment.get(web.index, web.reg)
            if web.fixed and chosen != web.reg:
                pc = min(web.def_pcs, default=None)
                yield _diag(
                    ctx, "RVP007", Severity.ERROR, pc,
                    f"{check.proc_name}: fixed web {web.index} moved from "
                    f"{web.reg.name} to {chosen.name}",
                )
            for other_index in check.adjacency.get(web.index, ()):
                other = webs[other_index]
                pair = (min(web.index, other.index), max(web.index, other.index))
                if pair in reported or web.kind != other.kind:
                    continue
                other_chosen = check.assignment.get(other.index, other.reg)
                if chosen != other_chosen:
                    continue
                # The input program's own (conservative, per-register)
                # interference already shows same-register contact between
                # sibling webs; only an assignment the *pass* changed can be
                # a new illegality.
                if chosen == web.reg and other_chosen == other.reg:
                    continue
                reported.add(pair)
                pc = min(web.def_pcs | other.def_pcs, default=None)
                yield _diag(
                    ctx, "RVP007", Severity.ERROR, pc,
                    f"{check.proc_name}: interfering webs {web.index} and "
                    f"{other.index} were both assigned {chosen.name}",
                )


# ----------------------------------------------------------------------
# RVP008 — loop-exclusive (LVR) registers genuinely unshared
# ----------------------------------------------------------------------
@rule("RVP008", Severity.ERROR, "loop-exclusive register shared by another definition in its loop")
def _check_loop_exclusive(ctx: VerifyContext) -> Iterator[Diagnostic]:
    # Lazy import for the same acyclicity reason as RVP007.
    from .effects import defs_and_uses

    for pc in sorted(ctx.lvr_pcs):
        if not 0 <= pc < len(ctx.program):
            continue
        reg = ctx.program[pc].writes
        if reg is None:
            yield _diag(ctx, "RVP008", Severity.ERROR, pc, "LVR instruction defines no register")
            continue
        loop = ctx.program.innermost_loop(pc)
        if loop is None:
            yield _diag(
                ctx, "RVP008", Severity.ERROR, pc,
                f"LVR instruction (reg {reg.name}) is not inside any loop",
            )
            continue
        for other_pc in sorted(loop.body):
            if other_pc == pc:
                continue
            other_defs, _ = defs_and_uses(ctx.program[other_pc])
            if reg in other_defs:
                yield _diag(
                    ctx, "RVP008", Severity.ERROR, pc,
                    f"loop-exclusive {reg.name} is also defined at pc {other_pc} "
                    f"({ctx.program[other_pc].op.name}) in the same loop",
                )


# ----------------------------------------------------------------------
# RVP009 — spills surfaced by the colourer
# ----------------------------------------------------------------------
@rule("RVP009", Severity.ERROR, "spill: a colouring node found no free register")
def _check_spills(ctx: VerifyContext) -> Iterator[Diagnostic]:
    # The colourer emits these itself (see compiler.coloring.color_graph);
    # the rule folds them into the normal diagnostic stream.
    for diag in ctx.spills:
        yield diag


# ----------------------------------------------------------------------
# RVP010 — rvp-marked "invariant" load provably clobbered in its loop
# ----------------------------------------------------------------------
@rule(
    "RVP010",
    Severity.WARNING,
    "rvp-marked load whose loop-invariant address is must-alias overwritten in the loop",
    heavy=True,
)
def _check_clobbered_invariant(ctx: VerifyContext) -> Iterator[Diagnostic]:
    absint = ctx.absint()
    if absint is None:
        return
    from ..ir.nodes import Value
    from .absint import Alias

    for inst in ctx.program:
        if not (inst.op.rvp_marked and inst.op.is_load):
            continue
        loop = ctx.program.innermost_loop(inst.pc)
        if loop is None:
            continue
        entry = absint.lookup(inst.pc)
        expr = absint.addr_expr_at(inst.pc)
        if entry is None or expr is None:
            continue
        analysis = entry[0]
        load_value = entry[1].defined
        labels = absint.body_labels(inst.pc, loop.body)
        if not analysis.invariant_in(expr, labels):
            continue  # the mark bets on a varying address; not this rule's claim
        for store_pc in sorted(loop.body):
            store = ctx.program[store_pc]
            if not store.is_store:
                continue
            s_entry = absint.lookup(store_pc)
            s_expr = absint.addr_expr_at(store_pc)
            if s_entry is None or s_expr is None or s_entry[0] is not analysis:
                continue
            if analysis.alias(expr, s_expr) is not Alias.MUST:
                continue
            stored = s_entry[1].src2
            if (
                isinstance(stored, Value)
                and isinstance(load_value, Value)
                and stored.vid == load_value.vid
            ):
                continue  # writes the load's own value back: not a clobber
            yield _diag(
                ctx, "RVP010", Severity.WARNING, inst.pc,
                f"rvp-marked load's loop-invariant address is overwritten by the "
                f"store at pc {store_pc} (must-alias): prior-value reuse cannot hold "
                "across iterations that execute it",
            )
            break


# ----------------------------------------------------------------------
# RVP011 — dead stride mark: the shadow add provably adds 0
# ----------------------------------------------------------------------
@rule(
    "RVP011",
    Severity.WARNING,
    "dead stride mark: the shadow add behind a dead-list hint provably adds 0",
    heavy=True,
)
def _check_dead_stride(ctx: VerifyContext) -> Iterator[Diagnostic]:
    if ctx.lists is None:
        return
    dead = getattr(ctx.lists, "dead", None)
    if not dead:
        return
    from ..ir.nodes import Value

    absint = ctx.absint()
    for load_pc in sorted(dead):
        hint = dead[load_pc]
        producer = getattr(hint, "producer_pc", None)
        if producer is None or not 0 <= producer < len(ctx.program):
            continue
        add = ctx.program[producer]
        if add.op.kind is not OpKind.ALU or add.op.name not in ("add", "sub"):
            continue
        if add.writes is None or add.writes != getattr(hint, "reg", None):
            continue
        zero = add.src2 is None and (add.imm or 0) == 0
        if not zero and absint is not None:
            entry = absint.lookup(producer)
            if entry is not None:
                analysis, ssa_add, _ = entry
                if isinstance(ssa_add.defined, Value) and isinstance(ssa_add.src1, Value):
                    # Delta provably 0 iff the add's value equals its input's.
                    zero = analysis.expr_of(ssa_add.defined) == analysis.expr_of(ssa_add.src1)
        if zero:
            yield _diag(
                ctx, "RVP011", Severity.WARNING, load_pc,
                f"stride hint via {hint.reg.name} is dead: the shadow add at pc "
                f"{producer} provably adds 0, so the mark degenerates to "
                "last-value prediction at the cost of an extra instruction",
            )


# ----------------------------------------------------------------------
# RVP012 — unreachable under interval-pruned branches
# ----------------------------------------------------------------------
@rule(
    "RVP012",
    Severity.WARNING,
    "code unreachable once proven branch intervals prune infeasible edges",
    heavy=True,
)
def _check_interval_unreachable(ctx: VerifyContext) -> Iterator[Diagnostic]:
    absint = ctx.absint()
    if absint is None:
        return
    runs: List[List[int]] = []
    for pc in sorted(absint.unreachable_pcs()):
        if runs and pc == runs[-1][1] + 1:
            runs[-1][1] = pc
        else:
            runs.append([pc, pc])
    for start, end in runs:
        span = f"pc {start}" if start == end else f"pcs [{start},{end}]"
        yield _diag(
            ctx, "RVP012", Severity.WARNING, start,
            f"{span} unreachable: every path in is ruled out by a proven "
            "branch-condition interval (CFG reachability alone cannot see this)",
        )


# ----------------------------------------------------------------------
# RVP013 — load result provably dropped
# ----------------------------------------------------------------------
@rule(
    "RVP013",
    Severity.WARNING,
    "load result provably dropped: zero destination or transitively unobserved value",
    heavy=True,
)
def _check_dropped_loads(ctx: VerifyContext) -> Iterator[Diagnostic]:
    for inst in ctx.program:
        # Marked zero-dest loads are an RVP006 error; unmarked ones only waste
        # a memory access, so they warn here.
        if inst.op.is_load and inst.writes is None and not inst.op.rvp_marked:
            yield _diag(
                ctx, "RVP013", Severity.WARNING, inst.pc,
                f"{inst.op.name} writes hardwired zero {inst.dst.name}: the loaded "
                "value is dropped",
            )
    absint = ctx.absint()
    if absint is None:
        return
    from ..ir.nodes import Value

    for analysis in absint.functions.values():
        live = absint.live_values(analysis)
        for block in analysis.func.blocks:
            if block.label not in analysis.reachable:
                continue  # RVP012 territory
            for instr in block.instrs:
                if not instr.op.is_load or instr.origin_pc is None:
                    continue
                value = instr.defined
                if not isinstance(value, Value) or value.vid in live:
                    continue
                flat = ctx.program[instr.origin_pc]
                if flat.writes is None:
                    continue  # reported above
                yield _diag(
                    ctx, "RVP013", Severity.WARNING, instr.origin_pc,
                    f"value loaded into {flat.dst.name} is never observed: no "
                    "store, branch, call, or exit transitively uses it",
                )


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def _diag(ctx: VerifyContext, rule_id: str, severity: Severity, pc: Optional[int], message: str) -> Diagnostic:
    proc = ctx.proc_name(pc) if pc is not None and 0 <= pc < len(ctx.program) else "-"
    context = None
    if pc is not None and ctx.program.source_map is not None:
        loc = ctx.program.source_map.get(pc)
        if loc is not None:
            context = f"block {loc.block}, loop depth {loc.loop_depth}"
    return Diagnostic(rule=rule_id, severity=severity, pc=pc, procedure=proc, message=message, context=context)


def verify_program(
    program: Program,
    lists: Optional[object] = None,
    lvr_pcs: Optional[Iterable[int]] = None,
    config: Optional[LintConfig] = None,
    allocations: Sequence[AllocationCheck] = (),
    spills: Sequence[Diagnostic] = (),
) -> List[Diagnostic]:
    """Run every enabled rule; returns diagnostics sorted worst-first."""
    config = config or LintConfig()
    ctx = VerifyContext(
        program=program,
        facts=ProgramFacts(program),
        lists=lists,
        lvr_pcs=set(lvr_pcs or ()),
        allocations=allocations,
        spills=spills,
    )
    diagnostics: List[Diagnostic] = []
    for info in registered_rules():
        if info.rule_id in config.disabled:
            continue
        if info.heavy and not config.include_heavy:
            continue
        diagnostics.extend(info.check(ctx))
    if config.strict:
        diagnostics = [
            Diagnostic(d.rule, Severity.ERROR, d.pc, d.procedure, d.message)
            if d.severity is Severity.WARNING
            else d
            for d in diagnostics
        ]
    diagnostics.sort(key=lambda d: (d.severity, d.pc if d.pc is not None else -1, d.rule))
    return diagnostics


def check_program(
    program: Program,
    source: str,
    lists: Optional[object] = None,
    lvr_pcs: Optional[Iterable[int]] = None,
    config: Optional[LintConfig] = None,
    allocations: Sequence[AllocationCheck] = (),
    spills: Sequence[Diagnostic] = (),
    baseline: Optional[Program] = None,
    pc_map: Optional[Dict[int, int]] = None,
) -> List[Diagnostic]:
    """Verify and raise :class:`VerificationError` on any error diagnostic.

    With ``baseline`` (the pass's *input* program), only errors the pass
    *introduced* raise: an error whose ``(rule, pc)`` already occurs in the
    baseline — e.g. a synthetic test program that reads an undefined
    register — is the input's problem, not the pass's, and passes through as
    a finding.  ``pc_map`` translates baseline pcs for inserting passes.
    The baseline is only verified when the output has errors at all, so the
    clean path costs one verification, not two.  The default config here
    skips the heavy absint rules — pass postconditions run after every
    transform and only gate on errors, which the heavy rules never emit.
    """
    config = config or LintConfig(include_heavy=False)
    diagnostics = verify_program(
        program, lists=lists, lvr_pcs=lvr_pcs, config=config,
        allocations=allocations, spills=spills,
    )
    if not has_errors(diagnostics):
        return diagnostics
    if baseline is not None:
        mapping = pc_map or {}
        preexisting = {
            (d.rule, mapping.get(d.pc, d.pc))
            for d in verify_program(baseline, config=config)
            if d.is_error
        }
        introduced = [
            d for d in diagnostics if d.is_error and (d.rule, d.pc) not in preexisting
        ]
        if not introduced:
            return diagnostics
    raise VerificationError(source, diagnostics)


def rule_catalog() -> Tuple[RuleInfo, ...]:
    """The registered rules (for docs/CLI), importing this module first."""
    return registered_rules()
