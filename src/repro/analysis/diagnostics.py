"""Diagnostics and the lint-rule registry.

A :class:`Diagnostic` is one structured finding: a rule id (``RVP001`` ...),
a severity, the offending pc (or ``None`` for whole-procedure findings), the
procedure name, and a human-readable message.  Rules register themselves with
the :func:`rule` decorator; :func:`registered_rules` is the catalog the
verifier iterates and the CLI prints.

This module deliberately imports nothing from :mod:`repro.compiler` so that
compiler modules (e.g. the colourer, which surfaces spills as diagnostics)
can depend on it without import cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple


class Severity(enum.Enum):
    """Severity ladder; only ERROR diagnostics fail verification."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __lt__(self, other: "Severity") -> bool:  # ERROR sorts first
        order = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}
        return order[self] < order[other]


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One structured lint finding."""

    rule: str
    severity: Severity
    pc: Optional[int]
    procedure: str
    message: str
    #: Source provenance ("block <label>, loop depth <d>") when the program
    #: carries a source map from the IR lowerer; ``None`` for flat programs.
    context: Optional[str] = field(default=None, compare=False)

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def render(self) -> str:
        where = f"pc {self.pc}" if self.pc is not None else "-"
        suffix = f" ({self.context})" if self.context else ""
        return f"{self.severity.value.upper():7s} {self.rule} [{self.procedure}:{where}] {self.message}{suffix}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "pc": self.pc,
            "procedure": self.procedure,
            "message": self.message,
            "context": self.context,
        }


@dataclass(frozen=True)
class RuleInfo:
    """Catalog entry for one registered rule."""

    rule_id: str
    severity: Severity
    description: str
    check: Callable  # fn(ctx) -> Iterable[Diagnostic]
    #: Heavy rules (whole-program abstract interpretation) are skipped by
    #: pass postconditions and only run for explicit lint/analyze surfaces.
    heavy: bool = False


#: rule id -> RuleInfo, in registration order.
_REGISTRY: Dict[str, RuleInfo] = {}


def rule(rule_id: str, severity: Severity, description: str, *, heavy: bool = False):
    """Register a verifier rule: ``@rule("RVP001", Severity.ERROR, "...")``.

    The decorated function receives a verification context and yields
    :class:`Diagnostic` records.  ``severity`` is the rule's *default*
    severity; a rule may emit individual diagnostics at a different level
    (e.g. possibly-undefined-on-some-path downgraded to WARNING).
    ``heavy`` marks rules too expensive for inline pass postconditions (see
    :class:`RuleInfo.heavy`).
    """

    def decorate(fn: Callable) -> Callable:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate rule id {rule_id}")
        _REGISTRY[rule_id] = RuleInfo(rule_id, severity, description, fn, heavy=heavy)
        return fn

    return decorate


def registered_rules() -> Tuple[RuleInfo, ...]:
    """All registered rules in registration order."""
    return tuple(_REGISTRY.values())


def rule_info(rule_id: str) -> RuleInfo:
    return _REGISTRY[rule_id]


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    return any(d.is_error for d in diagnostics)


def summarize(diagnostics: Sequence[Diagnostic]) -> Dict[str, int]:
    """Counts by severity value (always includes all three keys)."""
    counts = {sev.value: 0 for sev in Severity}
    for diag in diagnostics:
        counts[diag.severity.value] += 1
    return counts


class VerificationError(RuntimeError):
    """A compiler pass produced a program with error-severity diagnostics."""

    def __init__(self, source: str, diagnostics: Sequence[Diagnostic]) -> None:
        self.source = source
        self.diagnostics = list(diagnostics)
        errors = [d for d in self.diagnostics if d.is_error]
        lines = "\n".join(f"  {d.render()}" for d in errors[:10])
        more = f"\n  ... and {len(errors) - 10} more" if len(errors) > 10 else ""
        super().__init__(f"{source}: {len(errors)} verification error(s)\n{lines}{more}")
