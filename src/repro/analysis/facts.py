"""Concrete dataflow facts per procedure: reaching defs, chains, dominance.

:class:`ProcedureFacts` bundles everything the verifier and the static reuse
estimator need about one procedure, computed lazily and cached:

* **reaching definitions** — forward/union instance of the shared engine.
  A definition is ``(pc, reg)``; the procedure entry contributes a pseudo
  definition ``(None, reg)`` for every register (the calling convention says
  every register "arrives" at entry — arguments and callee-saved values
  meaningfully, volatile temporaries as garbage).
* **use-def / def-use chains** — per explicit operand slot, which defs reach
  it; and per definition, which operand slots consume it.
* **dominance** — immediate dominators of the CFG (networkx), plus the
  derived ``dominates`` predicate.
* **reachability** — blocks unreachable from the procedure entry.
* **available copies** — forward/intersection instance: ``(dst, src)`` pairs
  established by ``mov``/``fmov`` and still valid (neither side redefined)
  on *every* path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import networkx as nx

from ..compiler.liveness import LivenessInfo, compute_liveness
from ..isa.program import BasicBlock, Procedure, Program
from ..isa.registers import Reg
from .dataflow import FORWARD, INTERSECT, UNION, DataflowProblem, DataflowResult, solve
from .effects import ALL_REGS as _ALL_REGS
from .effects import defs_and_uses, explicit_uses

#: A definition: (pc, reg); pc is None for the procedure-entry pseudo-def.
DefId = Tuple[Optional[int], Reg]
#: A copy fact: dst currently holds the same value as src.
CopyFact = Tuple[Reg, Reg]

_COPY_OPS = ("mov", "fmov")


class ReachingDefsProblem(DataflowProblem):
    """Forward may-reaching-definitions over ``(pc, reg)`` facts."""

    direction = FORWARD
    meet = UNION

    def __init__(self, program: Program, proc: Procedure) -> None:
        self._defs_at: Dict[int, Set[Reg]] = {}
        defs_of_reg: Dict[Reg, Set[DefId]] = {reg: {(None, reg)} for reg in _ALL_REGS}
        for pc in range(proc.start, proc.end):
            defs, _ = defs_and_uses(program[pc])
            self._defs_at[pc] = defs
            for reg in defs:
                defs_of_reg.setdefault(reg, set()).add((pc, reg))
        self._defs_of_reg = defs_of_reg

    def gen(self, pc: int) -> Set[DefId]:
        return {(pc, reg) for reg in self._defs_at[pc]}

    def kill(self, pc: int) -> Set[DefId]:
        killed: Set[DefId] = set()
        for reg in self._defs_at[pc]:
            killed |= self._defs_of_reg[reg]
        return killed - self.gen(pc)

    def boundary(self) -> Set[DefId]:
        return {(None, reg) for reg in _ALL_REGS}


class AvailableCopiesProblem(DataflowProblem):
    """Forward must-availability of ``mov``/``fmov`` copy facts."""

    direction = FORWARD
    meet = INTERSECT

    def __init__(self, program: Program, proc: Procedure) -> None:
        self._gen: Dict[int, Set[CopyFact]] = {}
        self._defs_at: Dict[int, Set[Reg]] = {}
        all_copies: Set[CopyFact] = set()
        for pc in range(proc.start, proc.end):
            inst = program[pc]
            defs, _ = defs_and_uses(inst)
            self._defs_at[pc] = defs
            facts: Set[CopyFact] = set()
            if inst.op.name in _COPY_OPS and inst.writes is not None and inst.src1 is not None:
                if not inst.src1.is_zero and inst.writes != inst.src1:
                    facts.add((inst.writes, inst.src1))
            self._gen[pc] = facts
            all_copies |= facts
        self._universe = all_copies

    def gen(self, pc: int) -> Set[CopyFact]:
        return self._gen[pc]

    def kill(self, pc: int) -> Set[CopyFact]:
        defs = self._defs_at[pc]
        return {fact for fact in self._universe if fact[0] in defs or fact[1] in defs} - self._gen[pc]

    def universe(self) -> Set[CopyFact]:
        return self._universe


@dataclass
class UseSite:
    """One explicit register operand read."""

    pc: int
    slot: str  # 'src1' or 'src2'
    reg: Reg


class ProcedureFacts:
    """Lazily computed dataflow facts for one procedure."""

    def __init__(self, program: Program, proc: Procedure) -> None:
        self.program = program
        self.proc = proc
        self._liveness: Optional[LivenessInfo] = None
        self._reaching: Optional[DataflowResult] = None
        self._copies: Optional[DataflowResult] = None
        self._idom: Optional[Dict[int, int]] = None
        self._reachable: Optional[Set[int]] = None

    # ------------------------------------------------------------------
    # Underlying solutions
    # ------------------------------------------------------------------
    @property
    def liveness(self) -> LivenessInfo:
        if self._liveness is None:
            self._liveness = compute_liveness(self.program, self.proc)
        return self._liveness

    @property
    def reaching(self) -> DataflowResult:
        if self._reaching is None:
            self._reaching = solve(self.program, self.proc, ReachingDefsProblem(self.program, self.proc))
        return self._reaching

    @property
    def copies(self) -> DataflowResult:
        if self._copies is None:
            self._copies = solve(self.program, self.proc, AvailableCopiesProblem(self.program, self.proc))
        return self._copies

    # ------------------------------------------------------------------
    # Chains
    # ------------------------------------------------------------------
    def use_sites(self, pc: int) -> List[UseSite]:
        inst = self.program[pc]
        sites: List[UseSite] = []
        if inst.src1 is not None and not inst.src1.is_zero:
            sites.append(UseSite(pc, "src1", inst.src1))
        if inst.src2 is not None and not inst.src2.is_zero:
            sites.append(UseSite(pc, "src2", inst.src2))
        return sites

    def reaching_defs_of_use(self, use: UseSite) -> FrozenSet[DefId]:
        """The definitions of ``use.reg`` that reach ``use.pc``."""
        return frozenset(
            (def_pc, reg) for def_pc, reg in self.reaching.in_facts[use.pc] if reg == use.reg
        )

    def ud_chains(self) -> Dict[Tuple[int, str], FrozenSet[DefId]]:
        """(pc, slot) -> reaching definitions, for every explicit use."""
        chains: Dict[Tuple[int, str], FrozenSet[DefId]] = {}
        for pc in range(self.proc.start, self.proc.end):
            for use in self.use_sites(pc):
                chains[(pc, use.slot)] = self.reaching_defs_of_use(use)
        return chains

    def du_chains(self) -> Dict[DefId, Set[Tuple[int, str]]]:
        """Definition -> the explicit operand slots it (may) feed."""
        chains: Dict[DefId, Set[Tuple[int, str]]] = {}
        for (pc, slot), defs in self.ud_chains().items():
            for def_id in defs:
                chains.setdefault(def_id, set()).add((pc, slot))
        return chains

    def available_copies_at(self, pc: int) -> FrozenSet[CopyFact]:
        """Copies valid on every path into ``pc``."""
        return self.copies.in_facts[pc]

    # ------------------------------------------------------------------
    # Dominance / reachability
    # ------------------------------------------------------------------
    @property
    def idom(self) -> Dict[int, int]:
        if self._idom is None:
            graph = self.program.cfg(self.proc)
            if self.proc.start in graph:
                self._idom = dict(nx.immediate_dominators(graph, self.proc.start))
            else:
                self._idom = {}
        return self._idom

    def dominates(self, a: int, b: int) -> bool:
        """True if block-start ``a`` dominates block-start ``b``."""
        node = b
        idom = self.idom
        while True:
            if node == a:
                return True
            parent = idom.get(node)
            if parent is None or parent == node:
                return node == a
            node = parent

    @property
    def reachable_blocks(self) -> Set[int]:
        """Block starts reachable from the procedure entry."""
        if self._reachable is None:
            graph = self.program.cfg(self.proc)
            if self.proc.start in graph:
                self._reachable = {self.proc.start} | set(nx.descendants(graph, self.proc.start))
            else:
                self._reachable = set()
        return self._reachable

    def unreachable_blocks(self) -> List[BasicBlock]:
        reachable = self.reachable_blocks
        return [b for b in self.program.basic_blocks(self.proc) if b.start not in reachable]


class ProgramFacts:
    """Facts for every procedure of a program, computed on demand."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self._by_proc: Dict[str, ProcedureFacts] = {}

    def for_proc(self, proc: Procedure) -> ProcedureFacts:
        facts = self._by_proc.get(proc.name)
        if facts is None:
            facts = self._by_proc[proc.name] = ProcedureFacts(self.program, proc)
        return facts

    def __iter__(self):
        for proc in self.program.procedures:
            yield self.for_proc(proc)
