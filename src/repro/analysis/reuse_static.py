"""Profile-free estimation of the paper's reuse classes from dataflow alone.

The Figure-1 analysis profiles a *dynamic* trace to find loads whose result
is already in a register (same-register / dead-register reuse) or equals the
load's previous result (last-value).  Echoing the static-reuse-estimation
direction of arXiv:2509.18684, :class:`StaticReuseEstimator` derives the
same classes from the CFG and dataflow facts, with no trace at all:

* **same-register** — a load in a loop whose address is loop-invariant (no
  definition of the base register inside the loop), whose destination has no
  other definition in the loop, and whose loop contains no store (memory is
  loop-invariant): from the second iteration on, the destination already
  holds the loaded value.
* **last-value** — loop-invariant address and memory, but the destination is
  clobbered by another definition in the loop: the value repeats while the
  register does not retain it.
* **dead-register** — the loaded value provably lives in another
  same-class register that is dead at the load: either a must-available
  ``mov`` copy of the destination that survives around the back edge, or a
  second load of the same (base, offset) address, whose holder register is
  not live-in at the candidate.
* **none** — nothing provable (including every load outside loops: cross-
  invocation reuse is invisible to a per-procedure static analysis).

Memory invariance uses a base-register may-alias heuristic: a store is
assumed to clobber a load only when both address through the *same base
register* (exactly matching offsets when that base is loop-invariant).
Distinct base registers are assumed to address distinct objects — unsound
in general, standard for allocation-free address analysis, and explicitly
an *estimate*: ``repro lint --reuse-report`` puts these static numbers side
by side with the profiled truth per workload, and the gap (value-identical
data, input-dependent invariance, cross-procedure reuse) is the point of
the comparison.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..isa.program import Loop, Procedure, Program
from ..isa.registers import Reg
from .facts import ProcedureFacts, ProgramFacts


class ReuseClass(enum.Enum):
    SAME = "same"
    DEAD = "dead"
    LAST_VALUE = "last_value"
    NONE = "none"


@dataclass
class LoadClassification:
    """Static verdict for one load."""

    pc: int
    reuse: ReuseClass
    reason: str
    #: dead-register source, when reuse is DEAD
    source_reg: Optional[Reg] = None
    #: sibling load supplying the dead register, when one exists (lets the
    #: soundness oracle replay the exact argument behind the verdict)
    source_pc: Optional[int] = None


@dataclass
class StaticReuseEstimate:
    """Per-load classifications plus aggregate counts."""

    program_name: str
    loads: Dict[int, LoadClassification] = field(default_factory=dict)

    def counts(self) -> Dict[str, int]:
        counts = {cls.value: 0 for cls in ReuseClass}
        for verdict in self.loads.values():
            counts[verdict.reuse.value] += 1
        return counts

    def pcs_of(self, reuse: ReuseClass) -> Set[int]:
        return {pc for pc, v in self.loads.items() if v.reuse is reuse}


class StaticReuseEstimator:
    """Classify every static load of a program into reuse classes."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.facts = ProgramFacts(program)
        #: per-loop def-site cache: every load in a loop shares the same
        #: def map, so compute it once per loop rather than once per load.
        self._loop_defs: Dict[Loop, Dict[Reg, Set[int]]] = {}

    # ------------------------------------------------------------------
    def estimate(self) -> StaticReuseEstimate:
        estimate = StaticReuseEstimate(self.program.name)
        for proc in self.program.procedures:
            facts = self.facts.for_proc(proc)
            for pc in range(proc.start, proc.end):
                inst = self.program[pc]
                if not inst.is_load:
                    continue
                estimate.loads[pc] = self._classify(facts, pc)
        return estimate

    # ------------------------------------------------------------------
    def _classify(self, facts: ProcedureFacts, pc: int) -> LoadClassification:
        program = self.program
        inst = program[pc]
        loop = program.innermost_loop(pc)
        if loop is None:
            return LoadClassification(pc, ReuseClass.NONE, "not inside a loop")
        if inst.dst is None or inst.src1 is None:
            return LoadClassification(pc, ReuseClass.NONE, "malformed load")

        defs_in_loop = self._defs_in_loop(loop)
        base_invariant = self._address_invariant(loop, pc, defs_in_loop)
        memory_invariant = self._memory_invariant(loop, pc, defs_in_loop)
        if not (base_invariant and memory_invariant):
            # The repeating-value argument needs both; a dead copy of a
            # varying value is still checked below.
            dead = self._dead_holder(facts, pc, loop, defs_in_loop, value_repeats=False)
            if dead is not None:
                return dead
            why = "address varies in loop" if not base_invariant else "loop contains a store"
            return LoadClassification(pc, ReuseClass.NONE, why)

        dst_redefined = any(other_pc != pc for other_pc in defs_in_loop.get(inst.dst, ()))
        if not dst_redefined and not inst.dst.is_zero:
            return LoadClassification(
                pc, ReuseClass.SAME, "invariant address and destination untouched in loop"
            )
        dead = self._dead_holder(facts, pc, loop, defs_in_loop, value_repeats=True)
        if dead is not None:
            return dead
        return LoadClassification(
            pc, ReuseClass.LAST_VALUE, "invariant address but destination clobbered in loop"
        )

    # ------------------------------------------------------------------
    # Overridable judgement hooks (the symbolic estimator replaces these
    # register-name arguments with SSA-level symbolic-address facts).
    # ------------------------------------------------------------------
    def _address_invariant(self, loop: Loop, pc: int, defs_in_loop: Dict[Reg, Set[int]]) -> bool:
        """Is the load's address the same on every iteration of ``loop``?"""
        base = self.program[pc].src1
        return base.is_zero or base not in defs_in_loop

    def _memory_invariant(self, loop: Loop, pc: int, defs_in_loop: Dict[Reg, Set[int]]) -> bool:
        """Can no store in ``loop`` change what the load at ``pc`` reads?"""
        inst = self.program[pc]
        return not self._store_may_clobber(loop, inst.src1, inst.imm, defs_in_loop)

    def _sibling_shares_address(
        self, loop: Loop, pc: int, other_pc: int, defs_in_loop: Dict[Reg, Set[int]]
    ) -> bool:
        """Do the loads at ``pc`` and ``other_pc`` read the same unclobbered cell?"""
        inst, other = self.program[pc], self.program[other_pc]
        if other.src1 != inst.src1 or (other.imm or 0) != (inst.imm or 0):
            return False
        if other.src1 is not None and not other.src1.is_zero and other.src1 in defs_in_loop:
            return False  # address register varies between the two loads
        if self._store_may_clobber(loop, other.src1, other.imm, defs_in_loop):
            return False  # memory may change between the sibling loads
        return True

    # ------------------------------------------------------------------
    def _defs_in_loop(self, loop: Loop) -> Dict[Reg, Set[int]]:
        """Explicitly defined registers inside the loop body -> defining pcs."""
        cached = self._loop_defs.get(loop)
        if cached is not None:
            return cached
        defs: Dict[Reg, Set[int]] = {}
        for pc in loop.body:
            written = self.program[pc].writes
            if written is not None:
                defs.setdefault(written, set()).add(pc)
        self._loop_defs[loop] = defs
        return defs

    def _loop_has_store(self, loop: Loop) -> bool:
        return any(self.program[pc].is_store for pc in loop.body)

    def _store_may_clobber(
        self, loop: Loop, base: Reg, offset: Optional[int], defs_in_loop: Dict[Reg, Set[int]]
    ) -> bool:
        """May-alias heuristic: only same-base stores clobber ``offset(base)``.

        When the shared base register varies inside the loop, any offset may
        collide across iterations; when it is invariant, only the exact
        offset does.  Stores through a different base register are assumed
        to address a different object (see module docstring).
        """
        base_varies = not base.is_zero and base in defs_in_loop
        for pc in loop.body:
            store = self.program[pc]
            if not store.is_store or store.src1 != base:
                continue
            # store.src1 == base here, so base_varies already answers
            # "does this store's address register vary in the loop".
            if base_varies:
                return True
            if (store.imm or 0) == (offset or 0):
                return True
        return False

    def _dead_holder(
        self,
        facts: ProcedureFacts,
        pc: int,
        loop: Loop,
        defs_in_loop: Dict[Reg, Set[int]],
        value_repeats: bool,
    ) -> Optional[LoadClassification]:
        """A same-class register provably holding the load's value, dead at pc."""
        inst = self.program[pc]
        dst = inst.dst
        live_in = facts.liveness.live_in[pc]

        if value_repeats:
            # A must-available copy of the destination surviving to the load
            # holds the previous (== next) loaded value.
            for holder, src in facts.available_copies_at(pc):
                if src == dst and holder.kind == dst.kind and holder != dst and holder not in live_in:
                    return LoadClassification(
                        pc, ReuseClass.DEAD,
                        f"copy of destination survives in dead {holder.name}",
                        source_reg=holder,
                    )
        # A sibling load of the same invariant (base, offset) in the loop
        # leaves the value in its own destination.
        for other_pc in sorted(loop.body):
            other = self.program[other_pc]
            if other_pc == pc or not other.is_load or other.dst is None:
                continue
            if dst is None or other.dst == dst or other.dst.kind != dst.kind:
                continue
            if not self._sibling_shares_address(loop, pc, other_pc, defs_in_loop):
                continue
            holder = other.dst
            if any(other_def != other_pc for other_def in defs_in_loop.get(holder, ())):
                continue  # holder clobbered elsewhere in the loop
            if holder not in live_in:
                return LoadClassification(
                    pc, ReuseClass.DEAD,
                    f"sibling load at pc {other_pc} leaves value in dead {holder.name}",
                    source_reg=holder,
                    source_pc=other_pc,
                )
        return None


# ----------------------------------------------------------------------
# Comparison against the profiled numbers
# ----------------------------------------------------------------------
def compare_with_profile(
    estimate: StaticReuseEstimate,
    profile,  # ReuseProfile
    lists,  # ProfileLists
    min_count: int = 8,
) -> Dict[str, object]:
    """Static estimate vs profiled truth, per reuse class.

    Returns a JSON-friendly dict: static counts, profiled-list counts over
    the same loads, per-class overlap, and dynamic-weighted fractions
    (static classes weighted by each site's profiled execution count,
    against the profiled Figure-1 fractions).
    """
    sites = {pc: s for pc, s in profile.sites.items() if s.is_load and s.count >= min_count}
    judged = {pc: v for pc, v in estimate.loads.items() if pc in sites}

    def overlap(static_pcs: Set[int], profiled_pcs: Set[int]) -> Dict[str, int]:
        return {
            "static": len(static_pcs),
            "profiled": len(profiled_pcs),
            "both": len(static_pcs & profiled_pcs),
        }

    static_same = {pc for pc, v in judged.items() if v.reuse is ReuseClass.SAME}
    static_dead = {pc for pc, v in judged.items() if v.reuse is ReuseClass.DEAD}
    static_lv = {pc for pc, v in judged.items() if v.reuse is ReuseClass.LAST_VALUE}
    profiled_same = {pc for pc in lists.same if pc in sites}
    profiled_dead = {pc for pc in lists.dead if pc in sites}
    profiled_lv = {pc for pc in lists.last_value if pc in sites}

    total_weight = sum(s.count for s in sites.values()) or 1
    weighted = {
        cls.value: sum(sites[pc].count for pc, v in judged.items() if v.reuse is cls) / total_weight
        for cls in (ReuseClass.SAME, ReuseClass.DEAD, ReuseClass.LAST_VALUE)
    }

    return {
        "program": estimate.program_name,
        "static_loads": len(estimate.loads),
        "judged_loads": len(judged),
        "static_counts": estimate.counts(),
        "overlap": {
            "same": overlap(static_same, profiled_same),
            "dead": overlap(static_dead, profiled_dead),
            "last_value": overlap(static_lv, profiled_lv),
        },
        "weighted_static_fractions": weighted,
        "profiled_fig1_fractions": profile.fig1.fractions(),
    }


def reuse_by_loop_depth(
    program: Program,
    estimate: StaticReuseEstimate,
    lists=None,  # ProfileLists
) -> Optional[Dict[str, Dict[str, int]]]:
    """Attribute reuse to loop nests via the program's IR source map.

    Programs lowered from :mod:`repro.ir` carry a ``source_map`` recording
    each instruction's IR basic block and loop-nest depth; bucket the static
    classifications (and, when profile lists are given, the profiled reuse
    list memberships) by that depth.  Returns ``None`` for flat programs
    with no source map — loop depth is an IR-level notion.
    """
    if program.source_map is None:
        return None

    def depth_of(pc: int) -> int:
        loc = program.source_map.get(pc)
        return loc.loop_depth if loc is not None else 0

    buckets: Dict[int, Dict[str, int]] = {}

    def bucket(depth: int) -> Dict[str, int]:
        return buckets.setdefault(
            depth,
            {
                "loads": 0,
                **{cls.value: 0 for cls in ReuseClass},
                "profiled_same": 0,
                "profiled_dead": 0,
                "profiled_last_value": 0,
            },
        )

    for pc, verdict in estimate.loads.items():
        entry = bucket(depth_of(pc))
        entry["loads"] += 1
        entry[verdict.reuse.value] += 1
    if lists is not None:
        for attr in ("same", "dead", "last_value"):
            for pc in getattr(lists, attr):
                if pc in estimate.loads:
                    bucket(depth_of(pc))[f"profiled_{attr}"] += 1
    return {str(depth): buckets[depth] for depth in sorted(buckets)}
