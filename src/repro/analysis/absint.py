"""Abstract interpretation over the SSA IR: intervals, induction, addresses.

A sparse conditional fixpoint engine (:class:`FunctionAbsint`) runs over one
SSA :class:`~repro.ir.nodes.IRFunction` and proves three families of facts,
each a pluggable domain over the same engine:

* **interval value-range** (:class:`Interval`) — signed 64-bit ranges with
  constant propagation through phis.  Transfer functions mirror the opcode
  table exactly: when both operands are constants the opcode's own
  ``alu_fn`` evaluates the result, so constant folding can never disagree
  with the simulator; range arithmetic falls back to ⊤ whenever 64-bit
  wraparound is possible.  Branch conditions over proved ranges prune
  infeasible CFG edges (classic SCCP), and block reachability under the
  surviving edges is recomputed with the shared dataflow fixpoint core
  (:func:`repro.analysis.dataflow.solve_nodes`).

* **induction recognition** (:class:`InductionFact`) — loop-header phis
  whose back-edge arguments are ``phi + c`` chains of recurrences.  For the
  canonical counted-loop shape (``sub c, c, #k; bne c, header`` with a
  constant, divisible initial value) the engine also proves the trip count
  and refines the phi's interval to the exact closed range; without the
  exit proof no bound is claimed (a wrapping recurrence is not monotone in
  the signed view, so one-sided bounds would be unsound).

* **symbolic addresses** (:class:`AffineExpr`) — every value is a linear
  form ``offset + Σ coeff·sym`` over opaque *atom* symbols (loads, entry
  values, unrecognised phis) and induction variables, with coefficients and
  offsets canonicalised mod 2**64 so expression equality is exactly runtime
  address equality.  :meth:`FunctionAbsint.alias` turns expression pairs
  into must/no/may verdicts.  Distinct base atoms are assumed to address
  distinct objects — the same allocation-site object model the flat
  estimator used per base *register*, now applied per SSA value, which
  removes the register-name-reuse unsoundness but is still an assumption:
  the ``absint-soundness`` fuzz oracle (:mod:`repro.testing.oracles`)
  checks every verdict family against decoded-engine traces.

:class:`ProgramAbsint` raises a flat :class:`~repro.isa.program.Program`
through :func:`repro.ir.ssa.raise_program` and exposes the facts keyed by
flat pc via the instructions' ``origin_pc`` provenance.
"""

from __future__ import annotations

import enum
import math
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..ir.nodes import Block, IRError, IRFunction, IRInstr, Phi, Value, operand_is_zero
from ..ir.ssa import raise_program
from ..isa.opcodes import MASK64, OpKind, to_signed, to_unsigned
from ..isa.program import Program
from .dataflow import FORWARD, UNION, solve_nodes

#: Phi joins before the moving bounds are widened to ±∞.
WIDEN_AFTER = 3
#: Block-evaluation budget per function (runaway guard; see AbsintError).
MAX_BLOCK_EVALS = 100_000

SIGNED_MIN = -(1 << 63)
SIGNED_MAX = (1 << 63) - 1

#: Test seam: when True the engine *freezes* phi intervals at their first
#: joined value instead of widening — a classic unsound-widening bug.  The
#: absint-soundness oracle's mutation self-test flips this to prove the
#: oracle catches intervals that are too narrow.
_TEST_FREEZE_PHIS = False


class AbsintError(IRError):
    """The analysis could not be run (malformed IR or budget exceeded)."""


# ----------------------------------------------------------------------
# Interval domain
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Interval:
    """A signed 64-bit range ``[lo, hi]``; ``None`` bounds are unbounded.

    Values are the :func:`~repro.isa.opcodes.to_signed` view of the stored
    64-bit patterns (the view branch conditions and signed compares use).
    """

    lo: Optional[int] = None
    hi: Optional[int] = None

    @classmethod
    def top(cls) -> "Interval":
        return cls(None, None)

    @classmethod
    def const(cls, value: int) -> "Interval":
        signed = to_signed(to_unsigned(value))
        return cls(signed, signed)

    @property
    def is_const(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    @property
    def is_top(self) -> bool:
        return self.lo is None and self.hi is None

    def contains(self, value: int) -> bool:
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def join(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi)

    def meet(self, other: "Interval") -> "Interval":
        lo = self.lo if other.lo is None else (other.lo if self.lo is None else max(self.lo, other.lo))
        hi = self.hi if other.hi is None else (other.hi if self.hi is None else min(self.hi, other.hi))
        if lo is not None and hi is not None and lo > hi:
            # An empty meet means one side is still converging; the other
            # side alone is a sound (possibly looser) answer.
            return other
        return Interval(lo, hi)

    def widen(self, grown: "Interval") -> "Interval":
        lo = self.lo if (self.lo is not None and grown.lo is not None and grown.lo >= self.lo) else None
        hi = self.hi if (self.hi is not None and grown.hi is not None and grown.hi <= self.hi) else None
        return Interval(lo, hi)

    def render(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


def _fits(lo: Optional[int], hi: Optional[int]) -> Optional[Interval]:
    """An interval only if both bounds stay inside signed 64-bit (no wrap)."""
    if lo is None or hi is None or lo < SIGNED_MIN or hi > SIGNED_MAX:
        return None
    return Interval(lo, hi)


def _interval_add(a: Interval, b: Interval, sign: int) -> Interval:
    if a.lo is None or a.hi is None or b.lo is None or b.hi is None:
        return Interval.top()
    if sign > 0:
        fitted = _fits(a.lo + b.lo, a.hi + b.hi)
    else:
        fitted = _fits(a.lo - b.hi, a.hi - b.lo)
    return fitted if fitted is not None else Interval.top()


def _interval_mul(a: Interval, b: Interval) -> Interval:
    if a.lo is None or a.hi is None or b.lo is None or b.hi is None:
        return Interval.top()
    corners = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi]
    fitted = _fits(min(corners), max(corners))
    return fitted if fitted is not None else Interval.top()


def _nonneg(iv: Interval) -> bool:
    return iv.lo is not None and iv.lo >= 0


def _compare_const(op_name: str, a: Interval, b: Interval) -> Optional[int]:
    """Decide a compare from disjoint ranges, or None when undecidable."""
    if op_name in ("cmpeq", "fcmpeq"):
        if a.is_const and b.is_const:
            return 1 if a.lo == b.lo else 0
        if a.hi is not None and b.lo is not None and a.hi < b.lo:
            return 0
        if b.hi is not None and a.lo is not None and b.hi < a.lo:
            return 0
        return None
    if op_name == "cmpne":
        eq = _compare_const("cmpeq", a, b)
        return None if eq is None else 1 - eq
    if op_name in ("cmplt", "fcmplt"):
        if a.hi is not None and b.lo is not None and a.hi < b.lo:
            return 1
        if a.lo is not None and b.hi is not None and a.lo >= b.hi:
            return 0
        return None
    if op_name in ("cmple", "fcmple"):
        if a.hi is not None and b.lo is not None and a.hi <= b.lo:
            return 1
        if a.lo is not None and b.hi is not None and a.lo > b.hi:
            return 0
        return None
    if op_name == "cmpult":  # unsigned: decidable when both ranges non-negative
        if _nonneg(a) and _nonneg(b):
            return _compare_const("cmplt", a, b)
        return None
    return None


def _transfer_interval(instr: IRInstr, a: Interval, b: Interval) -> Interval:
    """Interval transfer for one ALU instruction with operand ranges a, b."""
    name = instr.op.name
    if name in ("li", "fli"):
        return Interval.const(instr.imm or 0)
    # Exact constant folding through the opcode's own value function: this
    # path can never diverge from the simulator's arithmetic.
    if a.is_const and b.is_const and instr.op.alu_fn is not None:
        result = instr.op.alu_fn(to_unsigned(a.lo), to_unsigned(b.lo))
        return Interval.const(result)
    if name in ("mov", "fmov", "itof", "ftoi"):
        return a
    if name in ("add", "fadd"):
        return _interval_add(a, b, +1)
    if name in ("sub", "fsub"):
        return _interval_add(a, b, -1)
    if name in ("mul", "fmul"):
        return _interval_mul(a, b)
    if name.startswith("cmp") or name.startswith("fcmp"):
        decided = _compare_const(name, a, b)
        return Interval.const(decided) if decided is not None else Interval(0, 1)
    if name == "rem" and b.is_const and b.lo != 0:
        bound = abs(b.lo) - 1
        return Interval(-bound, bound)
    if name == "and" and _nonneg(a) and _nonneg(b) and a.hi is not None and b.hi is not None:
        return Interval(0, min(a.hi, b.hi))
    if name in ("or", "xor") and _nonneg(a) and _nonneg(b) and a.hi is not None and b.hi is not None:
        bound = (1 << max(a.hi.bit_length(), b.hi.bit_length())) - 1
        return Interval(0, bound)
    if name == "srl" and b.is_const and (b.lo & 63) >= 1:
        shift = b.lo & 63
        if _nonneg(a) and a.hi is not None:
            return Interval(a.lo >> shift, a.hi >> shift)
        return Interval(0, (1 << (64 - shift)) - 1)
    if name == "sra" and b.is_const:
        shift = b.lo & 63
        if a.lo is not None and a.hi is not None:
            return Interval(a.lo >> shift, a.hi >> shift)
        if shift >= 1:
            bound = 1 << (63 - shift)
            return Interval(-bound, bound - 1)
    if name == "sll" and b.is_const and a.lo is not None and a.hi is not None:
        shift = b.lo & 63
        fitted = _fits(a.lo << shift, a.hi << shift)
        if fitted is not None and a.lo >= 0:
            return fitted
    return Interval.top()


def _branch_feasible(op_name: str, cond: Interval) -> Tuple[bool, bool]:
    """(taken possible, fallthrough possible) for a branch on ``cond``."""
    zero_in = cond.contains(0)
    only_zero = cond.is_const and cond.lo == 0
    neg_in = cond.lo is None or cond.lo < 0
    pos_in = cond.hi is None or cond.hi > 0
    if op_name in ("beq", "fbeq"):
        return zero_in, not only_zero
    if op_name in ("bne", "fbne"):
        return not only_zero, zero_in
    if op_name == "blt":
        return neg_in, not neg_in or zero_in or pos_in
    if op_name == "ble":
        return neg_in or zero_in, pos_in
    if op_name == "bgt":
        return pos_in, neg_in or zero_in
    if op_name == "bge":
        return zero_in or pos_in, neg_in
    return True, True


# ----------------------------------------------------------------------
# Symbolic address domain
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AffineExpr:
    """``offset + Σ coeff·sym`` over atom/induction symbols, mod 2**64.

    ``terms`` is a sorted tuple of ``(sym_vid, coeff)`` with nonzero coeffs.
    Because arithmetic is canonicalised mod 2**64, structural equality of
    two expressions is equality of the runtime (masked) values.
    """

    terms: Tuple[Tuple[int, int], ...] = ()
    offset: int = 0

    @classmethod
    def const(cls, value: int) -> "AffineExpr":
        return cls((), to_unsigned(value))

    @classmethod
    def atom(cls, vid: int) -> "AffineExpr":
        return cls(((vid, 1),), 0)

    @property
    def is_const(self) -> bool:
        return not self.terms

    @property
    def syms(self) -> Tuple[int, ...]:
        return tuple(sym for sym, _ in self.terms)

    def is_atom_of(self, vid: int) -> bool:
        return self.terms == ((vid, 1),) and self.offset == 0

    def _combine(self, other: "AffineExpr", sign: int) -> "AffineExpr":
        coeffs: Dict[int, int] = dict(self.terms)
        for sym, coeff in other.terms:
            coeffs[sym] = (coeffs.get(sym, 0) + sign * coeff) & MASK64
        terms = tuple(sorted((s, c) for s, c in coeffs.items() if c & MASK64))
        return AffineExpr(terms, (self.offset + sign * other.offset) & MASK64)

    def add(self, other: "AffineExpr") -> "AffineExpr":
        return self._combine(other, +1)

    def sub(self, other: "AffineExpr") -> "AffineExpr":
        return self._combine(other, -1)

    def scale(self, factor: int) -> "AffineExpr":
        factor &= MASK64
        terms = tuple(
            sorted((s, (c * factor) & MASK64) for s, c in self.terms if (c * factor) & MASK64)
        )
        return AffineExpr(terms, (self.offset * factor) & MASK64)

    def shift(self, imm: int) -> "AffineExpr":
        return AffineExpr(self.terms, (self.offset + imm) & MASK64)

    def render(self, names: Optional[Dict[int, str]] = None) -> str:
        parts = []
        for sym, coeff in self.terms:
            label = names.get(sym, f"v{sym}") if names else f"v{sym}"
            parts.append(label if coeff == 1 else f"{to_signed(coeff)}*{label}")
        parts.append(str(to_signed(self.offset)))
        return " + ".join(parts)


class Alias(enum.Enum):
    MUST = "must"
    NO = "no"
    MAY = "may"


# ----------------------------------------------------------------------
# Induction facts
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class InductionFact:
    """An affine recurrence ``phi_{n+1} = phi_n + stride`` on a loop header."""

    vid: int
    header: str
    stride: int  # signed per-iteration delta
    init: Interval
    depth: int
    #: Proven iteration count (header entries per loop entry), when the
    #: bne-zero exit pattern with a constant divisible init is matched.
    trip: Optional[int] = None
    #: The symbolic expression the recurrence starts from (None when the
    #: entry edges disagree); lets the alias domain chase an induction
    #: pointer back to the object it walks.
    init_expr: Optional[AffineExpr] = None


@dataclass(frozen=True)
class Loop:
    """One SSA natural loop: header label, body labels, nesting depth."""

    header: str
    body: frozenset
    depth: int


# ----------------------------------------------------------------------
# The per-function engine
# ----------------------------------------------------------------------
class FunctionAbsint:
    """Interval + induction + address analysis of one SSA function."""

    def __init__(self, func: IRFunction) -> None:
        self.func = func
        self.blocks: Dict[str, Block] = {b.label: b for b in func.blocks}
        self.preds: Dict[str, List[str]] = func.predecessors()
        self.succs: Dict[str, Tuple[str, ...]] = {
            b.label: func.successors(b) for b in func.blocks
        }
        self.loops: List[Loop] = [
            Loop(header, frozenset(body), depth) for header, body, depth in func.loops()
        ]
        #: vid -> interval (missing = ⊥: no evidence the value is computed).
        self.intervals: Dict[int, Interval] = {}
        #: vid -> affine address expression.
        self.exprs: Dict[int, AffineExpr] = {}
        #: vid -> defining block label (None for entry values).
        self.def_block: Dict[int, Optional[str]] = {}
        self.induction: Dict[int, InductionFact] = {}
        #: labels proven reachable under interval-pruned edges.
        self.reachable: Set[str] = set()
        self.executable_edges: Set[Tuple[str, str]] = set()
        #: branch instr id() -> proven outcome (True = always taken).
        self._decisions: Dict[int, bool] = {}
        self._refinements: Dict[int, Interval] = {}
        self._index_def_sites()
        self._run_intervals()
        self._run_addresses()
        self._recognise_induction()
        if self._refinements:
            self._run_intervals()  # re-run with proven loop-phi ranges pinned

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _index_def_sites(self) -> None:
        for value in self.func.entry_values:
            self.def_block[value.vid] = None
        self._users: Dict[int, Set[str]] = {}
        for block in self.func.blocks:
            for phi in block.phis:
                self.def_block[phi.dst.vid] = block.label
                for value in phi.args.values():
                    self._users.setdefault(value.vid, set()).add(block.label)
            for instr in block.instrs:
                if isinstance(instr.defined, Value):
                    self.def_block[instr.defined.vid] = block.label
                for value in instr.implicit_defs:
                    self.def_block[value.vid] = block.label
                for op in instr.used:
                    if isinstance(op, Value):
                        self._users.setdefault(op.vid, set()).add(block.label)

    # ------------------------------------------------------------------
    # Interval fixpoint (sparse conditional)
    # ------------------------------------------------------------------
    def _operand_interval(self, op) -> Interval:
        if op is None:
            return Interval.const(0)
        if operand_is_zero(op):
            return Interval.const(0)
        if isinstance(op, Value):
            return self.intervals.get(op.vid, Interval.top())
        return Interval.top()

    def _run_intervals(self) -> None:
        self.intervals = {}
        self._decisions = {}
        self.executable_edges = set()
        entry = self.func.entry.label
        self.reachable = {entry}
        for value in self.func.entry_values:
            self.intervals[value.vid] = Interval.top()
        phi_updates: Dict[int, int] = {}
        worklist = deque([entry])
        queued = {entry}
        evals = 0
        while worklist:
            label = worklist.popleft()
            queued.discard(label)
            evals += 1
            if evals > MAX_BLOCK_EVALS:
                raise AbsintError(f"{self.func.name}: interval fixpoint budget exceeded")
            changed = self._eval_block(label, phi_updates)
            for succ in self._feasible_successors(label):
                edge = (label, succ)
                if edge not in self.executable_edges:
                    self.executable_edges.add(edge)
                    self.reachable.add(succ)
                    if succ not in queued:
                        worklist.append(succ)
                        queued.add(succ)
            for vid in changed:
                for user in self._users.get(vid, ()):
                    if user in self.reachable and user not in queued:
                        worklist.append(user)
                        queued.add(user)

    def _eval_block(self, label: str, phi_updates: Dict[int, int]) -> List[int]:
        changed: List[int] = []
        block = self.blocks[label]
        for phi in block.phis:
            vid = phi.dst.vid
            old = self.intervals.get(vid)
            if _TEST_FREEZE_PHIS and old is not None:
                continue  # seeded widening bug: phi ranges frozen too early
            joined: Optional[Interval] = None
            for pred, value in phi.args.items():
                if (pred, label) not in self.executable_edges:
                    continue
                if value.vid == vid:
                    continue  # self-loop argument contributes nothing new
                arg = self.intervals.get(value.vid)
                if arg is None:
                    continue  # ⊥: that path has produced no value yet
                joined = arg if joined is None else joined.join(arg)
            if joined is None:
                continue
            if old is not None:
                grown = old.join(joined)
                if grown != old:
                    phi_updates[vid] = phi_updates.get(vid, 0) + 1
                    if phi_updates[vid] > WIDEN_AFTER:
                        grown = old.widen(grown)
                joined = grown
            refinement = self._refinements.get(vid)
            if refinement is not None:
                joined = joined.meet(refinement)
            if joined != old:
                self.intervals[vid] = joined
                changed.append(vid)
        for instr in block.instrs:
            if instr.op.kind is OpKind.ALU and isinstance(instr.defined, Value):
                a = self._operand_interval(instr.src1)
                b = (
                    Interval.const(instr.imm)
                    if instr.src2 is None and instr.imm is not None
                    else self._operand_interval(instr.src2)
                )
                new = _transfer_interval(instr, a, b)
            elif isinstance(instr.defined, Value):
                new = Interval.top()  # loads and call link values
            else:
                new = None
            if new is not None:
                vid = instr.defined.vid
                old = self.intervals.get(vid)
                if old is not None:
                    new = old.join(new)
                if new != old:
                    self.intervals[vid] = new
                    changed.append(vid)
            for value in instr.implicit_defs:
                if value.vid not in self.intervals:
                    self.intervals[value.vid] = Interval.top()
                    changed.append(value.vid)
        return changed

    def _feasible_successors(self, label: str) -> Tuple[str, ...]:
        block = self.blocks[label]
        succs = self.succs[label]
        term = block.terminator
        if term is None or term.op.kind is not OpKind.BRANCH or len(succs) < 2:
            if term is not None and term.op.kind is OpKind.BRANCH and len(succs) == 1:
                return succs  # branch target == fallthrough
            return succs
        cond = self._operand_interval(term.src1)
        taken_ok, fall_ok = _branch_feasible(term.op.name, cond)
        out = []
        if taken_ok:
            out.append(term.target)
        if fall_ok and succs[-1] != term.target:
            out.append(succs[-1])
        if taken_ok != fall_ok:
            self._decisions[id(term)] = taken_ok
        else:
            self._decisions.pop(id(term), None)
        return tuple(out)

    # ------------------------------------------------------------------
    # Address fixpoint
    # ------------------------------------------------------------------
    def _operand_expr(self, op) -> AffineExpr:
        if op is None or operand_is_zero(op):
            return AffineExpr.const(0)
        if isinstance(op, Value):
            iv = self.intervals.get(op.vid)
            if iv is not None and iv.is_const:
                return AffineExpr.const(iv.lo)
            return self.exprs.get(op.vid, AffineExpr.atom(op.vid))
        return AffineExpr.const(0)

    def _transfer_expr(self, instr: IRInstr) -> AffineExpr:
        name = instr.op.name
        dst = instr.defined
        a = self._operand_expr(instr.src1)
        if instr.src2 is None and instr.imm is not None:
            b = AffineExpr.const(instr.imm)
        else:
            b = self._operand_expr(instr.src2)
        if name in ("li", "fli"):
            return AffineExpr.const(instr.imm or 0)
        if name in ("mov", "fmov", "itof", "ftoi"):
            return a
        if name in ("add", "fadd"):
            return a.add(b)
        if name in ("sub", "fsub"):
            return a.sub(b)
        if name in ("mul", "fmul"):
            if a.is_const:
                return b.scale(a.offset)
            if b.is_const:
                return a.scale(b.offset)
        if name == "sll" and b.is_const and (b.offset & 63) == b.offset:
            return a.scale(1 << b.offset)
        return AffineExpr.atom(dst.vid)

    def _run_addresses(self) -> None:
        self.exprs = {}
        for value in self.func.entry_values:
            self.exprs[value.vid] = AffineExpr.atom(value.vid)
        forced_atoms: Set[int] = set()
        changed = True
        passes = 0
        max_passes = 4 * len(self.func.blocks) + 16
        while changed:
            passes += 1
            if passes > max_passes:
                # Not converged: claiming any phi expression now would be
                # unsound (equality means runtime equality).  Pin every phi
                # to an opaque atom and let straight-line propagation finish.
                for block in self.func.blocks:
                    for phi in block.phis:
                        forced_atoms.add(phi.dst.vid)
                        self.exprs[phi.dst.vid] = AffineExpr.atom(phi.dst.vid)
            changed = False
            for block in self.func.blocks:
                if block.label not in self.reachable:
                    continue
                for phi in block.phis:
                    vid = phi.dst.vid
                    if vid in forced_atoms:
                        continue
                    merged: Optional[AffineExpr] = None
                    conflict = False
                    for pred, value in phi.args.items():
                        if (pred, block.label) not in self.executable_edges:
                            continue
                        if value.vid == vid:
                            continue
                        arg = self._operand_expr(value)
                        if arg.is_atom_of(vid):
                            continue  # still referring back to this phi
                        if merged is None:
                            merged = arg
                        elif arg != merged:
                            conflict = True
                    new = AffineExpr.atom(vid) if (conflict or merged is None) else merged
                    if conflict:
                        forced_atoms.add(vid)
                    if self.exprs.get(vid) != new:
                        self.exprs[vid] = new
                        changed = True
                for instr in block.instrs:
                    if isinstance(instr.defined, Value):
                        new = self._transfer_expr(instr)
                        vid = instr.defined.vid
                        if self.exprs.get(vid) != new:
                            self.exprs[vid] = new
                            changed = True
                    for value in instr.implicit_defs:
                        if value.vid not in self.exprs:
                            self.exprs[value.vid] = AffineExpr.atom(value.vid)
                            changed = True

    # ------------------------------------------------------------------
    # Induction recognition + trip proofs
    # ------------------------------------------------------------------
    def _recognise_induction(self) -> None:
        self.induction = {}
        self._refinements = {}
        for loop in self.loops:
            if loop.header not in self.reachable:
                continue
            header = self.blocks[loop.header]
            back_preds = [p for p in self.preds[loop.header] if p in loop.body]
            for phi in header.phis:
                vid = phi.dst.vid
                expr = self.exprs.get(vid)
                if expr is None or not expr.is_atom_of(vid):
                    continue
                stride: Optional[int] = None
                entry_init: Optional[Interval] = None
                init_expr: Optional[AffineExpr] = None
                init_exprs_agree = True
                recognised = True
                for pred, value in phi.args.items():
                    if (pred, loop.header) not in self.executable_edges:
                        continue
                    arg_interval = self.intervals.get(value.vid, Interval.top())
                    if pred in loop.body:
                        arg_expr = self.exprs.get(value.vid)
                        if (
                            arg_expr is None
                            or arg_expr.terms != ((vid, 1),)
                        ):
                            recognised = False
                            break
                        step = to_signed(arg_expr.offset)
                        if stride is None:
                            stride = step
                        elif stride != step:
                            recognised = False
                            break
                    else:
                        entry_init = (
                            arg_interval if entry_init is None else entry_init.join(arg_interval)
                        )
                        arg_expr = self._operand_expr(value)
                        if init_expr is None:
                            init_expr = arg_expr
                        elif arg_expr != init_expr:
                            init_exprs_agree = False
                if not recognised or stride is None or entry_init is None:
                    continue
                trip = self._prove_trip(loop, phi, back_preds, entry_init, stride)
                fact = InductionFact(
                    vid=vid,
                    header=loop.header,
                    stride=stride,
                    init=entry_init,
                    depth=loop.depth,
                    trip=trip,
                    init_expr=init_expr if init_exprs_agree else None,
                )
                self.induction[vid] = fact
                if trip is not None and entry_init.is_const:
                    # Header entries see c0, c0+s, ..., c0+(trip-1)*s; with the
                    # divisible countdown exit the last value is exactly -s
                    # (stride<0) or -s's mirror (stride>0), and nothing wraps.
                    c0 = entry_init.lo
                    last = c0 + (trip - 1) * stride
                    self._refinements[vid] = Interval(min(c0, last), max(c0, last))

    def _prove_trip(
        self,
        loop: Loop,
        phi: Phi,
        back_preds: List[str],
        init: Interval,
        stride: int,
    ) -> Optional[int]:
        """Trip count for the ``op v; bne v, header`` countdown exit shape."""
        if not init.is_const or stride == 0 or len(back_preds) != 1:
            return None
        latch = self.blocks[back_preds[0]]
        term = latch.terminator
        if term is None or term.op.name != "bne" or term.target != loop.header:
            return None
        next_value = phi.args.get(back_preds[0])
        if not isinstance(term.src1, Value) or next_value is None:
            return None
        if term.src1.vid != next_value.vid:
            return None
        c0 = init.lo
        if stride < 0 and c0 > 0 and c0 % (-stride) == 0:
            return c0 // (-stride)
        if stride > 0 and c0 < 0 and (-c0) % stride == 0:
            return (-c0) // stride
        return None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def reachable_under_facts(self) -> Set[str]:
        """Reachability under feasible edges, via the shared fixpoint core.

        Recomputes what the engine discovered incrementally — one more
        client of :func:`solve_nodes`, and a cross-check that the pruned
        edge set and the worklist agree.
        """
        order = [b.label for b in self.func.blocks]
        edges = {label: [] for label in order}
        for pred, succ in self.executable_edges:
            edges[pred].append(succ)
        empty = {label: set() for label in order}
        solution = solve_nodes(
            order,
            lambda label: edges[label],
            dict(empty),
            dict(empty),
            direction=FORWARD,
            meet=UNION,
            boundary={"reached"},
            boundary_nodes={self.func.entry.label},
        )
        return {label for label in order if solution.input[label]}

    def interval_of(self, value: Value) -> Interval:
        return self.intervals.get(value.vid, Interval.top())

    def expr_of(self, value: Value) -> AffineExpr:
        iv = self.intervals.get(value.vid)
        if iv is not None and iv.is_const:
            return AffineExpr.const(iv.lo)
        return self.exprs.get(value.vid, AffineExpr.atom(value.vid))

    def addr_expr(self, instr: IRInstr) -> Optional[AffineExpr]:
        """The address expression of a memory instruction, or None."""
        if not instr.op.is_mem:
            return None
        return self._operand_expr(instr.src1).shift(instr.imm or 0)

    def is_induction_sym(self, vid: int) -> bool:
        return vid in self.induction

    def invariant_in(self, expr: AffineExpr, body: Iterable[str]) -> bool:
        """True when no symbol of ``expr`` is (re)defined inside ``body``."""
        labels = set(body)
        return all(self.def_block.get(sym) not in labels for sym in expr.syms)

    def alias(self, a: Optional[AffineExpr], b: Optional[AffineExpr]) -> Alias:
        """Must/no/may verdict for two address expressions (same iteration).

        Distinct non-induction base atoms are assumed to address distinct
        objects (allocation-site model, see module docstring); everything
        else is decided arithmetically mod 2**64.
        """
        if a is None or b is None:
            return Alias.MAY
        if a.terms == b.terms:
            return Alias.MUST if a.offset == b.offset else Alias.NO
        diff = a.sub(b)
        facts = [self.induction.get(s) for s, _ in diff.terms]
        if (
            diff.terms
            and all(f is not None and f.init.is_const for f in facts)
            and len({f.header for f in facts}) == 1
        ):
            # Every residual term is an induction variable of the *same*
            # header, so they advance in lockstep on one iteration counter:
            # a - b ≡ Σ cᵢ·(c0ᵢ + n·strideᵢ) + delta (mod 2**64).  The
            # recurrences give exact orbits, so solve the linear congruence
            # for n ≥ 0 in exact modular arithmetic — wraparound is part of
            # the model, not a soundness hole.
            modulus = 1 << 64
            step = sum(c * f.stride for (_, c), f in zip(diff.terms, facts)) % modulus
            rhs = -(diff.offset + sum(c * f.init.lo for (_, c), f in zip(diff.terms, facts)))
            rhs %= modulus
            trips = [f.trip for f in facts if f.trip is not None]
            if step == 0:
                return Alias.MAY if rhs == 0 else Alias.NO
            g = math.gcd(step, modulus)
            if rhs % g != 0:
                return Alias.NO
            if trips:
                period = modulus // g
                n0 = (rhs // g) * pow(step // g, -1, period) % period
                if n0 >= min(trips):
                    return Alias.NO
        roots_a = self.object_roots(a)
        roots_b = self.object_roots(b)
        if roots_a and roots_b and not roots_a & roots_b:
            # Allocation-site object model: pointer chains seeded by
            # different opaque values (or different literal bases) address
            # different objects.  This is the symbolic generalisation of
            # the flat estimator's "different base register, different
            # object" assumption — per seed value instead of per register
            # name, and validated dynamically by the soundness oracle.
            return Alias.NO
        return Alias.MAY

    def object_roots(self, expr: Optional[AffineExpr], _depth: int = 0) -> Optional[Set[Tuple]]:
        """The allocation seeds an address expression can point into.

        Atoms root themselves; induction variables are chased through their
        initialisation expression (an induction pointer walks whatever
        object it started in); a pure-constant expression roots at its
        literal value.  Returns None when any component is unchaseable —
        callers must then assume aliasing.
        """
        if expr is None or _depth > 8:
            return None
        roots: Set[Tuple] = set()
        if not expr.terms:
            roots.add(("const", expr.offset))
            return roots
        for sym in expr.syms:
            fact = self.induction.get(sym)
            if fact is None:
                roots.add(("atom", sym))
                continue
            sub = self.object_roots(fact.init_expr, _depth + 1)
            if sub is None:
                return None
            roots |= sub
        return roots


# ----------------------------------------------------------------------
# Whole-program facade over flat pcs
# ----------------------------------------------------------------------
class ProgramAbsint:
    """Raise a flat program to SSA and index the absint facts by flat pc."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.module = raise_program(program)
        self.functions: Dict[str, FunctionAbsint] = {}
        #: flat pc -> (function analysis, SSA instruction, block label).
        self._by_pc: Dict[int, Tuple[FunctionAbsint, IRInstr, str]] = {}
        #: SSA (function name, header label) -> flat header pc.
        self._flat_header: Dict[Tuple[str, str], int] = {}
        for func in self.module.functions:
            analysis = FunctionAbsint(func)
            self.functions[func.name] = analysis
            for block in func.blocks:
                for instr in block.instrs:
                    if instr.origin_pc is not None:
                        self._by_pc[instr.origin_pc] = (analysis, instr, block.label)
            for loop in analysis.loops:
                header = func.block(loop.header)
                for instr in header.instrs:
                    if instr.origin_pc is not None:
                        self._flat_header[(func.name, loop.header)] = instr.origin_pc
                        break

    # ------------------------------------------------------------------
    def lookup(self, pc: int) -> Optional[Tuple[FunctionAbsint, IRInstr, str]]:
        return self._by_pc.get(pc)

    def interval_at(self, pc: int) -> Optional[Interval]:
        """Interval of the value defined at flat ``pc`` (None: no value)."""
        entry = self._by_pc.get(pc)
        if entry is None:
            return None
        analysis, instr, _ = entry
        if not isinstance(instr.defined, Value):
            return None
        return analysis.intervals.get(instr.defined.vid, Interval.top())

    def branch_decision(self, pc: int) -> Optional[bool]:
        """True/False when the branch at ``pc`` is proven one-way."""
        entry = self._by_pc.get(pc)
        if entry is None:
            return None
        analysis, instr, _ = entry
        if instr.op.kind is not OpKind.BRANCH:
            return None
        return analysis._decisions.get(id(instr))

    def unreachable_pcs(self) -> Set[int]:
        """Flat pcs inside blocks proven unreachable by edge pruning."""
        out: Set[int] = set()
        for analysis in self.functions.values():
            for block in analysis.func.blocks:
                if block.label in analysis.reachable:
                    continue
                for instr in block.instrs:
                    if instr.origin_pc is not None:
                        out.add(instr.origin_pc)
        return out

    def addr_expr_at(self, pc: int) -> Optional[AffineExpr]:
        entry = self._by_pc.get(pc)
        if entry is None:
            return None
        analysis, instr, _ = entry
        return analysis.addr_expr(instr)

    def loop_depth_at(self, pc: int) -> int:
        entry = self._by_pc.get(pc)
        if entry is None:
            return 0
        analysis, _, label = entry
        depth = 0
        for loop in analysis.loops:
            if label in loop.body and loop.depth > depth:
                depth = loop.depth
        return depth

    def body_labels(self, pc: int, flat_body: Iterable[int]) -> Set[str]:
        """SSA block labels covering a flat loop body (1:1 raise)."""
        labels: Set[str] = set()
        for body_pc in flat_body:
            entry = self._by_pc.get(body_pc)
            if entry is not None:
                labels.add(entry[2])
        return labels

    def flat_header_pc(self, func_name: str, header_label: str) -> Optional[int]:
        return self._flat_header.get((func_name, header_label))

    def induction_facts(self) -> List[Tuple[str, InductionFact]]:
        out = []
        for name, analysis in sorted(self.functions.items()):
            for fact in analysis.induction.values():
                out.append((name, fact))
        return out

    # ------------------------------------------------------------------
    def live_values(self, analysis: FunctionAbsint) -> Set[int]:
        """Transitively observable values, restricted to reachable blocks.

        Roots are the operands of side-effecting instructions (stores,
        branches, calls, exits); liveness flows from a live definition to
        its operands and from a live phi to its arguments.  A load whose
        value is not in this set is provably dropped.
        """
        live: Set[int] = set()
        worklist: List[Value] = []

        def mark(value) -> None:
            if isinstance(value, Value) and value.vid not in live:
                live.add(value.vid)
                worklist.append(value)

        defs: Dict[int, object] = {}
        for block in analysis.func.blocks:
            if block.label not in analysis.reachable:
                continue
            for phi in block.phis:
                defs[phi.dst.vid] = phi
            for instr in block.instrs:
                if isinstance(instr.defined, Value):
                    defs[instr.defined.vid] = instr
                rooted = instr.op.kind in (
                    OpKind.STORE,
                    OpKind.BRANCH,
                    OpKind.JUMP,
                    OpKind.CALL,
                    OpKind.INDIRECT,
                    OpKind.HALT,
                )
                if rooted:
                    for op in instr.used:
                        mark(op)
                    for value in instr.implicit_uses:
                        mark(value)
        while worklist:
            value = worklist.pop()
            definer = defs.get(value.vid)
            if isinstance(definer, Phi):
                for arg in definer.args.values():
                    mark(arg)
            elif isinstance(definer, IRInstr):
                for op in definer.used:
                    mark(op)
                for arg in definer.implicit_uses:
                    mark(arg)
        return live
