"""Canonical per-instruction register effects (defs and uses).

This is the single source of truth for what an instruction defines and uses,
including the calling-convention implicit effects the paper assumes in
Section 7.3: *all non-volatile registers are live at procedure entrance and
exit, and each procedure call uses all argument registers*.  Concretely:

* ``jsr``  — explicitly defines its link register; implicitly *uses* the
  argument registers (int and fp) and the stack pointer, and implicitly
  *defines* every volatile register (the callee may clobber them).
* ``ret`` / ``jmp`` / ``halt`` (procedure exits) — implicitly use every
  non-volatile register plus the stack pointer.
* procedure entry — implicitly defines every register (arguments,
  caller-saved garbage, callee-saved values all "arrive" here).

Both the compiler back end (:mod:`repro.compiler.liveness`, webs,
reallocation) and the analysis layer (:mod:`repro.analysis.facts`, the
verifier) import from here; the SSA mid-end (:mod:`repro.ir`) applies the
same effects when pinning boundary-crossing values to architectural
registers.
"""

from __future__ import annotations

from typing import FrozenSet, Set, Tuple

from ..isa.instructions import Instruction
from ..isa.opcodes import OpKind
from ..isa.registers import (
    ARG_REGS,
    F,
    FP_ARG_REGS,
    R,
    STACK_POINTER,
    Reg,
    is_volatile,
)

#: Every architectural register except the hardwired zeros.
ALL_REGS: Tuple[Reg, ...] = tuple(r for r in R if not r.is_zero) + tuple(f for f in F if not f.is_zero)
#: Caller-saved registers (clobbered by a call).
VOLATILES: Tuple[Reg, ...] = tuple(r for r in ALL_REGS if is_volatile(r))
#: Callee-saved registers (preserved across calls, live at exits).
NONVOLATILES: Tuple[Reg, ...] = tuple(r for r in ALL_REGS if not is_volatile(r))
#: Implicit uses of a ``jsr``: the outgoing arguments plus the stack pointer.
CALL_USES: FrozenSet[Reg] = frozenset(ARG_REGS) | frozenset(FP_ARG_REGS) | {STACK_POINTER}
#: Implicit uses of a procedure exit (``ret``/``jmp``/``halt``).
EXIT_USES: FrozenSet[Reg] = frozenset(NONVOLATILES) | {STACK_POINTER}


def explicit_defs(inst: Instruction) -> Tuple[Reg, ...]:
    dst = inst.writes
    return (dst,) if dst is not None else ()


def explicit_uses(inst: Instruction) -> Tuple[Reg, ...]:
    return tuple(r for r in inst.reads if not r.is_zero)


def implicit_defs(inst: Instruction) -> FrozenSet[Reg]:
    """Registers clobbered by convention (callee clobbers at a call site)."""
    if inst.op.kind is OpKind.CALL:
        return frozenset(VOLATILES)
    return frozenset()


def implicit_uses(inst: Instruction) -> FrozenSet[Reg]:
    """Registers consumed by convention (call arguments, exit live-outs)."""
    if inst.op.kind is OpKind.CALL:
        return CALL_USES
    if inst.op.kind in (OpKind.INDIRECT, OpKind.HALT):
        return EXIT_USES
    return frozenset()


def defs_and_uses(inst: Instruction) -> Tuple[Set[Reg], Set[Reg]]:
    """(defs, uses) including calling-convention implicit effects."""
    defs = set(explicit_defs(inst)) | set(implicit_defs(inst))
    uses = set(explicit_uses(inst)) | set(implicit_uses(inst))
    return defs, uses
