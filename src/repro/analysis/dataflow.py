"""Generic CFG dataflow engine (fixpoint solver over basic blocks).

One engine, many analyses: an analysis is a :class:`DataflowProblem` with a
direction (forward/backward), a meet operator (union for *may* analyses,
intersection for *must* analyses), and per-instruction ``gen``/``kill`` sets
over an arbitrary hashable fact domain.  :func:`solve` runs a worklist
fixpoint at block granularity over :meth:`Program.basic_blocks`, then lowers
the solution to instruction grain in a single pass per block.

Concrete instances in this repo:

* liveness (:mod:`repro.compiler.liveness`) — backward, union,
  gen = uses, kill = defs;
* reaching definitions (:mod:`repro.analysis.facts`) — forward, union,
  gen = defs at pc, kill = other defs of the same registers;
* available copies (:mod:`repro.analysis.facts`) — forward, intersection,
  gen = the copy made by a ``mov``, kill = copies touching defined registers.

The transfer function is the standard gen/kill form:
``out = gen ∪ (in − kill)`` (forward) or ``in = gen ∪ (out − kill)``
(backward), composed per block for the fixpoint and replayed per instruction
for the final facts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Hashable, List, Sequence, Set, Tuple

from ..isa.program import BasicBlock, Procedure, Program

FORWARD = "forward"
BACKWARD = "backward"
UNION = "union"
INTERSECT = "intersect"

Fact = Hashable
Node = Hashable


class DataflowProblem:
    """Base class for gen/kill dataflow problems.

    Subclasses set :attr:`direction` and :attr:`meet`, and implement
    :meth:`gen` and :meth:`kill`.  ``boundary()`` provides the facts flowing
    in at the procedure entry (forward) or at every procedure exit
    (backward); ``universe()`` is required for intersection problems (the
    optimistic initial value for unvisited blocks).
    """

    direction: str = FORWARD
    meet: str = UNION

    def gen(self, pc: int) -> Set[Fact]:
        raise NotImplementedError

    def kill(self, pc: int) -> Set[Fact]:
        raise NotImplementedError

    def boundary(self) -> Set[Fact]:
        return set()

    def universe(self) -> Set[Fact]:
        return set()


@dataclass
class DataflowResult:
    """Instruction-grain solution of one problem over one procedure."""

    proc: Procedure
    in_facts: Dict[int, FrozenSet[Fact]]
    out_facts: Dict[int, FrozenSet[Fact]]
    block_in: Dict[int, FrozenSet[Fact]]
    block_out: Dict[int, FrozenSet[Fact]]


def _block_gen_kill(
    problem: DataflowProblem, block: BasicBlock
) -> Tuple[Set[Fact], Set[Fact]]:
    """Compose per-instruction transfers into one block-level gen/kill."""
    pcs = block.pcs() if problem.direction == FORWARD else reversed(list(block.pcs()))
    gen: Set[Fact] = set()
    kill: Set[Fact] = set()
    for pc in pcs:
        g, k = problem.gen(pc), problem.kill(pc)
        gen = g | (gen - k)
        kill = (kill | k) - g
    return gen, kill


@dataclass
class NodeSolution:
    """Fixpoint solution over abstract CFG nodes, in *solver orientation*.

    ``input`` is the meet input of each node (facts at node entry for a
    forward problem, at node exit for a backward one); ``output`` is the
    transfer output on the opposite side.
    """

    input: Dict[Node, Set[Fact]]
    output: Dict[Node, Set[Fact]]


def solve_nodes(
    order: Sequence[Node],
    successors: Callable[[Node], Sequence[Node]],
    gen: Dict[Node, Set[Fact]],
    kill: Dict[Node, Set[Fact]],
    *,
    direction: str = FORWARD,
    meet: str = UNION,
    boundary: Set[Fact] = frozenset(),
    universe: Set[Fact] = frozenset(),
    boundary_nodes: Set[Node] = frozenset(),
) -> NodeSolution:
    """The worklist fixpoint core, over arbitrary hashable CFG nodes.

    ``order`` lists every node in a good iteration order (roughly topological
    for forward problems; the solver reverses it for backward ones).
    ``boundary_nodes`` receive the ``boundary`` facts on every meet (the
    entry node forward, the exit nodes backward); a boundary node with
    incoming edges — e.g. a loop back-edge into the entry — unions them in.
    Both the flat-ISA :func:`solve` and the SSA mid-end's value liveness
    (:mod:`repro.ir`) are clients of this core.
    """
    if direction == FORWARD:
        edges = {n: list(successors(n)) for n in order}
    else:
        edges = {n: [] for n in order}
        for n in order:
            for succ in successors(n):
                edges[succ].append(n)
    # ``sources[n]`` are the nodes whose solution meets into ``n``:
    # predecessors for a forward problem, successors for a backward one.
    sources: Dict[Node, List[Node]] = {n: [] for n in order}
    for start, outs in edges.items():
        for out in outs:
            sources[out].append(start)

    is_intersect = meet == INTERSECT
    boundary = set(boundary)
    universe = set(universe) if is_intersect else set()

    # meet-input and transfer-output per node, in solver orientation.
    state_in: Dict[Node, Set[Fact]] = {}
    state_out: Dict[Node, Set[Fact]] = {}
    for n in order:
        if n in boundary_nodes:
            state_in[n] = set(boundary)
        else:
            state_in[n] = set(universe) if is_intersect else set()
        state_out[n] = gen[n] | (state_in[n] - kill[n])

    sweep = list(order) if direction == FORWARD else list(reversed(list(order)))
    changed = True
    while changed:
        changed = False
        for n in sweep:
            preds = sources[n]
            if n in boundary_nodes:
                merged = set(boundary)
                for p in preds:
                    merged |= state_out[p]  # e.g. loop back-edges into the entry block
            elif preds:
                if is_intersect:
                    merged = set(state_out[preds[0]])
                    for p in preds[1:]:
                        merged &= state_out[p]
                else:
                    merged = set()
                    for p in preds:
                        merged |= state_out[p]
            else:
                # Unreachable (forward) or exitless-loop (backward) node.
                merged = set(universe) if is_intersect else set()
            new_out = gen[n] | (merged - kill[n])
            if merged != state_in[n] or new_out != state_out[n]:
                state_in[n] = merged
                state_out[n] = new_out
                changed = True
    return NodeSolution(input=state_in, output=state_out)


def solve(program: Program, proc: Procedure, problem: DataflowProblem) -> DataflowResult:
    """Run the fixpoint and lower to instruction grain."""
    blocks = program.basic_blocks(proc)

    gen: Dict[int, Set[Fact]] = {}
    kill: Dict[int, Set[Fact]] = {}
    for block in blocks:
        gen[block.start], kill[block.start] = _block_gen_kill(problem, block)

    by_start = {b.start: b for b in blocks}
    if problem.direction == FORWARD:
        boundary_nodes = {proc.start} & set(by_start)
    else:
        boundary_nodes = {b.start for b in blocks if not b.successors}
    solution = solve_nodes(
        [b.start for b in blocks],
        lambda start: by_start[start].successors,
        gen,
        kill,
        direction=problem.direction,
        meet=problem.meet,
        boundary=set(problem.boundary()),
        universe=set(problem.universe()),
        boundary_nodes=boundary_nodes,
    )
    state_in = solution.input

    # Lower to instruction grain by replaying per-instruction transfers.
    in_facts: Dict[int, FrozenSet[Fact]] = {}
    out_facts: Dict[int, FrozenSet[Fact]] = {}
    block_in: Dict[int, FrozenSet[Fact]] = {}
    block_out: Dict[int, FrozenSet[Fact]] = {}
    for block in blocks:
        entry_state = state_in[block.start]
        if problem.direction == FORWARD:
            block_in[block.start] = frozenset(entry_state)
            live = set(entry_state)
            for pc in block.pcs():
                in_facts[pc] = frozenset(live)
                live = problem.gen(pc) | (live - problem.kill(pc))
                out_facts[pc] = frozenset(live)
            block_out[block.start] = frozenset(live)
        else:
            block_out[block.start] = frozenset(entry_state)
            live = set(entry_state)
            for pc in reversed(list(block.pcs())):
                out_facts[pc] = frozenset(live)
                live = problem.gen(pc) | (live - problem.kill(pc))
                in_facts[pc] = frozenset(live)
            block_in[block.start] = frozenset(live)
    return DataflowResult(
        proc=proc, in_facts=in_facts, out_facts=out_facts, block_in=block_in, block_out=block_out
    )
