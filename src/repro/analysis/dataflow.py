"""Generic CFG dataflow engine (fixpoint solver over basic blocks).

One engine, many analyses: an analysis is a :class:`DataflowProblem` with a
direction (forward/backward), a meet operator (union for *may* analyses,
intersection for *must* analyses), and per-instruction ``gen``/``kill`` sets
over an arbitrary hashable fact domain.  :func:`solve` runs a worklist
fixpoint at block granularity over :meth:`Program.basic_blocks`, then lowers
the solution to instruction grain in a single pass per block.

Concrete instances in this repo:

* liveness (:mod:`repro.compiler.liveness`) — backward, union,
  gen = uses, kill = defs;
* reaching definitions (:mod:`repro.analysis.facts`) — forward, union,
  gen = defs at pc, kill = other defs of the same registers;
* available copies (:mod:`repro.analysis.facts`) — forward, intersection,
  gen = the copy made by a ``mov``, kill = copies touching defined registers.

The transfer function is the standard gen/kill form:
``out = gen ∪ (in − kill)`` (forward) or ``in = gen ∪ (out − kill)``
(backward), composed per block for the fixpoint and replayed per instruction
for the final facts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Set, Tuple

from ..isa.program import BasicBlock, Procedure, Program

FORWARD = "forward"
BACKWARD = "backward"
UNION = "union"
INTERSECT = "intersect"

Fact = Hashable


class DataflowProblem:
    """Base class for gen/kill dataflow problems.

    Subclasses set :attr:`direction` and :attr:`meet`, and implement
    :meth:`gen` and :meth:`kill`.  ``boundary()`` provides the facts flowing
    in at the procedure entry (forward) or at every procedure exit
    (backward); ``universe()`` is required for intersection problems (the
    optimistic initial value for unvisited blocks).
    """

    direction: str = FORWARD
    meet: str = UNION

    def gen(self, pc: int) -> Set[Fact]:
        raise NotImplementedError

    def kill(self, pc: int) -> Set[Fact]:
        raise NotImplementedError

    def boundary(self) -> Set[Fact]:
        return set()

    def universe(self) -> Set[Fact]:
        return set()


@dataclass
class DataflowResult:
    """Instruction-grain solution of one problem over one procedure."""

    proc: Procedure
    in_facts: Dict[int, FrozenSet[Fact]]
    out_facts: Dict[int, FrozenSet[Fact]]
    block_in: Dict[int, FrozenSet[Fact]]
    block_out: Dict[int, FrozenSet[Fact]]


def _block_gen_kill(
    problem: DataflowProblem, block: BasicBlock
) -> Tuple[Set[Fact], Set[Fact]]:
    """Compose per-instruction transfers into one block-level gen/kill."""
    pcs = block.pcs() if problem.direction == FORWARD else reversed(list(block.pcs()))
    gen: Set[Fact] = set()
    kill: Set[Fact] = set()
    for pc in pcs:
        g, k = problem.gen(pc), problem.kill(pc)
        gen = g | (gen - k)
        kill = (kill | k) - g
    return gen, kill


def solve(program: Program, proc: Procedure, problem: DataflowProblem) -> DataflowResult:
    """Run the fixpoint and lower to instruction grain."""
    blocks = program.basic_blocks(proc)
    if problem.direction == FORWARD:
        edges = {b.start: list(b.successors) for b in blocks}
    else:
        edges = {b.start: [] for b in blocks}
        for b in blocks:
            for succ in b.successors:
                edges[succ].append(b.start)
    # ``sources[b]`` are the blocks whose solution meets into ``b``:
    # predecessors for a forward problem, successors for a backward one.
    sources: Dict[int, List[int]] = {b.start: [] for b in blocks}
    for start, outs in edges.items():
        for out in outs:
            sources[out].append(start)

    gen: Dict[int, Set[Fact]] = {}
    kill: Dict[int, Set[Fact]] = {}
    for block in blocks:
        gen[block.start], kill[block.start] = _block_gen_kill(problem, block)

    boundary = set(problem.boundary())
    is_intersect = problem.meet == INTERSECT
    universe = set(problem.universe()) if is_intersect else set()

    def is_boundary_block(block: BasicBlock) -> bool:
        if problem.direction == FORWARD:
            return block.start == proc.start
        return not block.successors

    # meet-input and transfer-output per block, in solver orientation
    # (forward: input = block entry; backward: input = block exit).
    state_in: Dict[int, Set[Fact]] = {}
    state_out: Dict[int, Set[Fact]] = {}
    for block in blocks:
        if is_boundary_block(block):
            state_in[block.start] = set(boundary)
        else:
            state_in[block.start] = set(universe) if is_intersect else set()
        state_out[block.start] = gen[block.start] | (state_in[block.start] - kill[block.start])

    order = blocks if problem.direction == FORWARD else list(reversed(blocks))
    changed = True
    while changed:
        changed = False
        for block in order:
            preds = sources[block.start]
            if is_boundary_block(block):
                merged = set(boundary)
                for p in preds:
                    merged |= state_out[p]  # e.g. loop back-edges into the entry block
            elif preds:
                if is_intersect:
                    merged = set(state_out[preds[0]])
                    for p in preds[1:]:
                        merged &= state_out[p]
                else:
                    merged = set()
                    for p in preds:
                        merged |= state_out[p]
            else:
                # Unreachable (forward) or exitless-loop (backward) block.
                merged = set(universe) if is_intersect else set()
            new_out = gen[block.start] | (merged - kill[block.start])
            if merged != state_in[block.start] or new_out != state_out[block.start]:
                state_in[block.start] = merged
                state_out[block.start] = new_out
                changed = True

    # Lower to instruction grain by replaying per-instruction transfers.
    in_facts: Dict[int, FrozenSet[Fact]] = {}
    out_facts: Dict[int, FrozenSet[Fact]] = {}
    block_in: Dict[int, FrozenSet[Fact]] = {}
    block_out: Dict[int, FrozenSet[Fact]] = {}
    for block in blocks:
        entry_state = state_in[block.start]
        if problem.direction == FORWARD:
            block_in[block.start] = frozenset(entry_state)
            live = set(entry_state)
            for pc in block.pcs():
                in_facts[pc] = frozenset(live)
                live = problem.gen(pc) | (live - problem.kill(pc))
                out_facts[pc] = frozenset(live)
            block_out[block.start] = frozenset(live)
        else:
            block_out[block.start] = frozenset(entry_state)
            live = set(entry_state)
            for pc in reversed(list(block.pcs())):
                out_facts[pc] = frozenset(live)
                live = problem.gen(pc) | (live - problem.kill(pc))
                in_facts[pc] = frozenset(live)
            block_in[block.start] = frozenset(live)
    return DataflowResult(
        proc=proc, in_facts=in_facts, out_facts=out_facts, block_in=block_in, block_out=block_out
    )
