"""Architectural register file specification.

The ISA models an Alpha-flavoured 64-bit load/store RISC machine with 32
integer registers (``r0``-``r31``) and 32 floating-point registers
(``f0``-``f31``).  ``r31`` and ``f31`` are hardwired to zero, as on the Alpha:
writes to them are discarded and reads always return 0.

The calling convention mirrors the DEC OSF/1 Alpha convention closely enough
for the register allocator's purposes (the paper's Section 7.3 assumes "all
non-volatile registers are live at entrance and exit, and each procedure call
uses all argument registers"):

* ``r0``          — integer return value (volatile)
* ``r1``-``r8``   — temporaries (volatile)
* ``r9``-``r14``  — callee-saved (non-volatile)
* ``r15``         — frame pointer (non-volatile)
* ``r16``-``r21`` — argument registers (volatile)
* ``r22``-``r25`` — temporaries (volatile)
* ``r26``         — return address (volatile, written by ``jsr``)
* ``r27``-``r28`` — temporaries (volatile)
* ``r29``         — global pointer (non-volatile)
* ``r30``         — stack pointer (non-volatile)
* ``r31``         — hardwired zero

FP registers follow the same split: ``f0`` return, ``f1``-``f9`` volatile
temporaries, ``f10``-``f15`` callee-saved, ``f16``-``f21`` arguments,
``f22``-``f30`` volatile temporaries, ``f31`` zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

NUM_INT_REGS = 32
NUM_FP_REGS = 32

INT = "int"
FP = "fp"


@dataclass(frozen=True, order=True)
class Reg:
    """An architectural register, identified by class (``int``/``fp``) and index.

    ``Reg`` objects are value objects: two references to ``r4`` compare and
    hash equal.  Use the module-level :data:`R` and :data:`F` banks to obtain
    them (``R[4]``, ``F[2]``) rather than constructing instances directly.
    """

    kind: str
    index: int

    def __post_init__(self) -> None:
        limit = NUM_INT_REGS if self.kind == INT else NUM_FP_REGS
        if self.kind not in (INT, FP):
            raise ValueError(f"unknown register class {self.kind!r}")
        if not 0 <= self.index < limit:
            raise ValueError(f"register index {self.index} out of range for {self.kind}")

    @property
    def name(self) -> str:
        prefix = "r" if self.kind == INT else "f"
        return f"{prefix}{self.index}"

    @property
    def is_zero(self) -> bool:
        """True for the hardwired-zero registers ``r31`` and ``f31``."""
        return self.index == 31

    @property
    def is_int(self) -> bool:
        return self.kind == INT

    @property
    def is_fp(self) -> bool:
        return self.kind == FP

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.name


class _RegisterBank:
    """Indexable factory for one register class: ``R[4]`` -> ``Reg('int', 4)``."""

    def __init__(self, kind: str, count: int) -> None:
        self._kind = kind
        self._regs = tuple(Reg(kind, i) for i in range(count))

    def __getitem__(self, index: int) -> Reg:
        return self._regs[index]

    def __iter__(self) -> Iterator[Reg]:
        return iter(self._regs)

    def __len__(self) -> int:
        return len(self._regs)


R = _RegisterBank(INT, NUM_INT_REGS)
F = _RegisterBank(FP, NUM_FP_REGS)

ZERO = R[31]
FZERO = F[31]
RETURN_VALUE = R[0]
RETURN_ADDRESS = R[26]
STACK_POINTER = R[30]
GLOBAL_POINTER = R[29]
FRAME_POINTER = R[15]

ARG_REGS = tuple(R[i] for i in range(16, 22))
FP_ARG_REGS = tuple(F[i] for i in range(16, 22))

CALLEE_SAVED_INT = tuple(R[i] for i in range(9, 16)) + (GLOBAL_POINTER, STACK_POINTER)
CALLEE_SAVED_FP = tuple(F[i] for i in range(10, 16))

#: Registers the register allocator may freely reassign inside a procedure.
#: The special-purpose registers (zero, ra, sp, gp, fp) are excluded.
ALLOCATABLE_INT = tuple(
    R[i] for i in range(NUM_INT_REGS) if R[i] not in (ZERO, RETURN_ADDRESS, STACK_POINTER, GLOBAL_POINTER, FRAME_POINTER)
)
ALLOCATABLE_FP = tuple(F[i] for i in range(NUM_FP_REGS) if not F[i].is_zero)


def is_volatile(reg: Reg) -> bool:
    """True if ``reg`` is caller-saved under the calling convention."""
    if reg.is_zero:
        return False
    if reg.kind == INT:
        return reg not in CALLEE_SAVED_INT
    return reg not in CALLEE_SAVED_FP


def parse_reg(text: str) -> Reg:
    """Parse a register name such as ``r17`` or ``f3`` (case-insensitive)."""
    text = text.strip().lower()
    if len(text) < 2 or text[0] not in "rf":
        raise ValueError(f"bad register name {text!r}")
    try:
        index = int(text[1:])
    except ValueError as exc:
        raise ValueError(f"bad register name {text!r}") from exc
    bank = R if text[0] == "r" else F
    if not 0 <= index < len(bank):
        raise ValueError(f"register index out of range in {text!r}")
    return bank[index]
