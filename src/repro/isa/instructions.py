"""The :class:`Instruction` static-instruction representation.

Operand conventions (all fields optional depending on opcode kind):

=============  =====================================================
kind           fields used
=============  =====================================================
ALU            ``dst <- fn(src1, src2-or-imm)`` (``li``: ``dst <- imm``)
LOAD           ``dst <- mem[src1 + imm]``
STORE          ``mem[src1 + imm] <- src2``
BRANCH         if ``cond(src1)`` goto ``target``
JUMP           goto ``target``
CALL           ``dst <- return_pc``; goto ``target``
INDIRECT       goto ``src1`` (``ret``/``jmp``)
HALT / NOP     none
=============  =====================================================

Instructions are *mutable* in exactly one controlled way: the compiler's
register-reallocation pass rewrites register operands via
:meth:`Instruction.rewrite_registers`, and static RVP marking swaps a load
opcode for its ``rvp_*`` twin via :meth:`Instruction.with_opcode`.  Both
return new objects; in-place mutation is never used, so a :class:`Program`
can share instructions safely.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from .opcodes import Opcode, OpKind, RVP_TWIN, opcode
from .registers import Reg


@dataclass(frozen=True)
class Instruction:
    """One static instruction.

    ``pc`` is assigned when the instruction is placed into a
    :class:`~repro.isa.program.Program` (word addressing: instruction *i* has
    ``pc == i``).  ``target_pc`` is resolved from ``target`` at the same time.
    """

    op: Opcode
    dst: Optional[Reg] = None
    src1: Optional[Reg] = None
    src2: Optional[Reg] = None
    imm: Optional[int] = None
    target: Optional[str] = None
    pc: int = -1
    target_pc: Optional[int] = None

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------
    @property
    def writes(self) -> Optional[Reg]:
        """The architectural register written, or ``None``.

        Writes to the hardwired-zero registers are architectural no-ops and
        are reported as ``None``.
        """
        if self.op.writes_dest and self.dst is not None and not self.dst.is_zero:
            return self.dst
        return None

    @property
    def reads(self) -> Tuple[Reg, ...]:
        """Architectural registers read, zero registers included."""
        regs = []
        if self.src1 is not None:
            regs.append(self.src1)
        if self.src2 is not None:
            regs.append(self.src2)
        return tuple(regs)

    @property
    def is_load(self) -> bool:
        return self.op.is_load

    @property
    def is_store(self) -> bool:
        return self.op.is_store

    @property
    def is_control(self) -> bool:
        return self.op.is_control

    @property
    def is_conditional(self) -> bool:
        return self.op.kind is OpKind.BRANCH

    @property
    def is_halt(self) -> bool:
        return self.op.kind is OpKind.HALT

    # ------------------------------------------------------------------
    # Controlled rewriting (compiler passes)
    # ------------------------------------------------------------------
    def rewrite_registers(self, mapping: Dict[Reg, Reg]) -> "Instruction":
        """Return a copy with every register operand passed through ``mapping``.

        Registers absent from ``mapping`` are kept.  Used by the register
        reallocator; the zero registers are never remapped.
        """

        def remap(reg: Optional[Reg]) -> Optional[Reg]:
            if reg is None or reg.is_zero:
                return reg
            return mapping.get(reg, reg)

        return replace(self, dst=remap(self.dst), src1=remap(self.src1), src2=remap(self.src2))

    def with_opcode(self, name: str) -> "Instruction":
        """Return a copy with a different opcode (e.g. ``ld`` -> ``rvp_ld``)."""
        return replace(self, op=opcode(name))

    def as_rvp_marked(self) -> "Instruction":
        """Return the RVP-marked twin of a load instruction."""
        if not self.is_load:
            raise ValueError(f"only loads can be RVP-marked, got {self.op.name}")
        if self.op.rvp_marked:
            return self
        return self.with_opcode(RVP_TWIN[self.op.name])

    def without_rvp_mark(self) -> "Instruction":
        """Strip a static RVP mark, returning the plain load."""
        if not self.op.rvp_marked:
            return self
        return self.with_opcode(RVP_TWIN[self.op.name])

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Assembler text for this instruction (without any label)."""
        name = self.op.name
        kind = self.op.kind
        if kind is OpKind.ALU:
            if name in ("li", "fli"):
                return f"{name} {self.dst}, #{self.imm}"
            if self.src2 is not None:
                return f"{name} {self.dst}, {self.src1}, {self.src2}"
            if self.imm is not None:
                return f"{name} {self.dst}, {self.src1}, #{self.imm}"
            return f"{name} {self.dst}, {self.src1}"
        if kind is OpKind.LOAD:
            return f"{name} {self.dst}, {self.imm or 0}({self.src1})"
        if kind is OpKind.STORE:
            return f"{name} {self.src2}, {self.imm or 0}({self.src1})"
        if kind is OpKind.BRANCH:
            return f"{name} {self.src1}, {self.target}"
        if kind is OpKind.JUMP:
            return f"{name} {self.target}"
        if kind is OpKind.CALL:
            return f"{name} {self.dst}, {self.target}"
        if kind is OpKind.INDIRECT:
            return f"{name} {self.src1}"
        return name

    def __str__(self) -> str:
        return self.render()
