"""Programmatic program construction.

:class:`ProgramBuilder` is the main authoring interface used by the workload
suite and the test suite.  It offers one method per opcode plus labels,
procedure scoping and fresh-label generation::

    b = ProgramBuilder("example")
    with b.procedure("main"):
        b.li(R[1], 0)
        b.li(R[2], 100)
        loop = b.fresh_label("loop")
        b.label(loop)
        b.ld(R[3], R[2], 0)
        b.add(R[1], R[1], R[3])
        b.addi(R[2], R[2], 8)
        b.subi(R[4], R[2], 900)
        b.bne(R[4], loop)
        b.halt()
    program = b.build()
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from .instructions import Instruction
from .opcodes import opcode
from .program import Procedure, Program
from .registers import RETURN_ADDRESS, Reg


class ProgramBuilder:
    """Accumulates instructions, labels and procedure boundaries."""

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self._insts: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._procs: List[Procedure] = []
        self._open_proc: Optional[str] = None
        self._open_start = 0
        self._fresh = 0

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def here(self) -> int:
        """The pc the next emitted instruction will occupy."""
        return len(self._insts)

    def label(self, name: str) -> str:
        """Bind ``name`` to the current position; returns the name for chaining."""
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = self.here
        return name

    def fresh_label(self, prefix: str = "L") -> str:
        """Generate a unique label name (not yet bound)."""
        self._fresh += 1
        return f"{prefix}_{self._fresh}"

    @contextmanager
    def procedure(self, name: str) -> Iterator[None]:
        """Scope a procedure; also binds ``name`` as a label at its entry."""
        if self._open_proc is not None:
            raise ValueError("procedures cannot nest")
        self._open_proc = name
        self._open_start = self.here
        self.label(name)
        try:
            yield
        finally:
            self._procs.append(Procedure(name, self._open_start, self.here))
            self._open_proc = None

    def build(self) -> Program:
        if self._open_proc is not None:
            raise ValueError(f"procedure {self._open_proc!r} still open")
        procs = self._procs or None
        return Program(self._insts, self._labels, self.name, procs)

    # ------------------------------------------------------------------
    # Raw emission
    # ------------------------------------------------------------------
    def emit(
        self,
        op_name: str,
        dst: Optional[Reg] = None,
        src1: Optional[Reg] = None,
        src2: Optional[Reg] = None,
        imm: Optional[int] = None,
        target: Optional[str] = None,
    ) -> int:
        """Append an instruction; returns its pc."""
        pc = self.here
        self._insts.append(Instruction(op=opcode(op_name), dst=dst, src1=src1, src2=src2, imm=imm, target=target))
        return pc

    # ------------------------------------------------------------------
    # ALU sugar: three-register and register-immediate forms
    # ------------------------------------------------------------------
    def _alu(self, name: str, dst: Reg, a: Reg, b) -> int:
        if isinstance(b, Reg):
            return self.emit(name, dst=dst, src1=a, src2=b)
        return self.emit(name, dst=dst, src1=a, imm=int(b))

    def add(self, dst: Reg, a: Reg, b) -> int:
        return self._alu("add", dst, a, b)

    def sub(self, dst: Reg, a: Reg, b) -> int:
        return self._alu("sub", dst, a, b)

    def addi(self, dst: Reg, a: Reg, imm: int) -> int:
        return self.emit("add", dst=dst, src1=a, imm=imm)

    def subi(self, dst: Reg, a: Reg, imm: int) -> int:
        return self.emit("sub", dst=dst, src1=a, imm=imm)

    def mul(self, dst: Reg, a: Reg, b) -> int:
        return self._alu("mul", dst, a, b)

    def div(self, dst: Reg, a: Reg, b) -> int:
        return self._alu("div", dst, a, b)

    def rem(self, dst: Reg, a: Reg, b) -> int:
        return self._alu("rem", dst, a, b)

    def and_(self, dst: Reg, a: Reg, b) -> int:
        return self._alu("and", dst, a, b)

    def or_(self, dst: Reg, a: Reg, b) -> int:
        return self._alu("or", dst, a, b)

    def xor(self, dst: Reg, a: Reg, b) -> int:
        return self._alu("xor", dst, a, b)

    def sll(self, dst: Reg, a: Reg, b) -> int:
        return self._alu("sll", dst, a, b)

    def srl(self, dst: Reg, a: Reg, b) -> int:
        return self._alu("srl", dst, a, b)

    def sra(self, dst: Reg, a: Reg, b) -> int:
        return self._alu("sra", dst, a, b)

    def cmpeq(self, dst: Reg, a: Reg, b) -> int:
        return self._alu("cmpeq", dst, a, b)

    def cmpne(self, dst: Reg, a: Reg, b) -> int:
        return self._alu("cmpne", dst, a, b)

    def cmplt(self, dst: Reg, a: Reg, b) -> int:
        return self._alu("cmplt", dst, a, b)

    def cmple(self, dst: Reg, a: Reg, b) -> int:
        return self._alu("cmple", dst, a, b)

    def cmpult(self, dst: Reg, a: Reg, b) -> int:
        return self._alu("cmpult", dst, a, b)

    def mov(self, dst: Reg, src: Reg) -> int:
        return self.emit("mov", dst=dst, src1=src)

    def li(self, dst: Reg, imm: int) -> int:
        return self.emit("li", dst=dst, imm=imm)

    def nop(self) -> int:
        return self.emit("nop")

    # FP ALU
    def fadd(self, dst: Reg, a: Reg, b: Reg) -> int:
        return self.emit("fadd", dst=dst, src1=a, src2=b)

    def fsub(self, dst: Reg, a: Reg, b: Reg) -> int:
        return self.emit("fsub", dst=dst, src1=a, src2=b)

    def fmul(self, dst: Reg, a: Reg, b: Reg) -> int:
        return self.emit("fmul", dst=dst, src1=a, src2=b)

    def fdiv(self, dst: Reg, a: Reg, b: Reg) -> int:
        return self.emit("fdiv", dst=dst, src1=a, src2=b)

    def fmov(self, dst: Reg, src: Reg) -> int:
        return self.emit("fmov", dst=dst, src1=src)

    def fli(self, dst: Reg, imm: int) -> int:
        return self.emit("fli", dst=dst, imm=imm)

    def itof(self, dst: Reg, src: Reg) -> int:
        return self.emit("itof", dst=dst, src1=src)

    def ftoi(self, dst: Reg, src: Reg) -> int:
        return self.emit("ftoi", dst=dst, src1=src)

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def ld(self, dst: Reg, base: Reg, offset: int = 0) -> int:
        return self.emit("ld", dst=dst, src1=base, imm=offset)

    def fld(self, dst: Reg, base: Reg, offset: int = 0) -> int:
        return self.emit("fld", dst=dst, src1=base, imm=offset)

    def st(self, value: Reg, base: Reg, offset: int = 0) -> int:
        return self.emit("st", src1=base, src2=value, imm=offset)

    def fst(self, value: Reg, base: Reg, offset: int = 0) -> int:
        return self.emit("fst", src1=base, src2=value, imm=offset)

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def _branch(self, name: str, reg: Reg, target: str) -> int:
        return self.emit(name, src1=reg, target=target)

    def beq(self, reg: Reg, target: str) -> int:
        return self._branch("beq", reg, target)

    def bne(self, reg: Reg, target: str) -> int:
        return self._branch("bne", reg, target)

    def blt(self, reg: Reg, target: str) -> int:
        return self._branch("blt", reg, target)

    def ble(self, reg: Reg, target: str) -> int:
        return self._branch("ble", reg, target)

    def bgt(self, reg: Reg, target: str) -> int:
        return self._branch("bgt", reg, target)

    def bge(self, reg: Reg, target: str) -> int:
        return self._branch("bge", reg, target)

    def fbeq(self, reg: Reg, target: str) -> int:
        return self._branch("fbeq", reg, target)

    def fbne(self, reg: Reg, target: str) -> int:
        return self._branch("fbne", reg, target)

    def br(self, target: str) -> int:
        return self.emit("br", target=target)

    def jsr(self, target: str, link: Reg = RETURN_ADDRESS) -> int:
        return self.emit("jsr", dst=link, target=target)

    def ret(self, reg: Reg = RETURN_ADDRESS) -> int:
        return self.emit("ret", src1=reg)

    def jmp(self, reg: Reg) -> int:
        return self.emit("jmp", src1=reg)

    def halt(self) -> int:
        return self.emit("halt")
