"""Opcode table: names, operational semantics, latencies and FU classes.

The ISA is a 64-bit load/store RISC.  All register values are 64-bit unsigned
integers (``0 <= v < 2**64``); signed operations interpret them in two's
complement.  "Floating point" opcodes operate on the FP register file but use
integer arithmetic on the stored 64-bit patterns — value prediction only ever
compares values for bit equality, so the numeric interpretation of FP data is
irrelevant to every experiment in the paper (see DESIGN.md, Section 6).

Each :class:`Opcode` carries:

* ``kind``     — structural class used by the simulators (ALU / LOAD / ...)
* ``fu``       — functional-unit class needed to execute it
* ``latency``  — execute latency in cycles (memory ops add cache latency)
* ``alu_fn``   — for ALU-like ops, the value function ``f(a, b) -> result``

The RVP opcodes introduced by the paper are ``rvp_ld`` and ``rvp_fld``: loads
statically marked for register-value prediction.  They are architecturally
identical to ``ld``/``fld``; the pipeline treats them as always-predict.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, Optional

MASK64 = (1 << 64) - 1
SIGN_BIT = 1 << 63


def to_signed(value: int) -> int:
    """Interpret a 64-bit pattern as a signed integer."""
    return value - (1 << 64) if value & SIGN_BIT else value


def to_unsigned(value: int) -> int:
    """Wrap a Python integer into the 64-bit unsigned domain."""
    return value & MASK64


class OpKind(Enum):
    ALU = "alu"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"  # conditional, tests src1 against zero
    JUMP = "jump"  # unconditional direct
    CALL = "call"  # direct call, writes return address to dst
    INDIRECT = "indirect"  # jump through register (ret / jmp)
    HALT = "halt"
    NOP = "nop"


class FuClass(Enum):
    INT = "int"
    FP = "fp"
    LDST = "ldst"
    NONE = "none"


@dataclass(frozen=True)
class Opcode:
    """Immutable description of one opcode."""

    name: str
    kind: OpKind
    fu: FuClass
    latency: int
    alu_fn: Optional[Callable[[int, int], int]] = None
    #: branch condition on the signed value of src1, for BRANCH opcodes
    cond_fn: Optional[Callable[[int], bool]] = None
    #: True for opcodes whose destination is in the FP register file
    fp_dest: bool = False
    #: True for the statically RVP-marked load opcodes
    rvp_marked: bool = False

    @property
    def is_load(self) -> bool:
        return self.kind is OpKind.LOAD

    @property
    def is_store(self) -> bool:
        return self.kind is OpKind.STORE

    @property
    def is_mem(self) -> bool:
        return self.kind in (OpKind.LOAD, OpKind.STORE)

    @property
    def is_control(self) -> bool:
        return self.kind in (OpKind.BRANCH, OpKind.JUMP, OpKind.CALL, OpKind.INDIRECT)

    @property
    def writes_dest(self) -> bool:
        return self.kind in (OpKind.ALU, OpKind.LOAD, OpKind.CALL)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Opcode({self.name})"


def _shift_amount(b: int) -> int:
    return b & 63


def _div(a: int, b: int) -> int:
    """Signed division with the hardware convention that x/0 == 0."""
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        return 0
    return to_unsigned(int(sa / sb))  # truncate toward zero, like hardware


def _rem(a: int, b: int) -> int:
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        return 0
    return to_unsigned(sa - int(sa / sb) * sb)


_ALU_FNS: Dict[str, Callable[[int, int], int]] = {
    "add": lambda a, b: (a + b) & MASK64,
    "sub": lambda a, b: (a - b) & MASK64,
    "mul": lambda a, b: (a * b) & MASK64,
    "div": _div,
    "rem": _rem,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "sll": lambda a, b: (a << _shift_amount(b)) & MASK64,
    "srl": lambda a, b: a >> _shift_amount(b),
    "sra": lambda a, b: to_unsigned(to_signed(a) >> _shift_amount(b)),
    "cmpeq": lambda a, b: 1 if a == b else 0,
    "cmpne": lambda a, b: 1 if a != b else 0,
    "cmplt": lambda a, b: 1 if to_signed(a) < to_signed(b) else 0,
    "cmple": lambda a, b: 1 if to_signed(a) <= to_signed(b) else 0,
    "cmpult": lambda a, b: 1 if a < b else 0,
    "mov": lambda a, b: a,
    "li": lambda a, b: b,
}

_COND_FNS: Dict[str, Callable[[int], bool]] = {
    "beq": lambda v: to_signed(v) == 0,
    "bne": lambda v: to_signed(v) != 0,
    "blt": lambda v: to_signed(v) < 0,
    "ble": lambda v: to_signed(v) <= 0,
    "bgt": lambda v: to_signed(v) > 0,
    "bge": lambda v: to_signed(v) >= 0,
}

_INT_ALU_LATENCY = 1
_MUL_LATENCY = 7
_DIV_LATENCY = 20
_FP_LATENCY = 4
_FP_DIV_LATENCY = 12
#: Base (L1-hit) load-use latency; cache misses add on top of this.
LOAD_BASE_LATENCY = 2
STORE_LATENCY = 1


def _build_table() -> Dict[str, Opcode]:
    table: Dict[str, Opcode] = {}

    def add(op: Opcode) -> None:
        if op.name in table:
            raise ValueError(f"duplicate opcode {op.name}")
        table[op.name] = op

    for name, fn in _ALU_FNS.items():
        latency = {"mul": _MUL_LATENCY, "div": _DIV_LATENCY, "rem": _DIV_LATENCY}.get(name, _INT_ALU_LATENCY)
        add(Opcode(name, OpKind.ALU, FuClass.INT, latency, alu_fn=fn))

    # FP arithmetic mirrors integer arithmetic on bit patterns (see module doc).
    fp_ops = {
        "fadd": ("add", _FP_LATENCY),
        "fsub": ("sub", _FP_LATENCY),
        "fmul": ("mul", _FP_LATENCY),
        "fdiv": ("div", _FP_DIV_LATENCY),
        "fmov": ("mov", _INT_ALU_LATENCY),
        "fcmpeq": ("cmpeq", _FP_LATENCY),
        "fcmplt": ("cmplt", _FP_LATENCY),
        "fcmple": ("cmple", _FP_LATENCY),
        "fli": ("li", _INT_ALU_LATENCY),
    }
    for name, (base, latency) in fp_ops.items():
        add(Opcode(name, OpKind.ALU, FuClass.FP, latency, alu_fn=_ALU_FNS[base], fp_dest=True))

    # Cross-file moves: itof copies an int register into an FP register and
    # vice versa (bit-pattern copy, like Alpha itofT/ftoiT).
    add(Opcode("itof", OpKind.ALU, FuClass.INT, _INT_ALU_LATENCY, alu_fn=_ALU_FNS["mov"], fp_dest=True))
    add(Opcode("ftoi", OpKind.ALU, FuClass.INT, _INT_ALU_LATENCY, alu_fn=_ALU_FNS["mov"]))

    add(Opcode("ld", OpKind.LOAD, FuClass.LDST, LOAD_BASE_LATENCY))
    add(Opcode("fld", OpKind.LOAD, FuClass.LDST, LOAD_BASE_LATENCY, fp_dest=True))
    add(Opcode("rvp_ld", OpKind.LOAD, FuClass.LDST, LOAD_BASE_LATENCY, rvp_marked=True))
    add(Opcode("rvp_fld", OpKind.LOAD, FuClass.LDST, LOAD_BASE_LATENCY, fp_dest=True, rvp_marked=True))
    add(Opcode("st", OpKind.STORE, FuClass.LDST, STORE_LATENCY))
    add(Opcode("fst", OpKind.STORE, FuClass.LDST, STORE_LATENCY))

    for name, fn in _COND_FNS.items():
        add(Opcode(name, OpKind.BRANCH, FuClass.INT, _INT_ALU_LATENCY, cond_fn=fn))
    # FP-register conditional branches (test the FP register against zero).
    add(Opcode("fbeq", OpKind.BRANCH, FuClass.FP, _INT_ALU_LATENCY, cond_fn=_COND_FNS["beq"]))
    add(Opcode("fbne", OpKind.BRANCH, FuClass.FP, _INT_ALU_LATENCY, cond_fn=_COND_FNS["bne"]))

    add(Opcode("br", OpKind.JUMP, FuClass.INT, _INT_ALU_LATENCY))
    add(Opcode("jsr", OpKind.CALL, FuClass.INT, _INT_ALU_LATENCY))
    add(Opcode("jmp", OpKind.INDIRECT, FuClass.INT, _INT_ALU_LATENCY))
    add(Opcode("ret", OpKind.INDIRECT, FuClass.INT, _INT_ALU_LATENCY))
    add(Opcode("halt", OpKind.HALT, FuClass.NONE, 1))
    add(Opcode("nop", OpKind.NOP, FuClass.INT, 1))
    return table


OPCODES: Dict[str, Opcode] = _build_table()

#: Mapping from a plain load opcode to its RVP-marked twin and back.
RVP_TWIN = {"ld": "rvp_ld", "fld": "rvp_fld", "rvp_ld": "ld", "rvp_fld": "fld"}


def opcode(name: str) -> Opcode:
    """Look up an opcode by name, raising ``KeyError`` with a helpful message."""
    try:
        return OPCODES[name]
    except KeyError:
        raise KeyError(f"unknown opcode {name!r}") from None
