"""ISA substrate: registers, opcodes, instructions, programs, assembler, builder."""

from .assembler import AssemblerError, assemble
from .builder import ProgramBuilder
from .instructions import Instruction
from .opcodes import LOAD_BASE_LATENCY, MASK64, OPCODES, FuClass, Opcode, OpKind, opcode, to_signed, to_unsigned
from .program import BasicBlock, Loop, Procedure, Program, SourceLoc
from .registers import (
    ALLOCATABLE_FP,
    ALLOCATABLE_INT,
    ARG_REGS,
    CALLEE_SAVED_FP,
    CALLEE_SAVED_INT,
    F,
    FZERO,
    NUM_FP_REGS,
    NUM_INT_REGS,
    R,
    RETURN_ADDRESS,
    RETURN_VALUE,
    STACK_POINTER,
    ZERO,
    Reg,
    is_volatile,
    parse_reg,
)

__all__ = [
    "AssemblerError",
    "assemble",
    "ProgramBuilder",
    "Instruction",
    "LOAD_BASE_LATENCY",
    "MASK64",
    "OPCODES",
    "FuClass",
    "Opcode",
    "OpKind",
    "opcode",
    "to_signed",
    "to_unsigned",
    "BasicBlock",
    "Loop",
    "Procedure",
    "Program",
    "SourceLoc",
    "ALLOCATABLE_FP",
    "ALLOCATABLE_INT",
    "ARG_REGS",
    "CALLEE_SAVED_FP",
    "CALLEE_SAVED_INT",
    "F",
    "FZERO",
    "NUM_FP_REGS",
    "NUM_INT_REGS",
    "R",
    "RETURN_ADDRESS",
    "RETURN_VALUE",
    "STACK_POINTER",
    "ZERO",
    "Reg",
    "is_volatile",
    "parse_reg",
]
