"""Programs, basic blocks, control-flow graphs and natural loops.

A :class:`Program` is an immutable sequence of :class:`Instruction` objects
with word addressing (instruction *i* lives at ``pc == i``), a label map, and
a set of procedures.  Procedures partition the instruction range; the
compiler's liveness / interference / reallocation passes all operate one
procedure at a time, exactly as the paper's Section 7.3 does.

The CFG is built per procedure.  ``jsr`` is treated as a fall-through edge
within the caller (the callee is analysed separately); ``ret``/``jmp``/``halt``
terminate a block with no intra-procedure successors.  Natural loops are
discovered via dominator analysis (back edge ``u -> v`` where ``v`` dominates
``u``); the loop machinery feeds the last-value-reuse reallocation, which must
know each instruction's innermost loop and its nesting depth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import networkx as nx

from .instructions import Instruction
from .opcodes import OpKind


@dataclass(frozen=True)
class Procedure:
    """A contiguous instruction range ``[start, end)`` with an entry label."""

    name: str
    start: int
    end: int

    def __contains__(self, pc: int) -> bool:
        return self.start <= pc < self.end


@dataclass(frozen=True)
class BasicBlock:
    """Maximal straight-line instruction range ``[start, end)``."""

    index: int
    start: int
    end: int
    successors: Tuple[int, ...] = ()  # successor block *start* pcs

    @property
    def last(self) -> int:
        return self.end - 1

    def pcs(self) -> range:
        return range(self.start, self.end)


@dataclass(frozen=True)
class SourceLoc:
    """Provenance of one lowered instruction, when a program came from IR.

    ``block`` is the IR basic-block label the instruction descends from,
    ``loop_depth`` that block's loop-nest depth in the IR (0 = not in any
    loop), and ``origin_pc`` the flat pc of the source instruction when the
    IR was itself raised from a :class:`Program` (``None`` for IR-authored
    code and compiler-introduced copies/spills).
    """

    block: str
    loop_depth: int = 0
    origin_pc: Optional[int] = None

    def render(self) -> str:
        where = f"block {self.block}"
        if self.loop_depth:
            where += f", loop depth {self.loop_depth}"
        return where


@dataclass(frozen=True)
class Loop:
    """A natural loop: header block pc, member pcs, and nesting depth (1 = outermost)."""

    header: int
    body: frozenset
    depth: int

    def __contains__(self, pc: int) -> bool:
        return pc in self.body


class Program:
    """An immutable assembled program.

    Construct via :meth:`Program.assemble` (from already-built instructions +
    label map), the text assembler (:mod:`repro.isa.assembler`) or the
    programmatic builder (:mod:`repro.isa.builder`).
    """

    def __init__(
        self,
        instructions: Sequence[Instruction],
        labels: Dict[str, int],
        name: str = "program",
        procedures: Optional[Sequence[Procedure]] = None,
        source_map: Optional[Dict[int, SourceLoc]] = None,
    ) -> None:
        self.name = name
        self.labels: Dict[str, int] = dict(labels)
        #: pc -> IR provenance, populated by the :mod:`repro.ir` lowering
        #: pipeline and carried through 1:1 rewrites; ``None`` for programs
        #: that never went through the IR.
        self.source_map: Optional[Dict[int, SourceLoc]] = dict(source_map) if source_map else None
        resolved: List[Instruction] = []
        for index, inst in enumerate(instructions):
            target_pc = None
            if inst.target is not None:
                if inst.target not in self.labels:
                    raise ValueError(f"undefined label {inst.target!r} at pc {index}")
                target_pc = self.labels[inst.target]
            resolved.append(
                Instruction(
                    op=inst.op,
                    dst=inst.dst,
                    src1=inst.src1,
                    src2=inst.src2,
                    imm=inst.imm,
                    target=inst.target,
                    pc=index,
                    target_pc=target_pc,
                )
            )
        self.instructions: Tuple[Instruction, ...] = tuple(resolved)
        if procedures:
            self.procedures: Tuple[Procedure, ...] = tuple(procedures)
        else:
            self.procedures = (Procedure("main", 0, len(self.instructions)),)
        self._validate()
        self._block_cache: Dict[str, List[BasicBlock]] = {}
        self._loop_cache: Dict[str, List[Loop]] = {}

    # ------------------------------------------------------------------
    # Basics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, pc: int) -> Instruction:
        return self.instructions[pc]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    @property
    def entry(self) -> int:
        return self.procedures[0].start

    def procedure_of(self, pc: int) -> Procedure:
        for proc in self.procedures:
            if pc in proc:
                return proc
        raise ValueError(f"pc {pc} outside all procedures")

    def procedure(self, name: str) -> Procedure:
        for proc in self.procedures:
            if proc.name == name:
                return proc
        raise KeyError(name)

    def _validate(self) -> None:
        n = len(self.instructions)
        covered = [False] * n
        for proc in self.procedures:
            if not (0 <= proc.start < proc.end <= n):
                raise ValueError(f"procedure {proc.name} range [{proc.start},{proc.end}) out of bounds")
            for pc in range(proc.start, proc.end):
                if covered[pc]:
                    raise ValueError(f"pc {pc} covered by two procedures")
                covered[pc] = True
        if n and not all(covered):
            missing = covered.index(False)
            raise ValueError(f"pc {missing} not covered by any procedure")
        for inst in self.instructions:
            if inst.target is not None and inst.target_pc is None:
                raise ValueError(f"unresolved target at pc {inst.pc}")

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def rewrite(self, fn: Callable[[Instruction], Instruction], name: Optional[str] = None) -> "Program":
        """Return a new program with ``fn`` applied to every instruction.

        ``fn`` must preserve instruction count and control structure (it may
        change opcodes between twins and remap registers, which is all the
        compiler passes ever do).
        """
        new_insts = [fn(inst) for inst in self.instructions]
        return Program(new_insts, self.labels, name or self.name, self.procedures, source_map=self.source_map)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Round-trippable assembler text."""
        by_pc: Dict[int, List[str]] = {}
        for label, pc in sorted(self.labels.items(), key=lambda kv: kv[1]):
            by_pc.setdefault(pc, []).append(label)
        lines: List[str] = []
        proc_starts = {p.start: p.name for p in self.procedures}
        for inst in self.instructions:
            if inst.pc in proc_starts:
                lines.append(f".proc {proc_starts[inst.pc]}")
            for label in by_pc.get(inst.pc, []):
                lines.append(f"{label}:")
            lines.append(f"    {inst.render()}")
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # CFG / loops
    # ------------------------------------------------------------------
    def basic_blocks(self, proc: Procedure) -> List[BasicBlock]:
        """Basic blocks of one procedure, with intra-procedure successor edges."""
        if proc.name in self._block_cache:
            return self._block_cache[proc.name]
        leaders = {proc.start}
        for pc in range(proc.start, proc.end):
            inst = self.instructions[pc]
            if inst.is_control or inst.is_halt:
                if pc + 1 < proc.end:
                    leaders.add(pc + 1)
                if inst.target_pc is not None and inst.target_pc in proc and inst.op.kind is not OpKind.CALL:
                    leaders.add(inst.target_pc)
        starts = sorted(leaders)
        blocks: List[BasicBlock] = []
        for i, start in enumerate(starts):
            end = starts[i + 1] if i + 1 < len(starts) else proc.end
            last = self.instructions[end - 1]
            succs: List[int] = []
            if last.op.kind is OpKind.BRANCH:
                if last.target_pc is not None and last.target_pc in proc:
                    succs.append(last.target_pc)
                if end < proc.end:
                    succs.append(end)
            elif last.op.kind is OpKind.JUMP:
                if last.target_pc is not None and last.target_pc in proc:
                    succs.append(last.target_pc)
            elif last.op.kind in (OpKind.INDIRECT, OpKind.HALT):
                pass  # procedure exit
            else:  # fall through (includes CALL: callee analysed separately)
                if end < proc.end:
                    succs.append(end)
            blocks.append(BasicBlock(i, start, end, tuple(dict.fromkeys(succs))))
        self._block_cache[proc.name] = blocks
        return blocks

    def cfg(self, proc: Procedure) -> "nx.DiGraph":
        """Directed graph over block-start pcs for one procedure."""
        graph = nx.DiGraph()
        for block in self.basic_blocks(proc):
            graph.add_node(block.start, block=block)
            for succ in block.successors:
                graph.add_edge(block.start, succ)
        return graph

    def loops(self, proc: Procedure) -> List[Loop]:
        """Natural loops of one procedure, innermost-last, with nesting depths."""
        if proc.name in self._loop_cache:
            return self._loop_cache[proc.name]
        graph = self.cfg(proc)
        blocks = {b.start: b for b in self.basic_blocks(proc)}
        loops: List[Loop] = []
        if proc.start in graph:
            idom = nx.immediate_dominators(graph, proc.start)
            dominates = _dominates_fn(idom)
            raw: Dict[int, set] = {}
            for u, v in graph.edges():
                if dominates(v, u):  # back edge u -> v
                    body = _natural_loop(graph, v, u)
                    raw.setdefault(v, set()).update(body)
            # Nesting depth: loop A nests inside loop B if A's blocks ⊂ B's blocks.
            items = list(raw.items())
            for header, body_blocks in items:
                depth = 1 + sum(
                    1
                    for other_header, other_body in items
                    if other_header != header and body_blocks < other_body
                )
                pcs = frozenset(pc for b in body_blocks for pc in blocks[b].pcs())
                loops.append(Loop(header, pcs, depth))
            loops.sort(key=lambda lp: lp.depth)
        self._loop_cache[proc.name] = loops
        return loops

    def innermost_loop(self, pc: int) -> Optional[Loop]:
        """The deepest loop containing ``pc``, or ``None`` if not in a loop."""
        proc = self.procedure_of(pc)
        best: Optional[Loop] = None
        for loop in self.loops(proc):
            if pc in loop and (best is None or loop.depth > best.depth):
                best = loop
        return best

    def loop_depth(self, pc: int) -> int:
        loop = self.innermost_loop(pc)
        return loop.depth if loop else 0


def _dominates_fn(idom: Dict[int, int]) -> Callable[[int, int], bool]:
    def dominates(a: int, b: int) -> bool:
        """True if block a dominates block b."""
        node = b
        while True:
            if node == a:
                return True
            parent = idom.get(node)
            if parent is None or parent == node:
                return node == a
            node = parent

    return dominates


def _natural_loop(graph: "nx.DiGraph", header: int, tail: int) -> set:
    """Blocks of the natural loop for back edge ``tail -> header``."""
    body = {header, tail}
    stack = [] if tail == header else [tail]
    while stack:
        node = stack.pop()
        if node == header:
            continue
        for pred in graph.predecessors(node):
            if pred not in body:
                body.add(pred)
                stack.append(pred)
    return body
