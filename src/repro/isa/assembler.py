"""Text assembler for the ISA.

Syntax (one instruction per line; ``;`` starts a comment)::

    .proc main              ; optional procedure directive
    main:
        li   r1, #0
        li   r2, #100
    loop:
        ld   r3, 0(r2)      ; dst, offset(base)
        add  r1, r1, r3     ; three-register ALU
        add  r2, r2, #8     ; register-immediate ALU
        sub  r4, r2, #900
        bne  r4, loop
        st   r1, 8(r2)      ; value, offset(base)
        jsr  r26, helper
        halt
    .proc helper
    helper:
        ret  r26

The grammar is exactly what :meth:`Instruction.render` emits, so
``assemble(program.render())`` round-trips.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .instructions import Instruction
from .opcodes import OPCODES, OpKind, opcode
from .program import Procedure, Program
from .registers import Reg, parse_reg

_MEM_RE = re.compile(r"^(-?(?:0[xX][0-9a-fA-F]+|\d+))\((\w+)\)$")


class AssemblerError(ValueError):
    """Raised for any syntax error, with the offending line number."""

    def __init__(self, lineno: int, message: str) -> None:
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


def _parse_operand(text: str, lineno: int):
    """Return ('reg', Reg) | ('imm', int) | ('mem', (offset, Reg)) | ('label', str)."""
    text = text.strip()
    if text.startswith("#"):
        try:
            return "imm", int(text[1:], 0)
        except ValueError:
            raise AssemblerError(lineno, f"bad immediate {text!r}") from None
    match = _MEM_RE.match(text)
    if match:
        offset = int(match.group(1), 0)
        try:
            base = parse_reg(match.group(2))
        except ValueError as exc:
            raise AssemblerError(lineno, str(exc)) from None
        return "mem", (offset, base)
    try:
        return "reg", parse_reg(text)
    except ValueError:
        pass
    if re.match(r"^[A-Za-z_.$][\w.$]*$", text):
        return "label", text
    raise AssemblerError(lineno, f"cannot parse operand {text!r}")


def _split_operands(rest: str) -> List[str]:
    return [part for part in (p.strip() for p in rest.split(",")) if part]


def _build_instruction(op_name: str, operands: List[Tuple[str, object]], lineno: int) -> Instruction:
    op = opcode(op_name)
    kind = op.kind

    def want(n: int) -> None:
        if len(operands) != n:
            raise AssemblerError(lineno, f"{op_name} expects {n} operand(s), got {len(operands)}")

    def reg_at(i: int) -> Reg:
        tag, value = operands[i]
        if tag != "reg":
            raise AssemblerError(lineno, f"{op_name} operand {i + 1} must be a register")
        return value  # type: ignore[return-value]

    if kind is OpKind.ALU:
        if op_name in ("li", "fli"):
            want(2)
            tag, value = operands[1]
            if tag != "imm":
                raise AssemblerError(lineno, f"{op_name} needs an immediate second operand")
            return Instruction(op=op, dst=reg_at(0), imm=value)  # type: ignore[arg-type]
        if op_name in ("mov", "fmov", "itof", "ftoi"):
            want(2)
            return Instruction(op=op, dst=reg_at(0), src1=reg_at(1))
        want(3)
        tag, value = operands[2]
        if tag == "reg":
            return Instruction(op=op, dst=reg_at(0), src1=reg_at(1), src2=value)  # type: ignore[arg-type]
        if tag == "imm":
            return Instruction(op=op, dst=reg_at(0), src1=reg_at(1), imm=value)  # type: ignore[arg-type]
        raise AssemblerError(lineno, f"{op_name} third operand must be register or immediate")

    if kind is OpKind.LOAD:
        want(2)
        tag, value = operands[1]
        if tag != "mem":
            raise AssemblerError(lineno, f"{op_name} needs offset(base) second operand")
        offset, base = value  # type: ignore[misc]
        return Instruction(op=op, dst=reg_at(0), src1=base, imm=offset)

    if kind is OpKind.STORE:
        want(2)
        tag, value = operands[1]
        if tag != "mem":
            raise AssemblerError(lineno, f"{op_name} needs offset(base) second operand")
        offset, base = value  # type: ignore[misc]
        return Instruction(op=op, src1=base, src2=reg_at(0), imm=offset)

    if kind is OpKind.BRANCH:
        want(2)
        tag, value = operands[1]
        if tag != "label":
            raise AssemblerError(lineno, f"{op_name} needs a label target")
        return Instruction(op=op, src1=reg_at(0), target=value)  # type: ignore[arg-type]

    if kind is OpKind.JUMP:
        want(1)
        tag, value = operands[0]
        if tag != "label":
            raise AssemblerError(lineno, f"{op_name} needs a label target")
        return Instruction(op=op, target=value)  # type: ignore[arg-type]

    if kind is OpKind.CALL:
        want(2)
        tag, value = operands[1]
        if tag != "label":
            raise AssemblerError(lineno, f"{op_name} needs a label target")
        return Instruction(op=op, dst=reg_at(0), target=value)  # type: ignore[arg-type]

    if kind is OpKind.INDIRECT:
        want(1)
        return Instruction(op=op, src1=reg_at(0))

    want(0)
    return Instruction(op=op)


def assemble(text: str, name: str = "program") -> Program:
    """Assemble program text into a :class:`Program`."""
    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}
    proc_marks: List[Tuple[str, int]] = []  # (name, start pc)

    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split(";", 1)[0].strip()
        if not line:
            continue
        if line.startswith(".proc"):
            parts = line.split()
            if len(parts) != 2:
                raise AssemblerError(lineno, ".proc needs exactly one name")
            proc_marks.append((parts[1], len(instructions)))
            continue
        while line.endswith(":") or ":" in line.split()[0]:
            label, _, line = line.partition(":")
            label = label.strip()
            if not re.match(r"^[A-Za-z_.$][\w.$]*$", label):
                raise AssemblerError(lineno, f"bad label {label!r}")
            if label in labels:
                raise AssemblerError(lineno, f"duplicate label {label!r}")
            labels[label] = len(instructions)
            line = line.strip()
            if not line:
                break
        if not line:
            continue
        parts = line.split(None, 1)
        op_name = parts[0].lower()
        if op_name not in OPCODES:
            raise AssemblerError(lineno, f"unknown opcode {op_name!r}")
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = [_parse_operand(tok, lineno) for tok in _split_operands(operand_text)]
        instructions.append(_build_instruction(op_name, operands, lineno))

    procedures: Optional[List[Procedure]] = None
    if proc_marks:
        procedures = []
        for i, (proc_name, start) in enumerate(proc_marks):
            end = proc_marks[i + 1][1] if i + 1 < len(proc_marks) else len(instructions)
            procedures.append(Procedure(proc_name, start, end))
    return Program(instructions, labels, name, procedures)
