"""repro — reproduction of Tullsen & Seng, *Storageless Value Prediction
Using Prior Register Values* (ISCA 1999).

Layered public API:

* :mod:`repro.isa`        — the RISC ISA substrate (registers, programs,
  assembler, builder)
* :mod:`repro.sim`        — functional simulator and dynamic traces
* :mod:`repro.workloads`  — the nine SPEC95-model workloads
* :mod:`repro.profiling`  — register-reuse / value / critical-path profiling
* :mod:`repro.compiler`   — liveness, webs, colouring, Section 7.3
  reallocation, static RVP marking
* :mod:`repro.vp`         — value predictors (dynamic/static RVP, LVP,
  Gabbay register predictor)
* :mod:`repro.uarch`      — cycle-level out-of-order pipeline (Table 1)
* :mod:`repro.core`       — named experiment configurations and result tables

Quick start::

    from repro.core import ExperimentRunner

    runner = ExperimentRunner("m88ksim")
    base = runner.run("no_predict")
    rvp = runner.run("drvp_all_dead_lv")
    print(rvp.ipc / base.ipc)
"""

from .core import CONFIG_NAMES, ExperimentResult, ExperimentRunner, ResultTable

__version__ = "1.0.0"

__all__ = ["CONFIG_NAMES", "ExperimentResult", "ExperimentRunner", "ResultTable", "__version__"]
