"""RVP compiler passes at the SSA level.

On SSA, the structures the flat passes had to *reconstruct* are simply
there: a web is a coalesce class of values (built for free during
allocation), interference is tick-set overlap, and "recolour this web to
that register" becomes a live-range merge request handed to the allocator.
This module holds the IR-level primitives; the flat-facing entry points
with report/verifier parity live in :mod:`repro.ir.pipeline`.

* :func:`origin_index` — find raised instructions by their flat pc.
* :func:`mark_rvp_loads` — opcode swap ``ld``/``fld`` -> ``rvp_*``.
* :func:`insert_after_instr` — IR-native insertion (block-local, used by
  the stride shadow pass and mirrored by the spiller).
* :func:`plan_stride_shadows` — per-function shadow-value budgeting: a
  shadow is a fresh value made *exclusive* against every same-kind class,
  which is exactly the flat pass's "register the procedure never touches"
  expressed as interference instead of a register scan.
* :func:`plan_reallocation` — Section 7.3 on SSA: dead-register reuse as
  coalescing (``merge producer-class into load-dest-class``), last-value
  exclusivity as conflict edges against every class defined in the loop.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..compiler.realloc import ReallocReport
from ..isa.opcodes import RVP_TWIN, opcode
from ..isa.program import Program
from ..isa.registers import ALLOCATABLE_FP, ALLOCATABLE_INT
from ..profiling.lists import ProfileLists
from .nodes import INT, Block, IRError, IRFunction, IRInstr, IRModule, Value
from .regalloc import SpillSlots, allocate, textual_vids

_POOLS = {"int": ALLOCATABLE_INT, "fp": ALLOCATABLE_FP}


@dataclass
class OriginSite:
    func: IRFunction
    block: Block
    instr: IRInstr


def origin_index(module: IRModule) -> Dict[int, OriginSite]:
    """Map every carried flat pc to its raised instruction."""
    index: Dict[int, OriginSite] = {}
    for func in module.functions:
        for block in func.blocks:
            for instr in block.instrs:
                if instr.origin_pc is not None:
                    index[instr.origin_pc] = OriginSite(func, block, instr)
    return index


def mark_rvp_loads(module: IRModule, pcs: Iterable[int]) -> int:
    """Swap the rvp opcode twin onto the loads raised from ``pcs``."""
    index = origin_index(module)
    marked = 0
    for pc in sorted(set(pcs)):
        site = index.get(pc)
        if site is None or site.instr.op.name not in RVP_TWIN:
            continue
        site.instr.op = opcode(RVP_TWIN[site.instr.op.name])
        marked += 1
    return marked


def insert_after_instr(block: Block, anchor: IRInstr, new_instrs: List[IRInstr]) -> None:
    """Insert ``new_instrs`` immediately after ``anchor`` in ``block``."""
    for pos, instr in enumerate(block.instrs):
        if instr is anchor:
            block.instrs[pos + 1 : pos + 1] = new_instrs
            return
    raise IRError(f"anchor instruction {anchor!r} not in block {block.label}")


# ----------------------------------------------------------------------
# Stride shadows (paper Section 3 "Et Cetera")
# ----------------------------------------------------------------------
@dataclass
class StridePlan:
    #: origin pc -> (shadow value, inserted add) for every applied stride.
    shadows: Dict[int, Tuple[Value, IRInstr]] = field(default_factory=dict)
    #: per-function exclusive vids for the allocator.
    exclusive: Dict[str, List[int]] = field(default_factory=dict)
    attempted: int = 0
    applied: int = 0
    no_free_register: int = 0
    not_writable: int = 0


def _free_register_budget(func: IRFunction, kind: str = "int") -> int:
    """How many ``kind`` registers no *textual* value class of ``func`` uses.

    Conventional pass-through values (entry/call/exit pins of registers the
    function never names) do not count as occupancy — the flat pass scans
    the procedure text for untouched registers, and the budget must agree.
    """
    base = allocate(func, SpillSlots(), spill=False)
    if not base.ok:
        raise IRError(base.failure)
    textual = textual_vids(func)
    taken = {
        reg
        for vid, reg in base.reg_of.items()
        if vid in textual and base.liveness.values[vid].kind == kind
    }
    return sum(1 for reg in _POOLS[kind] if reg not in taken)


def plan_stride_shadows(module: IRModule, strides: Dict[int, int]) -> StridePlan:
    """Insert ``add shadow, dst, #delta`` after each strided instruction.

    The shadow is a fresh value with no uses, made exclusive against every
    same-kind class, so the allocator parks it in a register nothing else
    in the function occupies — the flat pass's untouched-register rule,
    derived from interference.  Budgeting mirrors the flat pass: strides
    beyond the function's free-register count are dropped in pc order.
    """
    plan = StridePlan()
    index = origin_index(module)
    budget: Dict[str, int] = {}
    for pc, delta in sorted(strides.items()):
        plan.attempted += 1
        site = index.get(pc)
        dst = site.instr.defined if site is not None else None
        if not isinstance(dst, Value) or dst.kind != INT:
            # FP strides would need an fp-immediate add the ISA lacks; see
            # the flat pass for the same exclusion.
            plan.not_writable += 1
            continue
        func = site.func
        if func.name not in budget:
            budget[func.name] = _free_register_budget(func)
        if budget[func.name] <= 0:
            plan.no_free_register += 1
            continue
        budget[func.name] -= 1
        shadow = func.new_value(INT)
        shadow.no_spill = True
        add = IRInstr("add", dst=shadow, src1=dst, imm=delta)
        insert_after_instr(site.block, site.instr, [add])
        plan.shadows[pc] = (shadow, add)
        plan.exclusive.setdefault(func.name, []).append(shadow.vid)
        plan.applied += 1
    return plan


def drop_stride_shadow(module: IRModule, plan: StridePlan, pc: int) -> None:
    """Back out one planned shadow (allocator found no register after all)."""
    shadow, add = plan.shadows.pop(pc)
    for func in module.functions:
        for block in func.blocks:
            if add in block.instrs:
                block.instrs.remove(add)
                plan.exclusive[func.name].remove(shadow.vid)
                plan.applied -= 1
                plan.no_free_register += 1
                return
    raise IRError(f"shadow add for pc {pc} vanished")


# ----------------------------------------------------------------------
# Section 7.3 reallocation as live-range merging
# ----------------------------------------------------------------------
@dataclass
class PhiWebs:
    """Phi-congruence classes — the SSA analogue of the flat pass's webs.

    The allocator's *coalesce classes* additionally merge tick-disjoint
    values of the same architectural register (so an unconstrained
    allocation reproduces the input), but for candidate classification that
    is too coarse: two independent webs of ``r5`` must still count as
    distinct definitions, exactly as :mod:`repro.compiler.webs` sees them.
    """

    web_of: Dict[int, int]  # vid -> web leader vid
    ticks: Dict[int, Set[int]]  # leader -> union of member liveness ticks
    pin: Dict[int, Optional[object]]  # leader -> calling-convention pin


def phi_webs(func: IRFunction) -> PhiWebs:
    from .liveness import value_liveness

    liveness = value_liveness(func)
    root = {vid: vid for vid in liveness.values}

    def find(vid: int) -> int:
        while root[vid] != vid:
            root[vid] = root[root[vid]]
            vid = root[vid]
        return vid

    for block in func.blocks:
        for phi in block.phis:
            for arg in phi.args.values():
                a, b = find(phi.dst.vid), find(arg.vid)
                if a != b:
                    root[b] = a

    webs = PhiWebs(web_of={}, ticks={}, pin={})
    for vid, value in liveness.values.items():
        leader = find(vid)
        webs.web_of[vid] = leader
        webs.ticks.setdefault(leader, set()).update(liveness.ticks.get(vid, ()))
        webs.pin[leader] = webs.pin.get(leader) or value.pin
    return webs


@dataclass
class _MergeCandidate:
    pc: int
    keep_vid: int  # the producer value (its register affinity wins)
    other_vid: int  # the candidate's destination value
    other_web: int  # phi web of the destination
    hint_reg: object
    critical: int


@dataclass
class _ExclusivityCandidate:
    pc: int
    def_vid: int
    def_web: int  # phi web of the definition
    loop_depth: int
    other_vids: List[int]
    critical: int


@dataclass
class ReallocPlan:
    """Per-function constraints plus the bookkeeping to prune them."""

    merges: List[_MergeCandidate] = field(default_factory=list)
    lvr: List[_ExclusivityCandidate] = field(default_factory=list)
    report: ReallocReport = field(default_factory=ReallocReport)


def plan_reallocation(
    program: Program,
    module: IRModule,
    lists: ProfileLists,
    critical: Optional[Counter] = None,
    loads_only: bool = False,
) -> Dict[str, ReallocPlan]:
    """Build merge/exclusivity candidates for every function.

    Classification mirrors the flat pass exactly (same report fields, same
    abandon conditions); legality is finer because tick-grain class overlap
    replaces whole-instruction web interference.
    """
    critical = critical or Counter()
    index = origin_index(module)
    plans: Dict[str, ReallocPlan] = {f.name: ReallocPlan() for f in module.functions}
    webs: Dict[str, PhiWebs] = {f.name: phi_webs(f) for f in module.functions}

    def def_value(pc: int) -> Tuple[Optional[OriginSite], Optional[Value]]:
        site = index.get(pc)
        if site is None:
            return None, None
        dst = site.instr.defined
        return site, dst if isinstance(dst, Value) else None

    # --- dead-register reuse: coalesce producer into destination ---------
    for pc, hint in sorted(lists.dead.items()):
        site, dst = def_value(pc)
        if site is None:
            continue
        if loads_only and not program[pc].is_load:
            continue
        if pc in lists.same:
            continue  # already reusing; nothing to do
        plan = plans[site.func.name]
        web = webs[site.func.name]
        plan.report.dead_attempted += 1
        if dst is None or web.pin[web.web_of[dst.vid]] is not None:
            plan.report.dead_foreign += 1
            continue
        src_site, src = (None, None) if hint.producer_pc is None else def_value(hint.producer_pc)
        if src_site is None or src_site.func is not site.func:
            plan.report.dead_foreign += 1  # produced in another procedure
            continue
        if (
            src is None
            or web.pin[web.web_of[src.vid]] is not None
            or src.kind != dst.kind
            or (src.vreg.reg if src.vreg else None) != hint.reg
            or web.web_of[src.vid] == web.web_of[dst.vid]
        ):
            plan.report.dead_foreign += 1
            continue
        if web.ticks[web.web_of[src.vid]] & web.ticks[web.web_of[dst.vid]]:
            plan.report.dead_conflicting += 1  # live ranges conflict
            continue
        plan.merges.append(
            _MergeCandidate(
                pc=pc,
                keep_vid=src.vid,
                other_vid=dst.vid,
                other_web=web.web_of[dst.vid],
                hint_reg=hint.reg,
                critical=critical.get(pc, 0),
            )
        )
    for plan in plans.values():
        plan.merges.sort(key=lambda c: -c.critical)

    # --- last-value exclusivity: conflict edges against loop definitions --
    for pc in sorted(lists.last_value):
        site, dst = def_value(pc)
        if site is None or pc in lists.same:
            continue
        if loads_only and not program[pc].is_load:
            continue
        plan = plans[site.func.name]
        web = webs[site.func.name]
        plan.report.lvr_attempted += 1
        if dst is None or web.pin[web.web_of[dst.vid]] is not None:
            plan.report.lvr_not_in_loop += 1
            continue
        loop = program.innermost_loop(pc)
        if loop is None:
            plan.report.lvr_not_in_loop += 1  # abandoned: not in a loop
            continue
        dst_web = web.web_of[dst.vid]
        others: List[int] = []
        shared = False
        for other_pc in sorted(loop.body):
            if other_pc == pc:
                continue
            _, other = def_value(other_pc)
            if other is None or other.kind != dst.kind:
                continue
            if web.web_of[other.vid] == dst_web:
                shared = True  # another loop definition shares the web
                break
            others.append(other.vid)
        if shared:
            plan.report.lvr_shared += 1
            continue
        plan.lvr.append(
            _ExclusivityCandidate(
                pc=pc,
                def_vid=dst.vid,
                def_web=dst_web,
                loop_depth=loop.depth,
                other_vids=others,
                critical=critical.get(pc, 0),
            )
        )
    for plan in plans.values():
        plan.lvr.sort(key=lambda c: (-c.loop_depth, -c.critical))
    return plans
