"""Lowering: SSA IRModule -> flat :class:`~repro.isa.program.Program`.

The pipeline per function is

1. :func:`~repro.ir.nodes.verify_ssa`,
2. register allocation (:func:`~repro.ir.regalloc.allocate`: coalescing +
   the flat Chaitin–Briggs colourer + spilling),
3. SSA destruction: each CFG edge's phis become one *parallel copy*.
   Copies whose source and destination coalesced into one register vanish;
   the rest are placed at the end of the predecessor (sole successor), the
   start of the successor (sole predecessor), or on a freshly split block
   (critical edge).  Parallel semantics are serialised by emitting a copy
   only once its destination is no longer pending as a source; cycles are
   broken through the one reserved shuffle slot (``SpillSlots.shuffle``).
4. emission in layout order to flat :class:`~repro.isa.Instruction`s, with
   provenance: every emitted pc gets a :class:`~repro.isa.program.SourceLoc`
   (IR block, loop depth, originating flat pc) in ``Program.source_map``,
   and ``LoweringResult.pc_origin`` / ``origin_map`` relate old and new pcs
   for the trace-equivalence oracle and the pass wrappers.

The module is *not* mutated: phis stay in place, copies and split blocks
exist only in the emission plan, so a module can be lowered repeatedly
(e.g. once per reallocation constraint set).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..isa.instructions import Instruction
from ..isa.opcodes import OpKind, opcode
from ..isa.program import Procedure, Program, SourceLoc
from ..isa.registers import ZERO, Reg
from .nodes import Block, IRError, IRFunction, IRModule, Value, verify_ssa
from .regalloc import AllocationResult, SpillSlots, allocate

#: One parallel-copy element: destination register, source register, kind.
Copy = Tuple[Reg, Reg, str]


@dataclass
class FunctionConstraints:
    """Allocator inputs a pass attaches to one function (see regalloc)."""

    merges: Sequence[Tuple[int, int]] = ()
    conflict_edges: Sequence[Tuple[int, int]] = ()
    exclusive_vids: Sequence[int] = ()


@dataclass
class LoweringResult:
    program: Program
    module: IRModule
    allocations: Dict[str, AllocationResult]
    slots: SpillSlots
    #: emitted pc -> origin flat pc (None for copies/spills/builder code).
    pc_origin: Dict[int, Optional[int]] = field(default_factory=dict)
    #: origin flat pc -> emitted pc (only instructions that carried one).
    origin_map: Dict[int, int] = field(default_factory=dict)


def _reg_of(value: Value, where: str) -> Reg:
    if value.assigned_reg is None:
        raise IRError(f"{where}: value {value!r} reached emission without a register")
    return value.assigned_reg


def _edge_copies(func: IRFunction, pred_label: str, succ: Block) -> List[Copy]:
    copies: List[Copy] = []
    for phi in succ.phis:
        arg = phi.args[pred_label]
        dst = _reg_of(phi.dst, f"{func.name}/{succ.label}")
        src = _reg_of(arg, f"{func.name}/{succ.label}")
        if dst != src:
            copies.append((dst, src, phi.dst.kind))
    return copies


_MEM = object()  # sentinel: source now lives in the shuffle slot


def sequence_copies(copies: List[Copy], slots: SpillSlots) -> List[Instruction]:
    """Serialise one parallel copy; cycles go through the shuffle slot."""
    pending: List[List[object]] = [[dst, src, kind] for dst, src, kind in copies]
    out: List[Instruction] = []
    while pending:
        blocked_srcs = {entry[1] for entry in pending}
        ready = [entry for entry in pending if entry[0] not in blocked_srcs]
        if ready:
            for dst, src, kind in ready:
                if src is _MEM:
                    op = "fld" if kind == "fp" else "ld"
                    out.append(Instruction(op=opcode(op), dst=dst, src1=ZERO, imm=slots.shuffle))
                else:
                    op = "fmov" if kind == "fp" else "mov"
                    out.append(Instruction(op=opcode(op), dst=dst, src1=src))
            pending = [entry for entry in pending if entry not in ready]
            continue
        # Every pending copy's destination is still needed as a source: a
        # cycle.  Park one source in memory, freeing its register.
        dst, src, kind = pending[0]
        op = "fst" if kind == "fp" else "st"
        out.append(Instruction(op=opcode(op), src2=src, src1=ZERO, imm=slots.shuffle))
        for entry in pending:
            if entry[1] == src:
                entry[1] = _MEM
    return out


@dataclass
class _EmitBlock:
    """One element of a function's final layout."""

    label: str
    depth: int
    start_copies: List[Instruction] = field(default_factory=list)
    block: Optional[Block] = None
    end_copies: List[Instruction] = field(default_factory=list)
    #: Explicit trailing ``br`` for split blocks.
    final_jump: Optional[str] = None


def _plan_function(
    func: IRFunction, slots: SpillSlots
) -> Tuple[List[_EmitBlock], Dict[Tuple[str, str], str]]:
    """Place every edge's copies; returns (layout, branch retarget map)."""
    preds = func.predecessors()
    depth = {b.label: func.loop_depth(b.label) for b in func.blocks}
    at_start: Dict[str, List[Instruction]] = {}
    at_end: Dict[str, List[Instruction]] = {}
    splits_after: Dict[str, List[_EmitBlock]] = {}
    splits_tail: List[_EmitBlock] = []
    retarget: Dict[Tuple[str, str], str] = {}

    n_split = 0
    for block in func.blocks:
        succs = list(dict.fromkeys(func.successors(block)))
        for succ_label in succs:
            succ = func.block(succ_label)
            copies = _edge_copies(func, block.label, succ)
            if not copies:
                continue
            seq = sequence_copies(copies, slots)
            term = block.terminator
            conditional = term is not None and term.op.kind is OpKind.BRANCH
            if len(succs) == 1 and not conditional:
                # Sole successor: the terminator (if any) is an operandless
                # ``br``, so copies slide in just before it.  A conditional
                # terminator is excluded — a copy there could clobber its
                # condition register, which is dead in the liveness model by
                # the time the edge's copies run.
                at_end.setdefault(block.label, []).extend(seq)
            elif len(set(preds[succ_label])) == 1:
                at_start.setdefault(succ_label, []).extend(seq)
            else:
                # Critical edge: split.  A fallthrough edge keeps layout
                # adjacency (split goes right after the predecessor); a
                # branch-target edge appends at the end and the branch is
                # retargeted at emission time.  A branch whose target IS its
                # fallthrough needs both: the split sits in layout after the
                # block and the branch is retargeted onto it.
                split = _EmitBlock(
                    label=f"{func.name}__split{n_split}",
                    depth=depth[block.label],
                    start_copies=seq,
                    final_jump=succ_label,
                )
                n_split += 1
                if conditional and term.target == succ_label:
                    retarget[(block.label, succ_label)] = split.label
                    if len(succs) == 1:  # target == fallthrough
                        splits_after.setdefault(block.label, []).append(split)
                    else:
                        splits_tail.append(split)
                else:
                    splits_after.setdefault(block.label, []).append(split)

    layout: List[_EmitBlock] = []
    for block in func.blocks:
        layout.append(
            _EmitBlock(
                label=block.label,
                depth=depth[block.label],
                start_copies=at_start.get(block.label, []),
                block=block,
                end_copies=at_end.get(block.label, []),
            )
        )
        layout.extend(splits_after.get(block.label, []))
    if splits_tail:
        last = func.blocks[-1].terminator
        if last is None or last.op.kind not in (OpKind.JUMP, OpKind.INDIRECT, OpKind.HALT):
            raise IRError(f"{func.name}: last block may fall through past split blocks")
        layout.extend(splits_tail)
    return layout, retarget


def _emit_instr(instr, retarget: Dict[Tuple[str, str], str], label: str, where: str) -> Instruction:
    def m(op) -> Optional[Reg]:
        if op is None:
            return None
        if isinstance(op, Reg):
            return op
        if isinstance(op, Value):
            return _reg_of(op, where)
        raise IRError(f"{where}: pre-SSA operand {op!r} survived to emission")

    target = instr.target
    if instr.op.kind in (OpKind.BRANCH, OpKind.JUMP):
        target = retarget.get((label, target), target)
    return Instruction(
        op=instr.op,
        dst=m(instr.dst),
        src1=m(instr.src1),
        src2=m(instr.src2),
        imm=instr.imm,
        target=target,
    )


def lower_module(
    module: IRModule,
    *,
    constraints: Optional[Dict[str, FunctionConstraints]] = None,
    slots: Optional[SpillSlots] = None,
    spill: bool = True,
) -> LoweringResult:
    """Allocate registers for every function and emit a flat program."""
    constraints = constraints or {}
    slots = slots or SpillSlots()
    allocations: Dict[str, AllocationResult] = {}
    for func in module.functions:
        verify_ssa(func)
        cons = constraints.get(func.name, FunctionConstraints())
        result = allocate(
            func,
            slots,
            merges=cons.merges,
            conflict_edges=cons.conflict_edges,
            exclusive_vids=cons.exclusive_vids,
            spill=spill,
        )
        if not result.ok:
            raise IRError(result.failure)
        allocations[func.name] = result

    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}
    procedures: List[Procedure] = []
    source_map: Dict[int, SourceLoc] = {}
    pc_origin: Dict[int, Optional[int]] = {}
    origin_map: Dict[int, int] = {}

    def put(inst: Instruction, loc: SourceLoc) -> int:
        pc = len(instructions)
        instructions.append(inst)
        source_map[pc] = loc
        pc_origin[pc] = loc.origin_pc
        if loc.origin_pc is not None:
            origin_map[loc.origin_pc] = pc
        return pc

    for func in module.functions:
        start = len(instructions)
        layout, retarget = _plan_function(func, slots)
        for emit in layout:
            if emit.label in labels:
                raise IRError(f"duplicate block label {emit.label!r} across functions")
            labels[emit.label] = len(instructions)
            loc = SourceLoc(block=emit.label, loop_depth=emit.depth)
            for inst in emit.start_copies:
                put(inst, loc)
            body = list(emit.block.instrs) if emit.block is not None else []
            trailing = None
            if body and body[-1].is_terminator:
                trailing = body.pop()
            for instr in body:
                pc = put(
                    _emit_instr(instr, retarget, emit.label, f"{func.name}/{emit.label}"),
                    SourceLoc(block=emit.label, loop_depth=emit.depth, origin_pc=instr.origin_pc),
                )
                instr.emitted_pc = pc
            for inst in emit.end_copies:
                put(inst, loc)
            if trailing is not None:
                pc = put(
                    _emit_instr(trailing, retarget, emit.label, f"{func.name}/{emit.label}"),
                    SourceLoc(block=emit.label, loop_depth=emit.depth, origin_pc=trailing.origin_pc),
                )
                trailing.emitted_pc = pc
            if emit.final_jump is not None:
                put(Instruction(op=opcode("br"), target=emit.final_jump), loc)
        if func.name not in labels:
            labels[func.name] = start
        elif labels[func.name] != start:
            raise IRError(f"label {func.name!r} does not mark its function's entry")
        procedures.append(Procedure(func.name, start, len(instructions)))

    program = Program(
        instructions,
        labels,
        name=module.name,
        procedures=procedures,
        source_map=source_map,
    )
    return LoweringResult(
        program=program,
        module=module,
        allocations=allocations,
        slots=slots,
        pc_origin=pc_origin,
        origin_map=origin_map,
    )
