"""Trace-equivalence checking for IR round trips.

A lowered program is *equivalent* to its source when, run on the decoded
execution engine from identical initial memory:

* both halt (or both exhaust the budget at the same committed count);
* the committed records that originate from source instructions align 1:1,
  in order, with the source run's records, agreeing on result value,
  effective address, stored value and branch direction (``origin_pc`` keys
  the alignment — absolute pcs shift when copies are inserted);
* every *inserted* record (parallel copies, spill traffic — ``origin_pc``
  is ``None``) touches memory only inside the reserved spill region;
* final memories agree word-for-word outside the spill region.

Register numbering is deliberately **not** compared: reallocation renames
registers while preserving all of the above, and that is the whole point.
This is the same observational-projection idea as the PR 3 pass-preservation
oracle (:func:`repro.testing.oracles.check_pass_preservation`), extended
across the pc shift a lowering introduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..isa.program import Program
from ..sim.functional import RunResult, run_program
from ..sim.memory import Memory
from ..sim.trace import TraceRecord
from .lower import LoweringResult, lower_module
from .regalloc import SPILL_BASE, SPILL_END
from .ssa import raise_program

#: Committed-instruction budget for one equivalence run.
MAX_INSTRUCTIONS = 200_000


class EquivalenceError(AssertionError):
    """A lowered program diverged observably from its source."""


@dataclass
class EquivalenceReport:
    ok: bool
    original_committed: int = 0
    lowered_committed: int = 0
    #: Committed copies/spill instructions (no ``origin_pc``).
    inserted_committed: int = 0
    mismatch: str = ""

    def raise_if_failed(self) -> "EquivalenceReport":
        if not self.ok:
            raise EquivalenceError(self.mismatch)
        return self


def _in_spill_region(addr: Optional[int]) -> bool:
    return addr is not None and SPILL_BASE <= addr < SPILL_END


def _projection(record: TraceRecord) -> Tuple:
    return (record.result, record.addr, record.store_value, record.taken)


def _masked_memory(memory: Memory) -> Dict[int, int]:
    return {addr: word for addr, word in memory.nonzero_words() if not _in_spill_region(addr)}


def check_equivalence(
    original: Program,
    lowering: LoweringResult,
    memory_factory: Callable[[], Memory],
    *,
    max_instructions: int = MAX_INSTRUCTIONS,
) -> EquivalenceReport:
    """Run both programs and compare their observable behaviour."""

    def fail(message: str, **counts: int) -> EquivalenceReport:
        return EquivalenceReport(ok=False, mismatch=message, **counts)

    base: RunResult = run_program(
        original, memory=memory_factory(), max_instructions=max_instructions, collect_trace=True
    )
    new: RunResult = run_program(
        lowering.program, memory=memory_factory(), max_instructions=max_instructions, collect_trace=True
    )
    counts = dict(original_committed=base.instructions, lowered_committed=new.instructions)

    if base.halted != new.halted:
        return fail(f"halt status diverges: original {base.halted}, lowered {new.halted}", **counts)

    origin_records = []
    inserted = 0
    for record in new.trace:
        origin = lowering.pc_origin.get(record.pc)
        if origin is None:
            inserted += 1
            if record.store_value is not None and not _in_spill_region(record.addr):
                return fail(
                    f"inserted instruction at pc {record.pc} stores outside the spill region "
                    f"(addr {record.addr:#x})",
                    **counts,
                )
            continue
        origin_records.append((origin, record))
    counts["inserted_committed"] = inserted

    if len(origin_records) != len(base.trace):
        return fail(
            f"source-originated commits diverge: original {len(base.trace)}, lowered {len(origin_records)}",
            **counts,
        )
    for expected, (origin, got) in zip(base.trace, origin_records):
        if origin != expected.pc:
            return fail(
                f"commit order diverges at seq {expected.seq}: expected origin pc {expected.pc}, got {origin}",
                **counts,
            )
        if _projection(expected) != _projection(got):
            return fail(
                f"observables diverge at origin pc {expected.pc} (seq {expected.seq}): "
                f"{_projection(expected)} != {_projection(got)}",
                **counts,
            )

    if _masked_memory(base.memory) != _masked_memory(new.memory):
        return fail("final memory diverges outside the spill region", **counts)

    return EquivalenceReport(ok=True, **counts)


def roundtrip(
    program: Program,
    memory_factory: Callable[[], Memory],
    *,
    max_instructions: int = MAX_INSTRUCTIONS,
) -> Tuple[LoweringResult, EquivalenceReport]:
    """Raise ``program`` to SSA, lower it back, and check equivalence."""
    module = raise_program(program)
    lowering = lower_module(module)
    report = check_equivalence(program, lowering, memory_factory, max_instructions=max_instructions)
    return lowering, report
