"""SSA compiler mid-end: programmatic IR, passes, and lowering.

The package splits into layers:

* :mod:`repro.ir.nodes` — the data model (values, phis, blocks, functions);
* :mod:`repro.ir.ssa` — raising flat programs and SSA construction;
* :mod:`repro.ir.liveness` — tick-grain value liveness;
* :mod:`repro.ir.regalloc` — coalescing, colouring (reusing the flat
  Chaitin–Briggs machinery) and spilling;
* :mod:`repro.ir.lower` — SSA destruction and emission back to the flat ISA;
* :mod:`repro.ir.builder` — the programmatic front end;
* :mod:`repro.ir.passes` / :mod:`repro.ir.pipeline` — the RVP passes
  rebuilt on SSA, plus flat-entry wrappers (raise -> pass -> lower);
* :mod:`repro.ir.equiv` — trace-equivalence checking for round trips.
"""

from .builder import IRBuilder
from .equiv import EquivalenceReport, check_equivalence, roundtrip
from .liveness import ENTRY_TICK, ValueLiveness, value_liveness
from .lower import FunctionConstraints, LoweringResult, lower_module, sequence_copies
from .nodes import (
    FP,
    INT,
    Block,
    IRError,
    IRFunction,
    IRInstr,
    IRModule,
    Phi,
    Value,
    VReg,
    verify_ssa,
)
from .passes import (
    StridePlan,
    insert_after_instr,
    mark_rvp_loads,
    origin_index,
    plan_reallocation,
    plan_stride_shadows,
)
from .pipeline import (
    apply_stride_pass_ssa,
    insert_after_ssa,
    mark_static_rvp_ssa,
    reallocate_ssa,
)
from .regalloc import SPILL_BASE, SPILL_END, AllocationResult, SpillSlots, allocate
from .ssa import arch_vreg, raise_program, to_ssa

__all__ = [
    "IRBuilder",
    "EquivalenceReport",
    "check_equivalence",
    "roundtrip",
    "ENTRY_TICK",
    "ValueLiveness",
    "value_liveness",
    "FunctionConstraints",
    "LoweringResult",
    "lower_module",
    "sequence_copies",
    "FP",
    "INT",
    "Block",
    "IRError",
    "IRFunction",
    "IRInstr",
    "IRModule",
    "Phi",
    "Value",
    "VReg",
    "verify_ssa",
    "StridePlan",
    "insert_after_instr",
    "mark_rvp_loads",
    "origin_index",
    "plan_reallocation",
    "plan_stride_shadows",
    "apply_stride_pass_ssa",
    "insert_after_ssa",
    "mark_static_rvp_ssa",
    "reallocate_ssa",
    "SPILL_BASE",
    "SPILL_END",
    "AllocationResult",
    "SpillSlots",
    "allocate",
    "arch_vreg",
    "raise_program",
    "to_ssa",
]
