"""Flat-ISA entry points for the SSA pass pipeline.

Each function here is a drop-in twin of a flat compiler pass — same
signature, same return shape, same report fields, same verifier
postconditions — implemented as *raise to SSA -> SSA pass -> lower*.  The
existing flat passes stay untouched; callers, the PR 2 pass-postcondition
verifier (:func:`repro.analysis.verifier.check_program`) and the PR 3
pass-preservation fuzz oracles run unchanged against either path, and the
suite compares the two paths' reports workload by workload.

Shape discipline: marking and reallocation are same-shape passes in the
flat pipeline (no pc shifts), and downstream consumers (profile lists,
lvr pcs) rely on that.  The SSA versions enforce it — reallocation prunes
any constraint whose register assignment would force a phi repair copy,
mirroring the paper's register-exhaustion pruning — so ``origin pc ==
emitted pc`` always holds for those two wrappers.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from ..compiler.insertion import insert_after
from ..compiler.marking import MARKING_LEVELS, marked_pcs
from ..compiler.realloc import ReallocReport
from ..compiler.stride_pass import StridePassReport
from ..isa.instructions import Instruction
from ..isa.program import Program
from ..profiling.lists import DeadHint, ProfileLists
from .lower import FunctionConstraints, LoweringResult, lower_module
from .nodes import IRError, IRModule
from .passes import drop_stride_shadow, mark_rvp_loads, plan_reallocation, plan_stride_shadows
from .regalloc import SpillSlots, allocate
from .ssa import raise_program


def _remap_lists(lists: ProfileLists, pc_map: Dict[int, int]) -> ProfileLists:
    """Carry profile lists across a pc shift (hint producer pcs included)."""

    def hint(h: DeadHint) -> DeadHint:
        if h.producer_pc is None:
            return h
        return replace(h, producer_pc=pc_map.get(h.producer_pc, h.producer_pc))

    new = ProfileLists(threshold=lists.threshold)
    new.same = {pc_map[pc] for pc in lists.same if pc in pc_map}
    new.dead = {pc_map[pc]: hint(h) for pc, h in lists.dead.items() if pc in pc_map}
    new.live = {pc_map[pc]: hint(h) for pc, h in lists.live.items() if pc in pc_map}
    new.last_value = {pc_map[pc] for pc in lists.last_value if pc in pc_map}
    return new


def _require_same_shape(program: Program, lowering: LoweringResult, source: str) -> None:
    if len(lowering.program) != len(program) or any(
        lowering.origin_map.get(pc) != pc for pc in range(len(program))
    ):
        raise IRError(f"{source}: lowering shifted pcs on a same-shape pass")


# ----------------------------------------------------------------------
# Marking
# ----------------------------------------------------------------------
def mark_static_rvp_ssa(
    program: Program,
    lists: ProfileLists,
    level: str = "same",
    verify: Optional[bool] = None,
) -> Program:
    """SSA twin of :func:`repro.compiler.marking.mark_static_rvp`."""
    if level not in MARKING_LEVELS:
        raise ValueError(f"unknown marking level {level!r}; choose from {MARKING_LEVELS}")
    pcs = marked_pcs(program, lists, level)
    module = raise_program(program)
    module.name = f"{program.name}+srvp_{level}"
    mark_rvp_loads(module, pcs)
    lowering = lower_module(module, spill=False)
    _require_same_shape(program, lowering, f"mark_static_rvp_ssa[{level}]")
    marked = lowering.program

    from ..analysis.verifier import check_program, verification_enabled

    if verification_enabled(verify):
        check_program(
            marked,
            source=f"mark_static_rvp_ssa[{level}]({program.name})",
            lists=lists,
            baseline=program,
        )
    return marked


# ----------------------------------------------------------------------
# Insertion
# ----------------------------------------------------------------------
def insert_after_ssa(
    program: Program,
    insertions: Dict[int, List[Instruction]],
    name: Optional[str] = None,
    verify: Optional[bool] = None,
) -> Tuple[Program, Dict[int, int]]:
    """SSA twin of :func:`repro.compiler.insertion.insert_after`.

    Inserted instructions are written against architectural registers, so
    they cannot be transplanted into value space without knowing which
    value holds each register at the insertion point.  Instead the program
    makes the identity round trip through SSA (raise, allocate, lower —
    exercising the whole mid-end) and the insertion is applied to the
    lowered program at the remapped pcs; the composed pc map is returned.
    IR-native insertion — where operands *are* values — is what the stride
    shadow pass uses (:func:`repro.ir.passes.insert_after_instr`).
    """
    lowering = lower_module(raise_program(program), spill=False)
    _require_same_shape(program, lowering, "insert_after_ssa")
    remapped = {lowering.origin_map[pc]: instrs for pc, instrs in insertions.items()}
    inserted, pc_map = insert_after(lowering.program, remapped, name=name, verify=verify)
    composed = {pc: pc_map[lowering.origin_map[pc]] for pc in range(len(program))}
    return inserted, composed


# ----------------------------------------------------------------------
# Stride shadows
# ----------------------------------------------------------------------
def apply_stride_pass_ssa(
    program: Program,
    strides: Dict[int, int],
    lists: Optional[ProfileLists] = None,
    verify: Optional[bool] = None,
) -> Tuple[Program, ProfileLists, StridePassReport]:
    """SSA twin of :func:`repro.compiler.stride_pass.apply_stride_pass`."""
    module = raise_program(program)
    module.name = f"{program.name}+stride"
    plan = plan_stride_shadows(module, strides)
    while True:
        constraints = {
            fname: FunctionConstraints(exclusive_vids=list(vids)) for fname, vids in plan.exclusive.items()
        }
        try:
            lowering = lower_module(module, constraints=constraints, spill=False)
            break
        except IRError:
            if not plan.shadows:
                raise
            drop_stride_shadow(module, plan, max(plan.shadows))

    report = StridePassReport(
        attempted=plan.attempted,
        applied=plan.applied,
        no_free_register=plan.no_free_register,
        not_writable=plan.not_writable,
    )
    pc_map = lowering.origin_map
    new_program = lowering.program
    new_lists = _remap_lists(lists, pc_map) if lists is not None else ProfileLists(threshold=0.8)
    for pc, (shadow, add) in sorted(plan.shadows.items()):
        new_pc = pc_map.get(pc)
        if new_pc is None or new_pc in new_lists.dead:
            continue
        new_lists.dead[new_pc] = DeadHint(reg=shadow.assigned_reg, producer_pc=add.emitted_pc)
        new_lists.same.discard(new_pc)

    from ..analysis.verifier import check_program, verification_enabled

    if verification_enabled(verify):
        check_program(
            new_program,
            source=f"apply_stride_pass_ssa({program.name})",
            lists=new_lists,
            baseline=program,
            pc_map=pc_map,
        )
    return new_program, new_lists, report


# ----------------------------------------------------------------------
# Section 7.3 reallocation
# ----------------------------------------------------------------------
def _phi_copies_needed(func, result) -> bool:
    for block in func.blocks:
        for phi in block.phis:
            for arg in phi.args.values():
                if result.reg_of[phi.dst.vid] != result.reg_of[arg.vid]:
                    return True
    return False


def reallocate_ssa(
    program: Program,
    lists: ProfileLists,
    critical: Optional[Counter] = None,
    loads_only: bool = False,
    verify: Optional[bool] = None,
) -> Tuple[Program, ReallocReport]:
    """SSA twin of :func:`repro.compiler.realloc.reallocate`.

    Dead-register reuse is a live-range merge (producer class absorbs the
    destination class, keeping the hinted register); LVR is exclusivity
    edges against every class defined in the innermost loop.  When the
    colourer cannot honour a constraint set, constraints are pruned in the
    paper's priority order — LVR before dead reuse, outermost/least
    critical first — until the allocation both colours and stays
    shape-identical (no phi repair copies).
    """
    module = raise_program(program)
    module.name = f"{program.name}+realloc"
    plans = plan_reallocation(program, module, lists, critical, loads_only)

    funcs = {f.name: f for f in module.functions}
    final: Dict[str, FunctionConstraints] = {}
    for fname, plan in plans.items():
        func = funcs[fname]
        while True:
            # A destination class a dead merge already placed is skipped by
            # LVR, exactly like the flat pass's dead_moved set.
            merged_webs = {c.other_web for c in plan.merges}
            active_lvr = [c for c in plan.lvr if c.def_web not in merged_webs]
            cons = FunctionConstraints(
                merges=[(c.keep_vid, c.other_vid) for c in plan.merges],
                conflict_edges=[(c.def_vid, other) for c in active_lvr for other in c.other_vids],
            )
            result = allocate(
                func,
                SpillSlots(),
                merges=cons.merges,
                conflict_edges=cons.conflict_edges,
                spill=False,
            )
            dropped = False
            if result.ok:
                for index, cand in enumerate(plan.merges):
                    # An applied merge puts destination and producer in one
                    # class, so they share a register by construction — the
                    # reuse condition.  (Like the flat pass, which moves the
                    # destination to the producer's *current* register, the
                    # shared register need not be the profile-time hint:
                    # mutual reuses legally collapse to one register.)
                    if index not in result.merges_applied:
                        plan.merges.remove(cand)
                        plan.report.dead_conflicting += 1
                        dropped = True
                        break
                if not dropped and _phi_copies_needed(func, result):
                    if active_lvr:
                        plan.lvr.remove(active_lvr[-1])
                        plan.report.pruned_for_coloring += 1
                    elif plan.merges:
                        plan.merges.pop()
                        plan.report.dead_conflicting += 1
                    else:
                        raise IRError(f"{fname}: unconstrained allocation not shape-stable")
                    dropped = True
            else:
                # Colouring failed outright: shed the lowest-priority
                # constraint (LVR before dead reuse, paper heuristic 1).
                if active_lvr:
                    plan.lvr.remove(active_lvr[-1])
                    plan.report.pruned_for_coloring += 1
                elif plan.merges:
                    plan.merges.pop()
                    plan.report.dead_conflicting += 1
                else:
                    raise IRError(result.failure)
                dropped = True
            if not dropped:
                plan.report.dead_applied += len(plan.merges)
                plan.report.lvr_applied += len(active_lvr)
                plan.report.lvr_pcs.update(c.pc for c in active_lvr)
                final[fname] = cons
                break

    lowering = lower_module(module, constraints=final, spill=False)
    _require_same_shape(program, lowering, "reallocate_ssa")
    result_program = lowering.program

    total = ReallocReport()
    for plan in plans.values():
        total = total.merged(plan.report)

    from ..analysis.verifier import check_program, verification_enabled

    if verification_enabled(verify):
        check_program(
            result_program,
            source=f"reallocate_ssa({program.name})",
            lists=lists,
            lvr_pcs=total.lvr_pcs,
            baseline=program,
        )
    return result_program, total
