"""Programmatic IR front end.

:class:`IRBuilder` grows an :class:`~repro.ir.nodes.IRModule` function by
function and block by block, with opcode-named emitters generated from the
opcode table (``f.add(dst, a, b)``, ``f.ld(dst, base, off)``,
``f.beq(cond, "loop")``, ...).  Operands are *virtual registers*: either
architectural (:func:`reg`, carrying a register preference the allocator
honours when it can) or named temporaries (:meth:`FunctionBuilder.var`)
that exist only in the IR and receive a register during lowering — spilling
to memory if pressure demands it.  Multiple assignments to one vreg are
fine; SSA construction (:func:`~repro.ir.ssa.to_ssa`) splits them into
values and places the phis.

Typical shape::

    b = IRBuilder("dotprod")
    f = b.function("main")
    i, acc = f.var("i"), f.var("acc")
    f.li(i, 0)
    f.li(acc, 0)
    f.block("loop")
    ...
    f.bne(cond, "loop")
    f.halt()
    program = b.lower().program

Calling-convention contracts are expressed with architectural vregs: pass
arguments in ``ARG_REGS``, return through ``RETURN_VALUE``, and SSA
renaming pins those values exactly as it does for raised programs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..isa.opcodes import OPCODES, OpKind
from ..isa.program import Program
from ..isa.registers import Reg
from .lower import LoweringResult, lower_module
from .nodes import FP, INT, IRError, IRFunction, IRInstr, IRModule, VReg
from .ssa import arch_vreg, to_ssa

BuildOperand = Union[VReg, Reg, None]


def _coerce(operand: BuildOperand) -> Optional[object]:
    if operand is None:
        return None
    if isinstance(operand, VReg):
        return operand
    if isinstance(operand, Reg):
        return operand if operand.is_zero else arch_vreg(operand)
    raise IRError(f"bad operand {operand!r}: pass a VReg, a Reg, or use imm= for literals")


class FunctionBuilder:
    """Emission context for one function; blocks append in layout order."""

    def __init__(self, func: IRFunction) -> None:
        self.func = func
        self._temps: Dict[str, VReg] = {}
        self._current = None

    # ------------------------------------------------------------------
    # Operands and blocks
    # ------------------------------------------------------------------
    def var(self, name: str, kind: str = INT) -> VReg:
        """A named temporary vreg (no architectural home until allocation)."""
        existing = self._temps.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise IRError(f"temporary {name!r} already declared as {existing.kind}")
            return existing
        vreg = VReg(name=f"%{name}", kind=kind)
        self._temps[name] = vreg
        return vreg

    def block(self, label: str) -> str:
        """Start (or restart emission into) a new block; returns its label."""
        self._current = self.func.add_block(label)
        return label

    def _here(self):
        if self._current is None:
            self.block(self.func.name if not self.func.blocks else f"{self.func.name}__b{len(self.func.blocks)}")
        return self._current

    def emit(
        self,
        op: str,
        dst: BuildOperand = None,
        src1: BuildOperand = None,
        src2: BuildOperand = None,
        imm: Optional[int] = None,
        target: Optional[str] = None,
    ) -> IRInstr:
        instr = IRInstr(op, dst=_coerce(dst), src1=_coerce(src1), src2=_coerce(src2), imm=imm, target=target)
        self._here().instrs.append(instr)
        return instr

    # ------------------------------------------------------------------
    # Opcode-named emitters (f.add, f.ld, f.beq, ... from the opcode table)
    # ------------------------------------------------------------------
    def __getattr__(self, name: str):
        op = OPCODES.get(name)
        if op is None:
            raise AttributeError(name)
        kind = op.kind

        if kind is OpKind.ALU:
            if name in ("li", "fli"):
                return lambda dst, imm: self.emit(name, dst=dst, imm=imm)

            def alu(dst, src1, src2=None):
                if isinstance(src2, int):
                    return self.emit(name, dst=dst, src1=src1, imm=src2)
                return self.emit(name, dst=dst, src1=src1, src2=src2)

            return alu
        if kind is OpKind.LOAD:
            return lambda dst, base, off=0: self.emit(name, dst=dst, src1=base, imm=off)
        if kind is OpKind.STORE:
            return lambda value, base, off=0: self.emit(name, src2=value, src1=base, imm=off)
        if kind is OpKind.BRANCH:
            return lambda src, label: self.emit(name, src1=src, target=label)
        if kind is OpKind.JUMP:
            return lambda label: self.emit(name, target=label)
        if kind is OpKind.CALL:
            return lambda dst, func_name: self.emit(name, dst=dst, target=func_name)
        if kind is OpKind.INDIRECT:
            return lambda addr: self.emit(name, src1=addr)
        return lambda: self.emit(name)  # HALT / NOP


class IRBuilder:
    """Builds an :class:`IRModule`; ``lower()`` produces the flat program."""

    def __init__(self, name: str) -> None:
        self.module = IRModule(name=name)
        self._builders: List[FunctionBuilder] = []
        self._built = False

    def function(self, name: str) -> FunctionBuilder:
        fb = FunctionBuilder(self.module.add_function(name))
        self._builders.append(fb)
        return fb

    def build(self) -> IRModule:
        """Finish construction: convert every function to SSA (idempotent)."""
        if not self._built:
            for func in self.module.functions:
                if not func.blocks:
                    raise IRError(f"function {func.name} has no blocks")
                to_ssa(func)
            self._built = True
        return self.module

    def lower(self, **kwargs) -> LoweringResult:
        return lower_module(self.build(), **kwargs)

    def program(self, **kwargs) -> Program:
        return self.lower(**kwargs).program
