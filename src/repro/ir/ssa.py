"""Raising flat programs to IR and SSA construction.

:func:`raise_program` transliterates a :class:`~repro.isa.program.Program`
into a pre-SSA :class:`~repro.ir.nodes.IRModule` (one function per
procedure, one block per flat basic block, operands as architectural
:class:`~repro.ir.nodes.VReg` locations), then :func:`to_ssa` rewrites each
function into SSA form:

1. **liveness** over vregs at block granularity, an instance of the shared
   fixpoint core (:func:`repro.analysis.dataflow.solve_nodes`) — the same
   engine the flat analyses run on;
2. **pruned phi placement** at iterated dominance frontiers (dominators via
   networkx, frontiers via Cooper–Harvey–Kennedy), inserting a phi for a
   vreg only where it is live-in;
3. **renaming** along the dominator tree (Cytron et al.), materialising the
   calling convention exactly like the flat web builder does: every vreg
   live into the entry receives a pinned *entry value* (the PR 3
   entry-path-at-joins fix, which here falls out of liveness), calls consume
   pinned argument values and define pinned clobber values, and exits
   consume pinned non-volatile values.

Pins are hard register constraints (the SSA analogue of fixed webs); a
value reaching two different pinned uses is a convention violation and
raises :class:`~repro.ir.nodes.IRError`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..analysis.dataflow import BACKWARD, UNION, solve_nodes
from ..analysis.effects import CALL_USES, EXIT_USES, VOLATILES
from ..isa.opcodes import OpKind
from ..isa.program import Procedure, Program
from ..isa.registers import INT, Reg
from .nodes import Block, IRError, IRFunction, IRInstr, IRModule, Phi, Value, VReg, verify_ssa


def arch_vreg(reg: Reg) -> VReg:
    """The canonical vreg for one architectural register."""
    return VReg(name=reg.name, kind=reg.kind, reg=reg)


# ----------------------------------------------------------------------
# Raising: Program -> pre-SSA IRModule
# ----------------------------------------------------------------------
def _block_label(program: Program, proc: Procedure, start: int) -> str:
    if start == proc.start:
        if program.labels.get(proc.name) == start:
            return proc.name
    named = sorted(label for label, pc in program.labels.items() if pc == start)
    if named:
        return named[0]
    return f"{proc.name}__b{start}"


def raise_program(program: Program, *, ssa: bool = True) -> IRModule:
    """Transliterate ``program`` into an IR module (SSA by default)."""
    module = IRModule(name=program.name)
    callee_of: Dict[int, str] = {p.start: p.name for p in program.procedures}
    for proc in program.procedures:
        func = module.add_function(proc.name)
        blocks = program.basic_blocks(proc)
        label_of = {b.start: _block_label(program, proc, b.start) for b in blocks}
        for fb in blocks:
            block = func.add_block(label_of[fb.start])
            for pc in fb.pcs():
                inst = program[pc]

                def operand(reg: Optional[Reg]):
                    if reg is None:
                        return None
                    if reg.is_zero:
                        return reg  # literal zero, passes through untouched
                    return arch_vreg(reg)

                target: Optional[str] = None
                if inst.op.kind in (OpKind.BRANCH, OpKind.JUMP):
                    if inst.target_pc is None or inst.target_pc not in label_of:
                        raise IRError(f"{proc.name}: pc {pc} branches outside its procedure")
                    target = label_of[inst.target_pc]
                elif inst.op.kind is OpKind.CALL:
                    if inst.target_pc not in callee_of:
                        raise IRError(f"{proc.name}: pc {pc} calls mid-procedure target {inst.target!r}")
                    target = callee_of[inst.target_pc]
                block.instrs.append(
                    IRInstr(
                        inst.op.name,
                        dst=operand(inst.dst),
                        src1=operand(inst.src1),
                        src2=operand(inst.src2),
                        imm=inst.imm,
                        target=target,
                        origin_pc=pc,
                    )
                )
    if ssa:
        for func in module.functions:
            to_ssa(func)
    return module


# ----------------------------------------------------------------------
# Per-instruction vreg effects (pre-SSA)
# ----------------------------------------------------------------------
def _instr_effects(instr: IRInstr) -> Tuple[List[VReg], List[VReg]]:
    """(defs, uses) over vregs, including calling-convention implicit ones."""
    defs: List[VReg] = []
    uses: List[VReg] = [op for op in instr.used if isinstance(op, VReg)]
    if isinstance(instr.defined, VReg):
        defs.append(instr.defined)
    if instr.is_call:
        uses.extend(arch_vreg(r) for r in sorted(CALL_USES))
        explicit = instr.defined.reg if isinstance(instr.defined, VReg) else None
        defs.extend(arch_vreg(r) for r in VOLATILES if r != explicit)
    elif instr.is_exit:
        uses.extend(arch_vreg(r) for r in sorted(EXIT_USES))
    return defs, uses


def _vreg_liveness(func: IRFunction) -> Dict[str, Set[VReg]]:
    """Block-level live-in sets of vregs, via the shared fixpoint core."""
    gen: Dict[str, Set[VReg]] = {}
    kill: Dict[str, Set[VReg]] = {}
    for block in func.blocks:
        g: Set[VReg] = set()
        k: Set[VReg] = set()
        for instr in reversed(block.instrs):
            defs, uses = _instr_effects(instr)
            g = set(uses) | (g - set(defs))
            k = (k | set(defs)) - set(uses)
        gen[block.label], kill[block.label] = g, k
    succs = {b.label: func.successors(b) for b in func.blocks}
    solution = solve_nodes(
        [b.label for b in func.blocks],
        lambda label: succs[label],
        gen,
        kill,
        direction=BACKWARD,
        meet=UNION,
        boundary_nodes={b.label for b in func.blocks if not succs[b.label]},
    )
    # Backward orientation: the transfer output is the live-in at block entry.
    return {label: set(facts) for label, facts in solution.output.items()}


# ----------------------------------------------------------------------
# SSA construction
# ----------------------------------------------------------------------
def to_ssa(func: IRFunction) -> IRFunction:
    """Rewrite ``func`` from vreg operands into SSA form, in place."""
    entry_label = func.entry.label
    idom = func.idom()
    unreachable = [b.label for b in func.blocks if b.label not in idom]
    if unreachable:
        raise IRError(f"{func.name}: unreachable blocks {unreachable} (run dead-block removal first)")

    live_in = _vreg_liveness(func)
    needs_entry = {v for v in live_in[entry_label]}

    # --- pruned phi placement at iterated dominance frontiers -----------
    frontiers = func.dominance_frontiers()
    def_blocks: Dict[VReg, Set[str]] = {}
    for block in func.blocks:
        for instr in block.instrs:
            for vreg in _instr_effects(instr)[0]:
                def_blocks.setdefault(vreg, set()).add(block.label)
    for vreg in needs_entry:
        def_blocks.setdefault(vreg, set()).add(entry_label)

    phi_vreg: Dict[int, VReg] = {}  # phi dst vid -> the vreg it merges
    for vreg in sorted(def_blocks, key=lambda v: v.name):
        placed: Set[str] = set()
        worklist = list(def_blocks[vreg])
        while worklist:
            label = worklist.pop()
            for df in sorted(frontiers[label]):
                if df in placed or vreg not in live_in[df]:
                    continue
                placed.add(df)
                dst = func.new_value(vreg.kind, vreg=vreg)
                func.block(df).phis.append(Phi(dst))
                phi_vreg[dst.vid] = vreg
                if df not in def_blocks[vreg]:
                    worklist.append(df)

    # --- renaming along the dominator tree ------------------------------
    children: Dict[str, List[str]] = {b.label: [] for b in func.blocks}
    layout_index = {b.label: i for i, b in enumerate(func.blocks)}
    for label, parent in idom.items():
        if label != entry_label:
            children[parent].append(label)
    for kids in children.values():
        kids.sort(key=lambda lbl: layout_index[lbl])

    stacks: Dict[VReg, List[Value]] = {}

    def top(vreg: VReg, where: str) -> Value:
        stack = stacks.get(vreg)
        if not stack:
            raise IRError(f"{func.name}/{where}: use of {vreg!r} with no reaching definition")
        return stack[-1]

    def pin(value: Value, reg: Reg, where: str) -> None:
        if value.pin is not None and value.pin != reg:
            raise IRError(
                f"{func.name}/{where}: value {value!r} pinned to both {value.pin} and {reg} by the calling convention"
            )
        value.pin = reg

    for vreg in sorted(needs_entry, key=lambda v: v.name):
        if vreg.reg is None:
            raise IRError(f"{func.name}: temporary {vreg!r} may be used before it is initialised")
        value = func.new_value(vreg.kind, vreg=vreg, pin=vreg.reg)
        stacks.setdefault(vreg, []).append(value)
        func.entry_values.append(value)

    def rename_block(label: str) -> List[VReg]:
        """Rename one block; returns the vregs pushed (popped by the walker)."""
        block = func.block(label)
        pushed: List[VReg] = []

        def push(vreg: VReg, value: Value) -> None:
            stacks.setdefault(vreg, []).append(value)
            pushed.append(vreg)

        for phi in block.phis:
            push(phi_vreg[phi.dst.vid], phi.dst)
        for instr in block.instrs:
            where = f"{label}"
            if isinstance(instr.src1, VReg):
                instr.src1 = top(instr.src1, where)
            if isinstance(instr.src2, VReg):
                instr.src2 = top(instr.src2, where)
            if instr.is_call:
                used = []
                for reg in sorted(CALL_USES):
                    value = top(arch_vreg(reg), where)
                    pin(value, reg, where)
                    used.append(value)
                instr.implicit_uses = tuple(used)
            elif instr.is_exit:
                used = []
                for reg in sorted(EXIT_USES):
                    value = top(arch_vreg(reg), where)
                    pin(value, reg, where)
                    used.append(value)
                instr.implicit_uses = tuple(used)
            if isinstance(instr.defined, VReg):
                vreg = instr.defined
                value = func.new_value(vreg.kind, vreg=vreg)
                if instr.is_call:
                    # The link value crosses into the callee's ``ret``: the
                    # convention requires it to stay in its register.
                    pin(value, vreg.reg, where)
                instr.dst = value
                push(vreg, value)
            if instr.is_call:
                explicit = instr.defined.vreg.reg if isinstance(instr.defined, Value) else None
                clobbers = []
                for reg in VOLATILES:
                    if reg == explicit:
                        continue
                    vreg = arch_vreg(reg)
                    value = func.new_value(vreg.kind, vreg=vreg, pin=reg)
                    push(vreg, value)
                    clobbers.append(value)
                instr.implicit_defs = tuple(clobbers)
        for succ in func.successors(block):
            for phi in func.block(succ).phis:
                vreg = phi_vreg[phi.dst.vid]
                phi.args[label] = top(vreg, f"{label}->{succ}")
        return pushed

    # Explicit-stack preorder walk of the dominator tree (recursion-free:
    # straight-line code produces dominator chains as deep as the function).
    walk: List[Tuple[str, Optional[List[VReg]]]] = [(entry_label, None)]
    while walk:
        label, pushed = walk.pop()
        if pushed is not None:  # unwind marker: leave this block's scope
            for vreg in reversed(pushed):
                stacks[vreg].pop()
            continue
        walk.append((label, rename_block(label)))
        for child in reversed(children[label]):
            walk.append((child, None))
    verify_ssa(func)
    return func
