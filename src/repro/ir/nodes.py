"""The SSA IR data model: virtual registers, values, phis, blocks, functions.

The mid-end represents a procedure as an :class:`IRFunction` — an ordered
list of :class:`Block` objects whose instructions mirror the flat ISA's
operand conventions one-for-one (same opcode table, same ``dst/src1/src2/imm``
shapes), so raising and lowering are structural transliterations rather than
instruction selection.

Two operand domains exist over the same instruction shape:

* **pre-SSA** — operands are :class:`VReg` storage locations (architectural
  registers for code raised from a :class:`~repro.isa.program.Program`,
  named temporaries for builder-authored code).  This is what the front end
  (:mod:`repro.ir.builder`) and the raiser produce.
* **SSA** — after :func:`repro.ir.ssa.to_ssa`, operands are :class:`Value`
  objects: one definition each, merged at join points by :class:`Phi` nodes.
  Webs are free in this form — a web is just a value (plus the phi-connected
  values the allocator chooses to coalesce).

Control flow follows the flat ISA's layout semantics: a block falls through
to the next block in ``IRFunction.blocks`` unless its last instruction is an
unconditional transfer; conditional branches have an explicit ``target``
label plus the fallthrough edge.  ``jsr`` targets name *functions* (callees
are separate IRFunctions), not blocks.

Values carry two register affinities the allocator honours:

* ``vreg.reg`` — a soft *preference* (the architectural register the value
  descends from); unconstrained colouring reproduces the input program.
* ``pin`` — a hard requirement imposed by the calling convention (values
  arriving at entry, call arguments/clobbers, exit live-outs), the SSA
  analogue of the flat allocator's *fixed webs*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

import networkx as nx

from ..isa.opcodes import OpKind, Opcode, opcode
from ..isa.registers import Reg

INT = "int"
FP = "fp"


class IRError(Exception):
    """Malformed IR: validation, SSA construction or lowering failure."""


@dataclass(frozen=True)
class VReg:
    """A pre-SSA storage location (architectural register or named temp).

    ``reg`` is the architectural register this location descends from —
    set for raised code, ``None`` for builder temporaries until allocation.
    """

    name: str
    kind: str  # INT or FP
    reg: Optional[Reg] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"%{self.name}"


class Value:
    """One SSA value: a single definition, any number of uses."""

    __slots__ = ("vid", "kind", "vreg", "pin", "assigned_reg", "no_spill")

    def __init__(self, vid: int, kind: str, vreg: Optional[VReg] = None, pin: Optional[Reg] = None) -> None:
        self.vid = vid
        self.kind = kind
        self.vreg = vreg
        #: Hard calling-convention register requirement (fixed-web analogue).
        self.pin = pin
        #: Filled in by the register allocator during lowering.
        self.assigned_reg: Optional[Reg] = None
        #: Spill-generated temporaries must stay in registers (their live
        #: ranges are one instruction long); spilling one again means the
        #: allocator diverged.
        self.no_spill = False

    @property
    def preferred(self) -> Optional[Reg]:
        return self.vreg.reg if self.vreg is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        base = self.vreg.name if self.vreg is not None else self.kind
        return f"%{base}.{self.vid}"


#: An instruction operand: a VReg (pre-SSA), a Value (SSA), or a literal
#: zero register (reads of r31/f31 pass through untouched).
Operand = Union[VReg, Value, Reg]


def operand_is_zero(op: Optional[Operand]) -> bool:
    return isinstance(op, Reg) and op.is_zero


class IRInstr:
    """One IR instruction, shaped exactly like a flat :class:`Instruction`.

    ``target`` is a block label for branches/jumps and a *function* name for
    ``jsr``.  ``origin_pc`` is the flat pc this instruction was raised from
    (``None`` for builder-authored or pass-inserted instructions).
    ``implicit_defs``/``implicit_uses`` are filled during SSA renaming with
    the calling-convention values a call/exit defines and consumes.
    """

    __slots__ = (
        "op",
        "dst",
        "src1",
        "src2",
        "imm",
        "target",
        "origin_pc",
        "implicit_defs",
        "implicit_uses",
        "emitted_pc",
    )

    def __init__(
        self,
        op: str,
        dst: Optional[Operand] = None,
        src1: Optional[Operand] = None,
        src2: Optional[Operand] = None,
        imm: Optional[int] = None,
        target: Optional[str] = None,
        origin_pc: Optional[int] = None,
    ) -> None:
        self.op: Opcode = opcode(op)
        self.dst = dst
        self.src1 = src1
        self.src2 = src2
        self.imm = imm
        self.target = target
        self.origin_pc = origin_pc
        self.implicit_defs: Tuple[Value, ...] = ()
        self.implicit_uses: Tuple[Value, ...] = ()
        #: pc this instruction landed at in the lowered program.
        self.emitted_pc: Optional[int] = None

    # ------------------------------------------------------------------
    # Structural queries (operand-domain agnostic)
    # ------------------------------------------------------------------
    @property
    def defined(self) -> Optional[Operand]:
        """The operand written, or None (zero-register writes are no-ops)."""
        if self.op.writes_dest and self.dst is not None and not operand_is_zero(self.dst):
            return self.dst
        return None

    @property
    def used(self) -> Tuple[Operand, ...]:
        """Operands read, zero-register literals excluded."""
        out = []
        for op in (self.src1, self.src2):
            if op is not None and not operand_is_zero(op):
                out.append(op)
        return tuple(out)

    @property
    def is_terminator(self) -> bool:
        kind = self.op.kind
        return kind in (OpKind.BRANCH, OpKind.JUMP, OpKind.INDIRECT, OpKind.HALT)

    @property
    def is_call(self) -> bool:
        return self.op.kind is OpKind.CALL

    @property
    def is_exit(self) -> bool:
        """Procedure exit: ``ret``/``jmp``/``halt`` (convention uses apply)."""
        return self.op.kind in (OpKind.INDIRECT, OpKind.HALT)

    def render(self) -> str:
        name = self.op.name
        kind = self.op.kind

        def s(op: Optional[Operand]) -> str:
            return repr(op) if op is not None else "_"

        if kind is OpKind.ALU:
            if name in ("li", "fli"):
                return f"{name} {s(self.dst)}, #{self.imm}"
            if self.src2 is not None:
                return f"{name} {s(self.dst)}, {s(self.src1)}, {s(self.src2)}"
            if self.imm is not None:
                return f"{name} {s(self.dst)}, {s(self.src1)}, #{self.imm}"
            return f"{name} {s(self.dst)}, {s(self.src1)}"
        if kind is OpKind.LOAD:
            return f"{name} {s(self.dst)}, {self.imm or 0}({s(self.src1)})"
        if kind is OpKind.STORE:
            return f"{name} {s(self.src2)}, {self.imm or 0}({s(self.src1)})"
        if kind is OpKind.BRANCH:
            return f"{name} {s(self.src1)}, {self.target}"
        if kind is OpKind.JUMP:
            return f"{name} {self.target}"
        if kind is OpKind.CALL:
            return f"{name} {s(self.dst)}, {self.target}"
        if kind is OpKind.INDIRECT:
            return f"{name} {s(self.src1)}"
        return name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.render()}>"


class Phi:
    """An SSA phi: ``dst`` takes ``args[pred_label]`` when entered from that pred."""

    __slots__ = ("dst", "args")

    def __init__(self, dst: Value, args: Optional[Dict[str, Value]] = None) -> None:
        self.dst = dst
        self.args: Dict[str, Value] = dict(args) if args else {}

    def render(self) -> str:
        parts = ", ".join(f"[{label}: {value!r}]" for label, value in sorted(self.args.items()))
        return f"phi {self.dst!r} <- {parts}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.render()}>"


class Block:
    """A basic block: phis, then straight-line instructions."""

    __slots__ = ("label", "phis", "instrs")

    def __init__(self, label: str, instrs: Optional[List[IRInstr]] = None) -> None:
        self.label = label
        self.phis: List[Phi] = []
        self.instrs: List[IRInstr] = list(instrs) if instrs else []

    @property
    def terminator(self) -> Optional[IRInstr]:
        if self.instrs and self.instrs[-1].is_terminator:
            return self.instrs[-1]
        return None


class IRFunction:
    """One procedure in SSA (or pre-SSA) form.

    ``blocks`` is the layout order: a block with no unconditional terminator
    falls through to the next block in the list.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.blocks: List[Block] = []
        self._next_vid = 0
        #: Values that "arrive" at function entry (filled by SSA renaming):
        #: the calling convention's entry pseudo-defs, pinned to their
        #: architectural registers.
        self.entry_values: List[Value] = []

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def add_block(self, label: str) -> Block:
        if any(b.label == label for b in self.blocks):
            raise IRError(f"{self.name}: duplicate block label {label!r}")
        block = Block(label)
        self.blocks.append(block)
        return block

    def new_value(self, kind: str, vreg: Optional[VReg] = None, pin: Optional[Reg] = None) -> Value:
        value = Value(self._next_vid, kind, vreg=vreg, pin=pin)
        self._next_vid += 1
        return value

    # ------------------------------------------------------------------
    # CFG structure
    # ------------------------------------------------------------------
    @property
    def entry(self) -> Block:
        if not self.blocks:
            raise IRError(f"{self.name}: function has no blocks")
        return self.blocks[0]

    def block(self, label: str) -> Block:
        for b in self.blocks:
            if b.label == label:
                return b
        raise KeyError(f"{self.name}: no block {label!r}")

    def successors(self, block: Block) -> Tuple[str, ...]:
        """Successor labels, flat-ISA layout semantics (see class docstring)."""
        index = self.blocks.index(block)
        term = block.terminator
        next_label = self.blocks[index + 1].label if index + 1 < len(self.blocks) else None
        if term is None:
            return (next_label,) if next_label is not None else ()
        kind = term.op.kind
        if kind is OpKind.BRANCH:
            succs = []
            if term.target is not None:
                succs.append(term.target)
            if next_label is not None:
                succs.append(next_label)
            return tuple(dict.fromkeys(succs))
        if kind is OpKind.JUMP:
            return (term.target,)
        return ()  # INDIRECT / HALT: procedure exit

    def predecessors(self) -> Dict[str, List[str]]:
        preds: Dict[str, List[str]] = {b.label: [] for b in self.blocks}
        for b in self.blocks:
            for succ in self.successors(b):
                preds[succ].append(b.label)
        return preds

    def cfg(self) -> "nx.DiGraph":
        graph = nx.DiGraph()
        for b in self.blocks:
            graph.add_node(b.label)
            for succ in self.successors(b):
                graph.add_edge(b.label, succ)
        return graph

    # ------------------------------------------------------------------
    # Dominance and loops
    # ------------------------------------------------------------------
    def idom(self) -> Dict[str, str]:
        graph = self.cfg()
        if self.entry.label not in graph:
            return {}
        result = dict(nx.immediate_dominators(graph, self.entry.label))
        # networkx releases disagree on whether the root maps to itself;
        # callers rely on the classical convention (it does).
        result.setdefault(self.entry.label, self.entry.label)
        return result

    def dominance_frontiers(self) -> Dict[str, Set[str]]:
        """Cooper–Harvey–Kennedy dominance frontiers over block labels."""
        idom = self.idom()
        preds = self.predecessors()
        frontiers: Dict[str, Set[str]] = {b.label: set() for b in self.blocks}
        for block in self.blocks:
            label = block.label
            if len(preds[label]) < 2 or label not in idom:
                continue
            for pred in preds[label]:
                runner = pred
                while runner != idom[label] and runner in idom:
                    frontiers[runner].add(label)
                    if runner == idom[runner]:
                        break
                    runner = idom[runner]
        return frontiers

    def loops(self) -> List[Tuple[str, Set[str], int]]:
        """Natural loops as ``(header_label, body_labels, depth)`` tuples."""
        graph = self.cfg()
        if self.entry.label not in graph:
            return []
        idom = nx.immediate_dominators(graph, self.entry.label)

        def dominates(a: str, b: str) -> bool:
            node = b
            while True:
                if node == a:
                    return True
                parent = idom.get(node)
                if parent is None or parent == node:
                    return node == a
                node = parent

        raw: Dict[str, Set[str]] = {}
        for u, v in graph.edges():
            if dominates(v, u):  # back edge u -> v
                body = {v, u}
                stack = [] if u == v else [u]
                while stack:
                    node = stack.pop()
                    if node == v:
                        continue
                    for pred in graph.predecessors(node):
                        if pred not in body:
                            body.add(pred)
                            stack.append(pred)
                raw.setdefault(v, set()).update(body)
        items = list(raw.items())
        loops = []
        for header, body in items:
            depth = 1 + sum(1 for h, b in items if h != header and body < b)
            loops.append((header, body, depth))
        loops.sort(key=lambda t: t[2])
        return loops

    def loop_depth(self, label: str) -> int:
        depth = 0
        for _, body, d in self.loops():
            if label in body and d > depth:
                depth = d
        return depth

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def values(self) -> Iterator[Value]:
        """Every SSA value defined in this function, in definition order."""
        seen: Set[int] = set()
        for value in self.entry_values:
            if value.vid not in seen:
                seen.add(value.vid)
                yield value
        for block in self.blocks:
            for phi in block.phis:
                if phi.dst.vid not in seen:
                    seen.add(phi.dst.vid)
                    yield phi.dst
            for instr in block.instrs:
                if isinstance(instr.defined, Value) and instr.defined.vid not in seen:
                    seen.add(instr.defined.vid)
                    yield instr.defined
                for value in instr.implicit_defs:
                    if value.vid not in seen:
                        seen.add(value.vid)
                        yield value

    def render(self) -> str:
        lines = [f"func {self.name}:"]
        for block in self.blocks:
            depth = self.loop_depth(block.label)
            suffix = f"  ; loop depth {depth}" if depth else ""
            lines.append(f"  {block.label}:{suffix}")
            for phi in block.phis:
                lines.append(f"      {phi.render()}")
            for instr in block.instrs:
                origin = f"  ; pc {instr.origin_pc}" if instr.origin_pc is not None else ""
                lines.append(f"      {instr.render()}{origin}")
        return "\n".join(lines)


class IRModule:
    """A whole program: functions in layout order (first = entry)."""

    def __init__(self, name: str = "ir_program") -> None:
        self.name = name
        self.functions: List[IRFunction] = []

    def add_function(self, name: str) -> IRFunction:
        if any(f.name == name for f in self.functions):
            raise IRError(f"duplicate function {name!r}")
        func = IRFunction(name)
        self.functions.append(func)
        return func

    def function(self, name: str) -> IRFunction:
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(f"no function {name!r}")

    def render(self) -> str:
        return "\n\n".join(f.render() for f in self.functions) + "\n"


def verify_ssa(func: IRFunction) -> None:
    """Structural SSA check: single defs, phi shape, known branch targets.

    Dominance of uses by defs is implied by construction (the renamer walks
    the dominator tree); this check catches pass bugs that break the cheaper
    structural invariants.
    """
    labels = {b.label for b in func.blocks}
    preds = func.predecessors()
    defined: Set[int] = set()

    def define(value: Value, where: str) -> None:
        if not isinstance(value, Value):
            raise IRError(f"{func.name}/{where}: non-SSA operand {value!r} in def position")
        if value.vid in defined:
            raise IRError(f"{func.name}/{where}: value {value!r} defined twice")
        defined.add(value.vid)

    for block in func.blocks:
        for phi in block.phis:
            define(phi.dst, block.label)
            if set(phi.args) != set(preds[block.label]):
                raise IRError(
                    f"{func.name}/{block.label}: phi args {sorted(phi.args)} != preds {sorted(preds[block.label])}"
                )
        for pos, instr in enumerate(block.instrs):
            if instr.is_terminator and pos != len(block.instrs) - 1:
                raise IRError(f"{func.name}/{block.label}: terminator {instr!r} not at block end")
            if instr.op.kind in (OpKind.BRANCH, OpKind.JUMP) and instr.target not in labels:
                raise IRError(f"{func.name}/{block.label}: branch to unknown block {instr.target!r}")
            if isinstance(instr.defined, Value):
                define(instr.defined, block.label)
            for value in instr.implicit_defs:
                define(value, block.label)
            for op in instr.used:
                if isinstance(op, VReg):
                    raise IRError(f"{func.name}/{block.label}: pre-SSA operand {op!r} in SSA function")
