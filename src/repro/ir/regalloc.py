"""SSA register allocation: coalescing + Chaitin–Briggs colouring + spilling.

The colouring machinery is the flat back end's, reused wholesale:
:func:`repro.compiler.interference.build_interference` consumes the value
*classes* built here (duck-typed like webs: ``index`` / ``kind`` /
``live_pcs``, where the pcs are liveness ticks), and
:func:`repro.compiler.coloring.color_graph` colours them with the same
preference / precolour rules.  What the SSA form adds on top:

* **coalescing** — a union-find over values merges phi-connected values and
  values descending from the same virtual register whenever their tick
  ranges don't overlap, so an unconstrained allocation of a raised program
  reproduces its original registers exactly (every class keeps its
  preferred register).  Pass-requested merges (the reallocator's live-range
  merging) ride the same mechanism with higher priority.
* **constraint edges** — last-value-register exclusivity and
  stride-shadow exclusivity are extra adjacency, exactly like the flat
  reallocator's ``extra_edges``.
* **spilling** — when colouring fails (only possible for builder-authored
  code; a raised program is its own colouring), the uncoloured classes are
  spilled to reserved absolute slots (``SPILL_BASE``): a store after each
  definition, a reload before each use, then the allocation reruns.  The
  flat allocator never needed this; the IR front end does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..compiler.coloring import ColorNode, color_graph
from ..compiler.interference import build_interference
from ..isa.registers import ZERO, Reg
from .liveness import ValueLiveness, value_liveness
from .nodes import IRError, IRFunction, IRInstr, Value

#: Reserved absolute-address region for compiler-generated spill slots and
#: parallel-copy shuffle traffic.  Sits between the workloads' data segments
#: and the stack region; nothing else in the repo addresses it (see
#: DESIGN.md Section 13).
SPILL_BASE = 0xDC_0000
SPILL_END = 0xE0_0000
_WORD = 8


class SpillSlots:
    """Module-wide allocator of spill-slot addresses (absolute, off r31)."""

    def __init__(self, base: int = SPILL_BASE) -> None:
        self.base = base
        self._next = 0
        self._shuffle: Optional[int] = None

    def alloc(self) -> int:
        addr = self.base + self._next * _WORD
        self._next += 1
        if addr >= SPILL_END:
            raise IRError("spill area exhausted")
        return addr

    @property
    def shuffle(self) -> int:
        """The one scratch slot used to break parallel-copy cycles."""
        if self._shuffle is None:
            self._shuffle = self.alloc()
        return self._shuffle

    @property
    def used(self) -> int:
        return self._next


class ValueClass:
    """A coalesce group of SSA values (duck-typed like a flat web)."""

    __slots__ = ("index", "kind", "live_pcs", "vids", "pin", "preferred")

    def __init__(self, index: int, kind: str) -> None:
        self.index = index
        self.kind = kind
        self.live_pcs: Set[int] = set()
        self.vids: Set[int] = set()
        self.pin: Optional[Reg] = None
        self.preferred: Optional[Reg] = None


@dataclass
class AllocationResult:
    """Outcome of one allocation attempt over one function."""

    ok: bool
    liveness: ValueLiveness
    reg_of: Dict[int, Reg] = field(default_factory=dict)  # vid -> register
    class_of: Dict[int, int] = field(default_factory=dict)  # vid -> class index
    classes: Dict[int, ValueClass] = field(default_factory=dict)
    #: Indices of merge requests that were honoured.
    merges_applied: Set[int] = field(default_factory=set)
    #: vids spilled across all rounds.
    spilled: List[int] = field(default_factory=list)
    #: Why colouring failed, when ``ok`` is False.
    failure: str = ""


def _try_union(
    classes: Dict[int, ValueClass],
    root: Dict[int, int],
    keep_vid: int,
    other_vid: int,
    separations: Sequence[Tuple[int, int]] = (),
) -> bool:
    """Merge ``other``'s class into ``keep``'s if legal; keep's affinity wins."""
    a, b = root[keep_vid], root[other_vid]
    if a == b:
        return True
    ca, cb = classes[a], classes[b]
    if ca.kind != cb.kind:
        return False
    if ca.pin is not None and cb.pin is not None and ca.pin != cb.pin:
        return False
    if ca.live_pcs & cb.live_pcs:
        return False
    # A separation (conflict edge) means the two values must end up in
    # different registers, so coalescing their classes is illegal.
    for x, y in separations:
        if x not in root or y not in root:
            continue
        rx, ry = root[x], root[y]
        if (rx == a and ry == b) or (rx == b and ry == a):
            return False
    ca.live_pcs |= cb.live_pcs
    ca.vids |= cb.vids
    ca.pin = ca.pin or cb.pin
    ca.preferred = ca.preferred or cb.preferred
    for vid in cb.vids:
        root[vid] = a
    del classes[b]
    return True


def build_classes(
    func: IRFunction,
    liveness: ValueLiveness,
    merges: Sequence[Tuple[int, int]] = (),
    separations: Sequence[Tuple[int, int]] = (),
) -> Tuple[Dict[int, ValueClass], Dict[int, int], Set[int]]:
    """Coalesce values into classes; returns (classes, vid->class, merges applied)."""
    classes: Dict[int, ValueClass] = {}
    root: Dict[int, int] = {}
    for vid, value in liveness.values.items():
        cls = ValueClass(vid, value.kind)
        cls.live_pcs = set(liveness.ticks.get(vid, ()))
        cls.vids = {vid}
        cls.pin = value.pin
        cls.preferred = value.pin or value.preferred
        classes[vid] = cls
        root[vid] = vid

    applied: Set[int] = set()
    for index, (keep, other) in enumerate(merges):
        if keep in root and other in root and _try_union(classes, root, keep, other, separations):
            applied.add(index)
    for block in func.blocks:
        for phi in block.phis:
            for arg in phi.args.values():
                _try_union(classes, root, phi.dst.vid, arg.vid, separations)
    # Classes carrying a requested merge are excluded from the cosmetic
    # same-vreg coalescing below: folding in another web of the destination
    # register could bring along a calling-convention pin (or a competing
    # preference) that would override the requested register, which the flat
    # pass — recolouring exactly one web — never does.
    locked = {root[vid] for index in applied for vid in merges[index]}
    by_vreg: Dict[object, List[int]] = {}
    for vid in sorted(liveness.values):
        vreg = liveness.values[vid].vreg
        if vreg is not None:
            by_vreg.setdefault(vreg, []).append(vid)
    for vids in by_vreg.values():
        leader = vids[0]
        for vid in vids[1:]:
            if root[leader] in locked or root[vid] in locked:
                continue
            _try_union(classes, root, leader, vid, separations)
    # Re-assert the keep side's affinity (the reallocator's hint register):
    # phi coalescing may have folded the merged class into one whose own
    # preference would otherwise win.
    for index in applied:
        keep = merges[index][0]
        value = liveness.values[keep]
        preference = value.pin or value.preferred
        cls = classes[root[keep]]
        if cls.pin is None and preference is not None:
            cls.preferred = preference
    return classes, root, applied


def textual_vids(func: IRFunction) -> Set[int]:
    """Values that occur in the function's text (instructions or phis).

    The complement — values carried only by convention edges (entry
    definitions and call/exit uses of registers the function never names) —
    matters for stride shadows: the flat pass parks shadows in registers the
    procedure text never touches, treating conventional pass-through
    liveness as free, and exclusivity must match that to reach parity.
    """
    vids: Set[int] = set()
    for block in func.blocks:
        for phi in block.phis:
            vids.add(phi.dst.vid)
            vids.update(arg.vid for arg in phi.args.values())
        for instr in block.instrs:
            if isinstance(instr.defined, Value):
                vids.add(instr.defined.vid)
            vids.update(v.vid for v in instr.used)
    return vids


def _spillable(value: Value) -> bool:
    return value.pin is None and not getattr(value, "no_spill", False)


def _spill_class(func: IRFunction, cls: ValueClass, liveness: ValueLiveness, slots: SpillSlots) -> List[int]:
    """Rewrite the IR so every value in ``cls`` lives in memory; returns vids."""
    spilled = []
    for vid in sorted(cls.vids):
        value = liveness.values[vid]
        if not _spillable(value):
            continue
        slot = slots.alloc()
        store_op = "fst" if value.kind == "fp" else "st"
        load_op = "fld" if value.kind == "fp" else "ld"
        spilled.append(vid)

        for block in func.blocks:
            # Reload before each explicit use (one reload per instruction).
            rebuilt: List[IRInstr] = []
            for instr in block.instrs:
                if any(op is value for op in instr.used):
                    fresh = func.new_value(value.kind)
                    fresh.no_spill = True
                    rebuilt.append(IRInstr(load_op, dst=fresh, src1=ZERO, imm=slot))
                    if instr.src1 is value:
                        instr.src1 = fresh
                    if instr.src2 is value:
                        instr.src2 = fresh
                rebuilt.append(instr)
                # Store right after the definition.
                if instr.defined is value:
                    rebuilt.append(IRInstr(store_op, src2=value, src1=ZERO, imm=slot))
            block.instrs = rebuilt
            # A spilled phi destination is stored at block entry.
            if any(phi.dst is value for phi in block.phis):
                block.instrs.insert(0, IRInstr(store_op, src2=value, src1=ZERO, imm=slot))
        # Phi arguments: reload at the end of the predecessor.
        for block in func.blocks:
            label = block.label
            for succ_label in func.successors(block):
                succ = func.block(succ_label)
                needed = [phi for phi in succ.phis if phi.args.get(label) is value]
                if not needed:
                    continue
                fresh = func.new_value(value.kind)
                fresh.no_spill = True
                reload = IRInstr(load_op, dst=fresh, src1=ZERO, imm=slot)
                if block.terminator is not None:
                    block.instrs.insert(len(block.instrs) - 1, reload)
                else:
                    block.instrs.append(reload)
                for phi in needed:
                    phi.args[label] = fresh
    return spilled


def allocate(
    func: IRFunction,
    slots: SpillSlots,
    *,
    merges: Sequence[Tuple[int, int]] = (),
    conflict_edges: Iterable[Tuple[int, int]] = (),
    exclusive_vids: Iterable[int] = (),
    spill: bool = True,
    max_rounds: int = 16,
) -> AllocationResult:
    """Allocate registers for one SSA function.

    ``merges`` are best-effort coalesce requests ``(keep_vid, other_vid)``
    (the keep side's register affinity wins).  ``conflict_edges`` force two
    values' classes apart (LVR loop exclusivity); ``exclusive_vids`` force a
    value's class apart from *every* same-kind class (stride shadows).  With
    ``spill=False`` a colouring failure returns ``ok=False`` instead of
    spilling — the reallocator uses that to prune constraints, the paper's
    Section 7.3 fallback.
    """
    conflict_edges = list(conflict_edges)
    exclusive_vids = list(exclusive_vids)
    spilled: List[int] = []
    for _ in range(max_rounds):
        liveness = value_liveness(func)
        classes, root, applied = build_classes(func, liveness, merges, conflict_edges)

        adjacency = build_interference(list(classes.values()))
        for vid_a, vid_b in conflict_edges:
            if vid_a not in root or vid_b not in root:
                continue
            a, b = root[vid_a], root[vid_b]
            if a != b and classes[a].kind == classes[b].kind:
                adjacency[a].add(b)
                adjacency[b].add(a)
        textual = textual_vids(func)
        for vid in exclusive_vids:
            if vid not in root:
                continue
            a = root[vid]
            for other in classes.values():
                if other.index == a or other.kind != classes[a].kind:
                    continue
                # Exclusive only against classes with a textual occurrence:
                # conventional pass-through values do not block a shadow,
                # matching the flat pass's untouched-register rule.
                if not (other.vids & textual):
                    continue
                adjacency[a].add(other.index)
                adjacency[other.index].add(a)

        nodes = [
            ColorNode(node_id=cls.index, kind=cls.kind, preferred=cls.preferred, fixed=cls.pin)
            for cls in classes.values()
        ]
        coloring = color_graph(nodes, adjacency, func.name)
        if not coloring.uncolored:
            result = AllocationResult(ok=True, liveness=liveness)
            result.classes = classes
            for vid, cls_index in root.items():
                result.class_of[vid] = cls_index
                reg = coloring.assignment[cls_index]
                result.reg_of[vid] = reg
                liveness.values[vid].assigned_reg = reg
            result.merges_applied = applied
            result.spilled = spilled
            return result

        to_spill = [
            classes[index]
            for index in sorted(coloring.uncolored)
            if classes[index].pin is None and any(_spillable(liveness.values[v]) for v in classes[index].vids)
        ]
        if not spill or not to_spill:
            messages = "; ".join(d.message for d in coloring.diagnostics[:3])
            return AllocationResult(
                ok=False,
                liveness=liveness,
                failure=f"{func.name}: colouring failed ({messages})",
            )
        for cls in to_spill:
            spilled.extend(_spill_class(func, cls, liveness, slots))
    raise IRError(f"{func.name}: spilling did not converge after {max_rounds} rounds")
