"""SSA value liveness with half-point (tick) live ranges.

Runs the shared fixpoint core (:func:`repro.analysis.dataflow.solve_nodes`)
over an *augmented* CFG: one node per block plus one node per edge.  Edge
nodes model phi semantics as parallel copies at the end of the predecessor —
an edge node *generates* the phi arguments flowing along that edge and
*kills* the phi destinations — so a phi destination is born on its incoming
edges and never leaks above them, and a phi argument dies at the edge unless
also live into the successor.

Live ranges are sets of **ticks**: instruction position ``p`` contributes an
*in* tick ``2p`` (operands read) and an *out* tick ``2p + 1`` (result
written).  A value defined at ``p`` starts at ``2p + 1``; a value last used
at ``p`` ends at ``2p``.  Two values interfere iff their tick sets overlap —
which makes ``b := op a`` coalescable with ``a`` (the flat web model's
same-pc conservatism would forbid it, and with it the register-preserving
round trip).  Each CFG edge also owns one position for its parallel copy,
so phi destinations interfere with everything live across the edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..analysis.dataflow import BACKWARD, UNION, solve_nodes
from .nodes import Block, IRFunction, IRInstr, Value

#: Synthetic tick for the function-entry pseudo-definitions.
ENTRY_TICK = -1


def instr_values(instr: IRInstr) -> Tuple[List[Value], List[Value]]:
    """(defs, uses) of ``instr`` in the Value domain, implicit ones included."""
    defs: List[Value] = []
    uses: List[Value] = [op for op in instr.used if isinstance(op, Value)]
    if isinstance(instr.defined, Value):
        defs.append(instr.defined)
    defs.extend(instr.implicit_defs)
    uses.extend(instr.implicit_uses)
    return defs, uses


@dataclass
class ValueLiveness:
    """Tick-grain liveness for one SSA function."""

    func: IRFunction
    #: vid -> ticks at which the value is live (def ticks included).
    ticks: Dict[int, Set[int]] = field(default_factory=dict)
    #: vid -> Value for every value seen.
    values: Dict[int, Value] = field(default_factory=dict)
    #: (pred_label, succ_label) -> the edge's copy position.
    edge_pos: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: block label -> position of each of its instructions, in order.
    positions: Dict[str, List[int]] = field(default_factory=dict)

    def overlap(self, vids_a: Set[int], vids_b: Set[int]) -> bool:
        a: Set[int] = set()
        for vid in vids_a:
            a |= self.ticks.get(vid, set())
        for vid in vids_b:
            if a & self.ticks.get(vid, set()):
                return True
        return False


def value_liveness(func: IRFunction) -> ValueLiveness:
    result = ValueLiveness(func)

    def note(value: Value) -> None:
        result.values.setdefault(value.vid, value)

    # --- positions ------------------------------------------------------
    pos = 0
    for block in func.blocks:
        block_positions: List[int] = []
        for _ in block.instrs:
            block_positions.append(pos)
            pos += 1
        result.positions[block.label] = block_positions
    edges: List[Tuple[str, str]] = []
    for block in func.blocks:
        for succ in func.successors(block):
            edges.append((block.label, succ))
    for edge in edges:
        result.edge_pos[edge] = pos
        pos += 1

    # --- block and edge gen/kill over values ----------------------------
    gen: Dict[object, Set[int]] = {}
    kill: Dict[object, Set[int]] = {}
    for block in func.blocks:
        g: Set[int] = set()
        k: Set[int] = set()
        for instr in reversed(block.instrs):
            defs, uses = instr_values(instr)
            dv = {v.vid for v in defs}
            uv = {v.vid for v in uses}
            for v in defs + uses:
                note(v)
            g = uv | (g - dv)
            k = (k | dv) - uv
        gen[block.label], kill[block.label] = g, k
    phi_dsts: Dict[str, Set[int]] = {}
    for block in func.blocks:
        phi_dsts[block.label] = {phi.dst.vid for phi in block.phis}
        for phi in block.phis:
            note(phi.dst)
            for arg in phi.args.values():
                note(arg)
    for pred, succ in edges:
        args = {phi.args[pred].vid for phi in func.block(succ).phis}
        gen[(pred, succ)] = args
        kill[(pred, succ)] = phi_dsts[succ] - args

    # --- fixpoint over the augmented graph ------------------------------
    node_order: List[object] = [b.label for b in func.blocks] + list(edges)
    succ_map: Dict[object, List[object]] = {}
    for block in func.blocks:
        succ_map[block.label] = [(block.label, s) for s in func.successors(block)]
    for pred, succ in edges:
        succ_map[(pred, succ)] = [succ]
    solution = solve_nodes(
        node_order,
        lambda node: succ_map[node],
        gen,
        kill,
        direction=BACKWARD,
        meet=UNION,
        boundary_nodes={b.label for b in func.blocks if not succ_map[b.label]},
    )

    ticks = result.ticks

    def mark(vid: int, tick: int) -> None:
        ticks.setdefault(vid, set()).add(tick)

    # --- per-position ranges inside blocks ------------------------------
    for block in func.blocks:
        live: Set[int] = set(solution.input[block.label])  # at block exit
        for instr, p in zip(reversed(block.instrs), reversed(result.positions[block.label])):
            defs, uses = instr_values(instr)
            out_tick, in_tick = 2 * p + 1, 2 * p
            for vid in live:
                mark(vid, out_tick)
            for v in defs:
                mark(v.vid, out_tick)
                live.discard(v.vid)
            for v in uses:
                live.add(v.vid)
            for vid in live:
                mark(vid, in_tick)

    # --- edge copy positions --------------------------------------------
    for pred, succ in edges:
        p = result.edge_pos[(pred, succ)]
        out_tick, in_tick = 2 * p + 1, 2 * p
        live_after = set(solution.output[succ])  # live-in of the successor
        live_after |= phi_dsts[succ]
        for vid in live_after:
            mark(vid, out_tick)
        live_before = (live_after - phi_dsts[succ]) | gen[(pred, succ)]
        for vid in live_before:
            mark(vid, in_tick)

    # --- entry pseudo-definitions ---------------------------------------
    for value in func.entry_values:
        note(value)
        mark(value.vid, ENTRY_TICK)
    for vid, value in result.values.items():
        ticks.setdefault(vid, set())
    return result
