"""Register-reuse profiling (paper Sections 1 and 5).

Single streamed forward pass over a functional trace
(:class:`ReuseProfileBuilder`): it mirrors the architectural register file,
keeps an inverted index ``value -> registers currently holding it``, and for
every result-producing dynamic instruction records which registers already
held the result (excluding the destination and the hardwired zeros), who
wrote them, whether the destination itself held it (same-register reuse),
and whether the instruction's previous dynamic result matches (last-value).

Deadness of each matched register is resolved *online* in the same pass: a
match opens a pending query on the register, and the register's next
architectural access answers it — a read means the register was live, a
write (or end of trace) means it was dead, with reads taking precedence
within one instruction.  This is the streaming equivalent of the backward
sweep in :func:`repro.profiling.deadness.resolve_deadness`, and it never
needs the trace materialized.

The aggregate feeds three consumers:

* the Figure 1 analysis (cumulative same / dead / any / any-or-LVP fractions
  for loads),
* the four profile lists of Section 5 (:class:`~repro.profiling.lists.ProfileLists`),
* the Section 7.3 reallocator, which needs each dead-correlation's *primary
  producer* instruction.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..isa.registers import F, R, Reg
from ..sim.trace import TraceRecord
from .deadness import NUM_REG_IDS, reg_id
from .lists import DeadHint, ProfileLists

#: Cap on per-instruction match candidates, to bound profile memory on
#: pathological value distributions (e.g. a register file full of zeros).
MAX_MATCHES = 12


def _reg_from_id(rid: int) -> Reg:
    return R[rid] if rid < 32 else F[rid - 32]


@dataclass
class SiteStats:
    """Aggregated reuse statistics for one static instruction."""

    pc: int
    op_name: str
    is_load: bool
    count: int = 0
    same_hits: int = 0
    lv_hits: int = 0
    any_hits: int = 0  # result present in some other register
    dead_hits: Counter = field(default_factory=Counter)  # rid -> hits while dead
    live_hits: Counter = field(default_factory=Counter)  # rid -> hits while live
    producers: Dict[int, Counter] = field(default_factory=dict)  # rid -> Counter[pc]

    def same_rate(self) -> float:
        return self.same_hits / self.count if self.count else 0.0

    def lv_rate(self) -> float:
        return self.lv_hits / self.count if self.count else 0.0

    def best_dead(self) -> Optional[Tuple[Reg, float, Optional[int]]]:
        """Best dead-correlated register: (reg, hit rate, primary producer pc)."""
        if not self.dead_hits or not self.count:
            return None
        rid, hits = self.dead_hits.most_common(1)[0]
        producer = None
        if rid in self.producers and self.producers[rid]:
            producer = self.producers[rid].most_common(1)[0][0]
        return _reg_from_id(rid), hits / self.count, producer

    def best_any_reg(self) -> Optional[Tuple[Reg, float]]:
        """Best correlated register regardless of deadness (live optimisation)."""
        combined = self.dead_hits + self.live_hits
        if not combined or not self.count:
            return None
        rid, hits = combined.most_common(1)[0]
        return _reg_from_id(rid), hits / self.count


@dataclass
class Fig1Stats:
    """Cumulative load-reuse fractions, the four bars of Figure 1."""

    loads: int = 0
    same: int = 0
    same_or_dead: int = 0
    any_reg: int = 0
    any_reg_or_lvp: int = 0

    def fractions(self) -> Dict[str, float]:
        if not self.loads:
            return {"same": 0.0, "dead": 0.0, "any": 0.0, "any_or_lvp": 0.0}
        return {
            "same": self.same / self.loads,
            "dead": self.same_or_dead / self.loads,
            "any": self.any_reg / self.loads,
            "any_or_lvp": self.any_reg_or_lvp / self.loads,
        }


class _DeadEvent:
    """Defers one Figure-1 ``same_or_dead`` increment until the first matched
    register of a load proves dead (it may never, in which case it lapses)."""

    __slots__ = ("fig1", "counted")

    def __init__(self, fig1: Fig1Stats) -> None:
        self.fig1 = fig1
        self.counted = False


class ReuseProfileBuilder:
    """Incremental single-pass construction of a :class:`ReuseProfile`.

    Feed committed records in order (e.g. straight off
    :meth:`~repro.sim.functional.FunctionalSimulator.iter_run`), then call
    :meth:`finish`.  Deadness queries opened by value matches are answered by
    the matched register's next architectural access, so no backward pass —
    and no materialized trace — is needed.
    """

    def __init__(self) -> None:
        self._sites: Dict[int, SiteStats] = {}
        self._fig1 = Fig1Stats()
        self._reg_values = [0] * NUM_REG_IDS
        self._value_to_regs: Dict[int, Set[int]] = {0: set(range(NUM_REG_IDS))}
        self._last_writer: List[Optional[int]] = [None] * NUM_REG_IDS
        self._last_result: Dict[int, int] = {}
        #: rid -> open queries [(site, producer pc, deferred fig1 event)]
        self._pending: Dict[int, List[Tuple[SiteStats, Optional[int], Optional[_DeadEvent]]]] = {}

    def feed(self, record: TraceRecord) -> None:
        result = record.result
        dst = record.inst.writes
        pending = self._pending

        if result is not None:
            pc = record.pc
            site = self._sites.get(pc)
            if site is None:
                site = self._sites[pc] = SiteStats(pc, record.op_name, record.is_load)
            site.count += 1

            same = result == record.old_dest and dst is not None
            if same:
                site.same_hits += 1
            lvp = self._last_result.get(pc) == result
            if lvp:
                site.lv_hits += 1
            self._last_result[pc] = result

            holders = self._value_to_regs.get(result)
            matched: Tuple[int, ...] = ()
            if holders and dst is not None:
                # Only same-class registers are usable prediction sources
                # (an fp load cannot read its prediction from an int reg).
                dst_rid = reg_id(dst)
                lo, hi = (0, 32) if dst.is_int else (32, 64)
                matched = tuple(
                    rid for rid in holders if lo <= rid < hi and rid != dst_rid and rid % 32 != 31
                )[:MAX_MATCHES]
            if matched:
                site.any_hits += 1

            event: Optional[_DeadEvent] = None
            if record.is_load:
                self._fig1.loads += 1
                any_reg = bool(matched) or same
                self._fig1.same += same
                self._fig1.any_reg += any_reg
                self._fig1.any_reg_or_lvp += any_reg or lvp
                if same:
                    self._fig1.same_or_dead += 1
                elif matched:
                    event = _DeadEvent(self._fig1)
            for rid in matched:
                pending.setdefault(rid, []).append((site, self._last_writer[rid], event))

        # This record's own accesses are the nearest *future* accesses for
        # every query opened at-or-before it: a read keeps the register live
        # and takes precedence over the same instruction's write (the same
        # semantics as resolve_deadness's backward sweep).
        for src in record.inst.reads:
            if not src.is_zero:
                waiting = pending.pop(reg_id(src), None)
                if waiting:
                    rid = reg_id(src)
                    for site, _, _ in waiting:
                        site.live_hits[rid] += 1
        if dst is not None:
            rid = reg_id(dst)
            waiting = pending.pop(rid, None)
            if waiting:
                for site, producer, event in waiting:
                    self._resolve_dead(site, rid, producer, event)

        # Apply the architectural write to the value mirrors.
        if dst is not None and result is not None:
            rid = reg_id(dst)
            old = self._reg_values[rid]
            if old != result:
                holders = self._value_to_regs.get(old)
                if holders is not None:
                    holders.discard(rid)
                    if not holders:
                        del self._value_to_regs[old]
                self._reg_values[rid] = result
                self._value_to_regs.setdefault(result, set()).add(rid)
            self._last_writer[rid] = record.pc

    @staticmethod
    def _resolve_dead(
        site: SiteStats, rid: int, producer: Optional[int], event: Optional[_DeadEvent]
    ) -> None:
        site.dead_hits[rid] += 1
        if producer is not None:
            site.producers.setdefault(rid, Counter())[producer] += 1
        if event is not None and not event.counted:
            event.counted = True
            event.fig1.same_or_dead += 1

    def finish(self) -> "ReuseProfile":
        # A register never accessed again is dead from the match onward.
        for rid, waiting in self._pending.items():
            for site, producer, event in waiting:
                self._resolve_dead(site, rid, producer, event)
        self._pending.clear()
        return ReuseProfile(self._sites, self._fig1)


class ReuseProfile:
    """Full register-reuse profile of one trace."""

    def __init__(self, sites: Dict[int, SiteStats], fig1: Fig1Stats) -> None:
        self.sites = sites
        self.fig1 = fig1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_trace(cls, trace: Iterable[TraceRecord]) -> "ReuseProfile":
        """Profile any iterable of committed records in one streamed pass."""
        builder = ReuseProfileBuilder()
        for record in trace:
            builder.feed(record)
        return builder.finish()

    # ------------------------------------------------------------------
    # Profile lists (Section 5)
    # ------------------------------------------------------------------
    def profile_lists(
        self,
        threshold: float = 0.8,
        loads_only: bool = False,
        min_count: int = 8,
    ) -> ProfileLists:
        """Derive the four lists at a predictability ``threshold``.

        ``loads_only`` restricts candidates to load instructions (the static
        RVP experiments); dynamic all-instruction RVP passes False.
        ``min_count`` ignores sites executed too rarely to judge.
        """
        lists = ProfileLists(threshold=threshold)
        for pc, site in self.sites.items():
            if loads_only and not site.is_load:
                continue
            if site.count < min_count:
                continue
            if site.same_rate() >= threshold:
                lists.same.add(pc)
            dead = site.best_dead()
            if dead is not None and dead[1] >= threshold:
                lists.dead[pc] = DeadHint(reg=dead[0], producer_pc=dead[2])
            live = site.best_any_reg()
            if live is not None and live[1] >= threshold:
                lists.live[pc] = DeadHint(reg=live[0], producer_pc=None)
            if site.lv_rate() >= threshold:
                lists.last_value.add(pc)
        return lists
