"""Dynamic register deadness analysis.

A register is *dead* at dynamic instruction ``seq`` if its current value will
never be read again before the register is next written (paper Section 1).
Deadness needs future knowledge, so it is resolved with a backward pass over
a recorded trace: walking from the end, we maintain each register's *next*
architectural access (read or write); a register is dead at ``seq`` exactly
when its next access at-or-after ``seq`` is a write (or there is none).

The forward phases of the profilers collect *queries* — ``(seq, reg)`` pairs
whose deadness they need — and :func:`resolve_deadness` answers all of them
in one O(trace + queries) sweep.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..isa.registers import Reg
from ..sim.trace import TraceRecord

#: Compact register id: int regs 0..31, fp regs 32..63.
def reg_id(reg: Reg) -> int:
    return reg.index + (0 if reg.is_int else 32)


NUM_REG_IDS = 64


def resolve_deadness(
    trace: Sequence[TraceRecord],
    queries: Iterable[Tuple[int, int]],
) -> Dict[Tuple[int, int], bool]:
    """Answer deadness queries against a trace.

    ``queries`` are ``(seq, reg_id)`` pairs; the result maps each pair to
    True (dead) / False (live).  Deadness at ``seq`` considers accesses by
    instructions with sequence number >= ``seq`` — i.e. "from this
    instruction onward, is the old value ever read before a write?".  An
    instruction's own source reads therefore keep its source registers live
    at its own ``seq`` (the conservative choice the register allocator
    needs).
    """
    by_seq: Dict[int, List[int]] = {}
    for seq, rid in queries:
        by_seq.setdefault(seq, []).append(rid)

    result: Dict[Tuple[int, int], bool] = {}
    # next_access[rid]: +1 => next access is a read (live), -1 => write
    # (dead), 0 => never accessed again (dead).
    next_access = [0] * NUM_REG_IDS

    for record in reversed(trace):
        # Within one instruction, reads happen before the write; walking
        # backward we therefore apply the write first, then the reads, so
        # that by the time this record's own seq is queried both are visible
        # with reads taking precedence.
        dst = record.inst.writes
        if dst is not None:
            next_access[reg_id(dst)] = -1
        for src in record.inst.reads:
            if not src.is_zero:
                next_access[reg_id(src)] = +1
        pending = by_seq.get(record.seq)
        if pending:
            for rid in pending:
                result[(record.seq, rid)] = next_access[rid] <= 0
    # Queries whose seq was never visited (e.g. past the trace end): dead.
    for seq, rids in by_seq.items():
        for rid in rids:
            result.setdefault((seq, rid), True)
    return result
