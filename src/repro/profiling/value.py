"""Standalone last-value profiling (Calder et al. [1]; Gabbay & Mendelson [5]).

:class:`ValueProfile` measures, per static instruction, how often the result
equals the previous result of the same instruction — the quantity last-value
prediction exploits, and the paper's 80%/90% marking thresholds refer to.
The register-reuse profiler folds the same statistic into its sites; this
module exists for analyses and tests that only need value locality (it is a
single cheap forward pass, no deadness resolution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..sim.trace import TraceRecord


@dataclass
class ValueSite:
    pc: int
    op_name: str
    is_load: bool
    count: int = 0
    lv_hits: int = 0
    distinct_cap: int = 0  # number of result changes observed

    def lv_rate(self) -> float:
        return self.lv_hits / self.count if self.count else 0.0


class ValueProfile:
    """Per-pc last-value predictability over one trace."""

    def __init__(self) -> None:
        self.sites: Dict[int, ValueSite] = {}
        self._last: Dict[int, int] = {}

    def observe(self, record: TraceRecord) -> None:
        if record.result is None:
            return
        site = self.sites.get(record.pc)
        if site is None:
            site = self.sites[record.pc] = ValueSite(record.pc, record.op_name, record.is_load)
        site.count += 1
        previous = self._last.get(record.pc)
        if previous == record.result:
            site.lv_hits += 1
        elif previous is not None:
            site.distinct_cap += 1
        self._last[record.pc] = record.result

    @classmethod
    def from_trace(cls, trace: Sequence[TraceRecord]) -> "ValueProfile":
        profile = cls()
        for record in trace:
            profile.observe(record)
        return profile

    def predictable_pcs(self, threshold: float = 0.8, loads_only: bool = False, min_count: int = 8):
        """Static pcs whose last-value rate meets ``threshold``."""
        return {
            pc
            for pc, site in self.sites.items()
            if site.count >= min_count
            and site.lv_rate() >= threshold
            and (site.is_load or not loads_only)
        }
