"""The four profile lists of Section 5 and the hint model built from them.

The paper profiles each application and creates four lists of instructions
that have (1) same-register value reuse, (2) high correlation with a value in
a dead register, (3) high correlation with a value in a live register, and
(4) high last-value predictability.  :class:`ProfileLists` is that artifact.

A *hint* tells the predictor where a candidate instruction's prediction
comes from:

* ``SAME``       — the instruction's own destination register (pure RVP).
* ``REG``        — another architectural register (the dead/live-correlation
  optimisations, modelled the way the paper does: "we track reuse of the
  value in the other register for that instruction").
* ``LAST_VALUE`` — the instruction's own previous result (the idealised
  last-value reallocation: the compiler guarantees no intervening write, so
  same-register reuse equals last-value reuse).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from ..isa.registers import Reg


class HintKind(enum.Enum):
    SAME = "same"
    REG = "reg"
    LAST_VALUE = "last_value"


@dataclass(frozen=True)
class DeadHint:
    """Dead/live-register correlation hint for one static instruction."""

    reg: Reg
    #: pc of the instruction that most often produced the matching value
    #: (needed by the Section 7.3 live-range merging), if known.
    producer_pc: Optional[int] = None


@dataclass
class ProfileLists:
    """The four lists, keyed by static pc.

    Membership is computed independently per list (one pc may satisfy
    several); consumers pick by their optimisation level via :meth:`hint_for`.
    """

    threshold: float
    same: Set[int] = field(default_factory=set)
    dead: Dict[int, DeadHint] = field(default_factory=dict)
    live: Dict[int, DeadHint] = field(default_factory=dict)
    last_value: Set[int] = field(default_factory=set)

    def fingerprint(self) -> tuple:
        """Hashable content key over everything :meth:`hint_for` /
        :meth:`hint_reg` read, for predictor ``static_fingerprint`` (stream
        caching).  Content-based rather than identity-based so two identically
        rebuilt lists (same profile, same threshold) share cached streams."""

        def _hints(hints: Dict[int, DeadHint]) -> tuple:
            return tuple(
                (pc, hint.reg.kind, hint.reg.index, hint.producer_pc)
                for pc, hint in sorted(hints.items())
            )

        return (
            tuple(sorted(self.same)),
            _hints(self.dead),
            _hints(self.live),
            tuple(sorted(self.last_value)),
        )

    def hint_for(
        self,
        pc: int,
        use_dead: bool = False,
        use_live: bool = False,
        use_lv: bool = False,
    ) -> Optional[HintKind]:
        """The hint an optimisation level assigns to ``pc``, or None.

        Priority follows the paper: existing same-register reuse needs no
        help; otherwise dead-register correlation, then live-register
        correlation, then last-value reallocation.
        """
        if pc in self.same:
            return HintKind.SAME
        if use_dead and pc in self.dead:
            return HintKind.REG
        if use_live and pc in self.live:
            return HintKind.REG
        if use_lv and pc in self.last_value:
            return HintKind.LAST_VALUE
        return None

    def hint_reg(self, pc: int, use_live: bool = False) -> Optional[Reg]:
        """The correlated register for a REG hint at ``pc``."""
        if pc in self.dead:
            return self.dead[pc].reg
        if use_live and pc in self.live:
            return self.live[pc].reg
        return None

    def candidate_pcs(self, use_dead: bool = False, use_live: bool = False, use_lv: bool = False) -> Set[int]:
        pcs = set(self.same)
        if use_dead:
            pcs |= set(self.dead)
        if use_live:
            pcs |= set(self.live)
        if use_lv:
            pcs |= self.last_value
        return pcs
