"""Critical-path profiling (Tullsen & Calder [15], used by Section 7.3).

The reallocator's third pruning heuristic ranks instructions by their
contribution to the critical data-dependence path through the program.  We
compute the longest dependence chain over the dynamic trace — register
dependences plus memory dependences (load depends on the last store to the
same address) — then walk the chain backward and count how many of each
static instruction's dynamic instances lie on it.

Instructions with zero critical-path contribution are the cheapest register
reuses to abandon when the interference graph cannot be coloured.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence

from ..sim.trace import TraceRecord
from .deadness import NUM_REG_IDS, reg_id


def critical_path_profile(trace: Sequence[TraceRecord]) -> Counter:
    """Counter mapping static pc -> dynamic instances on the critical path."""
    if not trace:
        return Counter()

    depth: List[int] = [0] * len(trace)
    parent: List[Optional[int]] = [None] * len(trace)
    reg_producer: List[Optional[int]] = [None] * NUM_REG_IDS
    mem_producer: Dict[int, int] = {}

    for i, record in enumerate(trace):
        best_depth = 0
        best_parent: Optional[int] = None

        def consider(producer: Optional[int]) -> None:
            nonlocal best_depth, best_parent
            if producer is not None and depth[producer] > best_depth:
                best_depth = depth[producer]
                best_parent = producer

        for src in record.inst.reads:
            if not src.is_zero:
                consider(reg_producer[reg_id(src)])
        if record.is_load and record.addr is not None:
            consider(mem_producer.get(record.addr))

        depth[i] = best_depth + 1
        parent[i] = best_parent

        dst = record.inst.writes
        if dst is not None and record.result is not None:
            reg_producer[reg_id(dst)] = i
        if record.inst.is_store and record.addr is not None:
            mem_producer[record.addr] = i

    # Walk the deepest chain backward, attributing instances to static pcs.
    tip = max(range(len(trace)), key=lambda i: depth[i])
    contributions: Counter = Counter()
    node: Optional[int] = tip
    while node is not None:
        contributions[trace[node].pc] += 1
        node = parent[node]
    return contributions
