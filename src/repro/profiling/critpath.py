"""Critical-path profiling (Tullsen & Calder [15], used by Section 7.3).

The reallocator's third pruning heuristic ranks instructions by their
contribution to the critical data-dependence path through the program.  We
compute the longest dependence chain over the dynamic trace — register
dependences plus memory dependences (load depends on the last store to the
same address) — then walk the chain backward and count how many of each
static instruction's dynamic instances lie on it.

Instructions with zero critical-path contribution are the cheapest register
reuses to abandon when the interference graph cannot be coloured.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional

from ..sim.trace import TraceRecord
from .deadness import NUM_REG_IDS, reg_id


class CriticalPathBuilder:
    """Incremental single-pass critical-path profiler.

    Feed committed records in order, then call :meth:`finish`.  Only three
    ints per dynamic instruction are retained (depth, parent, static pc), so
    the full :class:`TraceRecord` stream never needs to be materialized.
    """

    def __init__(self) -> None:
        self._depth: List[int] = []
        self._parent: List[Optional[int]] = []
        self._pcs: List[int] = []
        self._reg_producer: List[Optional[int]] = [None] * NUM_REG_IDS
        self._mem_producer: Dict[int, int] = {}

    def feed(self, record: TraceRecord) -> None:
        depth = self._depth
        best_depth = 0
        best_parent: Optional[int] = None

        def consider(producer: Optional[int]) -> None:
            nonlocal best_depth, best_parent
            if producer is not None and depth[producer] > best_depth:
                best_depth = depth[producer]
                best_parent = producer

        for src in record.inst.reads:
            if not src.is_zero:
                consider(self._reg_producer[reg_id(src)])
        if record.is_load and record.addr is not None:
            consider(self._mem_producer.get(record.addr))

        i = len(depth)
        depth.append(best_depth + 1)
        self._parent.append(best_parent)
        self._pcs.append(record.pc)

        dst = record.inst.writes
        if dst is not None and record.result is not None:
            self._reg_producer[reg_id(dst)] = i
        if record.inst.is_store and record.addr is not None:
            self._mem_producer[record.addr] = i

    def finish(self) -> Counter:
        """Walk the deepest chain backward, attributing instances to pcs."""
        if not self._depth:
            return Counter()
        tip = max(range(len(self._depth)), key=lambda i: self._depth[i])
        contributions: Counter = Counter()
        node: Optional[int] = tip
        while node is not None:
            contributions[self._pcs[node]] += 1
            node = self._parent[node]
        return contributions


def critical_path_profile(trace: Iterable[TraceRecord]) -> Counter:
    """Counter mapping static pc -> dynamic instances on the critical path."""
    builder = CriticalPathBuilder()
    for record in trace:
        builder.feed(record)
    return builder.finish()
