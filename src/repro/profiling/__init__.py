"""Profiling: register reuse, deadness, last-value locality, critical path."""

from .critpath import CriticalPathBuilder, critical_path_profile
from .deadness import NUM_REG_IDS, reg_id, resolve_deadness
from .lists import DeadHint, HintKind, ProfileLists
from .reuse import Fig1Stats, MAX_MATCHES, ReuseProfile, ReuseProfileBuilder, SiteStats
from .stride import StrideProfile, StrideSite
from .value import ValueProfile, ValueSite

__all__ = [
    "CriticalPathBuilder",
    "ReuseProfileBuilder",
    "critical_path_profile",
    "NUM_REG_IDS",
    "reg_id",
    "resolve_deadness",
    "DeadHint",
    "HintKind",
    "ProfileLists",
    "Fig1Stats",
    "MAX_MATCHES",
    "ReuseProfile",
    "SiteStats",
    "StrideProfile",
    "StrideSite",
    "ValueProfile",
    "ValueSite",
]
