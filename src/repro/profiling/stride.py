"""Stride profiling: per-instruction constant-delta detection.

Feeds the Section 3 "Et Cetera" compiler transformation ("Stride prediction
can be accomplished with the insertion of an add instruction"): an
instruction whose results advance by a constant delta can be made
register-value predictable by keeping ``last_value + delta`` in a shadow
register.  This profiler finds those instructions and their dominant deltas.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..isa.opcodes import MASK64, to_signed
from ..sim.trace import TraceRecord


@dataclass
class StrideSite:
    pc: int
    op_name: str
    is_load: bool
    count: int = 0
    deltas: Counter = field(default_factory=Counter)

    def dominant(self) -> Optional[tuple]:
        """(delta, rate) of the most common nonzero delta, or None."""
        candidates = [(d, n) for d, n in self.deltas.items() if d != 0]
        if not candidates or self.count <= 1:
            return None
        delta, hits = max(candidates, key=lambda item: item[1])
        return delta, hits / (self.count - 1)


class StrideProfile:
    """Per-pc result deltas over one trace."""

    def __init__(self) -> None:
        self.sites: Dict[int, StrideSite] = {}
        self._last: Dict[int, int] = {}

    def observe(self, record: TraceRecord) -> None:
        if record.result is None:
            return
        site = self.sites.get(record.pc)
        if site is None:
            site = self.sites[record.pc] = StrideSite(record.pc, record.op_name, record.is_load)
        site.count += 1
        previous = self._last.get(record.pc)
        if previous is not None:
            site.deltas[to_signed((record.result - previous) & MASK64)] += 1
        self._last[record.pc] = record.result

    @classmethod
    def from_trace(cls, trace: Sequence[TraceRecord]) -> "StrideProfile":
        profile = cls()
        for record in trace:
            profile.observe(record)
        return profile

    def strided_pcs(
        self,
        threshold: float = 0.8,
        loads_only: bool = True,
        min_count: int = 8,
        max_delta: int = 1 << 20,
    ) -> Dict[int, int]:
        """pc -> dominant delta for instructions strided at ``threshold``.

        ``max_delta`` filters implausible giants (wrap artifacts); deltas may
        be negative (descending walks).
        """
        out: Dict[int, int] = {}
        for pc, site in self.sites.items():
            if site.count < min_count or (loads_only and not site.is_load):
                continue
            dominant = site.dominant()
            if dominant is None:
                continue
            delta, rate = dominant
            if rate >= threshold and abs(delta) <= max_delta:
                out[pc] = delta
        return out
