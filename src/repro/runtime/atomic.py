"""Atomic, durable file writes for campaign artifacts.

Every file the campaign layer persists — journal headers, BENCH payloads,
fuzz reports — goes through :func:`atomic_write_text`: the content is written
to a temporary file in the *same directory*, flushed and fsynced, then moved
over the destination with :func:`os.replace` (atomic on POSIX and Windows for
same-filesystem paths).  A reader therefore never observes a half-written
file: it sees either the old content or the new content, even if the writer
is SIGKILLed mid-write.

Appends (journal cell records) cannot use temp+rename; they instead rely on
line-granular JSONL plus an fsync per committed record — see
:mod:`repro.runtime.journal`, which tolerates a torn *final* line.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Optional


def fsync_directory(path: str) -> None:
    """Best-effort fsync of a directory (durability of the rename itself)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def ensure_durable_directory(path: str) -> str:
    """``makedirs`` whose creations survive a crash (POSIX rename gap).

    ``os.makedirs`` alone leaves the new directory's *entry in its parent*
    unsynced: a power cut after "create out_dir, write journal, fsync
    journal + out_dir" can still lose the whole tree, because out_dir itself
    was never durable.  This walks the missing suffix of ``path``, creating
    each component and fsyncing its parent, so every directory entry on the
    path is on disk before the caller writes into it.
    """
    path = os.path.abspath(path)
    missing = []
    probe = path
    while probe and not os.path.isdir(probe):
        missing.append(probe)
        parent = os.path.dirname(probe)
        if parent == probe:
            break
        probe = parent
    for directory in reversed(missing):
        try:
            os.mkdir(directory)
        except FileExistsError:
            continue
        fsync_directory(os.path.dirname(directory))
    return path


def atomic_write_text(path: str, text: str, fsync: bool = True) -> None:
    """Write ``text`` to ``path`` atomically (temp file + rename).

    The temporary file lives in the destination directory so the final
    :func:`os.replace` never crosses a filesystem boundary.  With ``fsync``
    (the default) the data is flushed to disk before the rename and the
    directory entry is synced after it, so a crash at any point leaves either
    the complete old file or the complete new file.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(prefix=os.path.basename(path) + ".", dir=directory)
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        if fsync:
            fsync_directory(directory)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_json(
    path: str, payload: object, fsync: bool = True, indent: Optional[int] = 2
) -> None:
    """JSON convenience wrapper over :func:`atomic_write_text`."""
    atomic_write_text(path, json.dumps(payload, indent=indent, sort_keys=True) + "\n", fsync=fsync)
