"""repro.runtime — crash-safe, resumable campaign execution.

Layers, bottom-up:

* :mod:`~repro.runtime.atomic` — temp+rename+fsync file writes.
* :mod:`~repro.runtime.retry` — bounded exponential backoff with
  deterministic jitter.
* :mod:`~repro.runtime.errors` — the transient/deterministic failure
  taxonomy threaded through :class:`~repro.core.session.ParallelSuiteRunner`.
* :mod:`~repro.runtime.journal` — the append-only JSONL run journal.
* :mod:`~repro.runtime.campaign` — specs, run/resume orchestration.

``campaign`` is exposed lazily (module-level ``__getattr__``): it imports
:mod:`repro.core.session`, which itself imports this package's ``errors``
and ``retry`` modules, so importing it eagerly here would create an import
cycle through a half-initialized package.
"""

from .atomic import atomic_write_json, atomic_write_text, fsync_directory
from .errors import (
    DETERMINISTIC,
    TRANSIENT,
    BudgetExceeded,
    CampaignError,
    DeterministicError,
    TransientError,
    classify_failure,
    is_timeout,
)
from .journal import (
    JOURNAL_SCHEMA,
    JournalError,
    RunJournal,
    config_fingerprint,
    journal_path,
    list_run_ids,
    new_run_id,
)
from .retry import backoff_delay, backoff_delays

#: Names resolved lazily from .campaign (see module docstring).
_CAMPAIGN_EXPORTS = (
    "CampaignSpec",
    "CampaignReport",
    "MACHINE_FACTORIES",
    "deliver_sigterm_as_interrupt",
    "run_campaign",
    "resume_campaign",
)

__all__ = [
    "atomic_write_json",
    "atomic_write_text",
    "fsync_directory",
    "DETERMINISTIC",
    "TRANSIENT",
    "BudgetExceeded",
    "CampaignError",
    "DeterministicError",
    "TransientError",
    "classify_failure",
    "is_timeout",
    "JOURNAL_SCHEMA",
    "JournalError",
    "RunJournal",
    "config_fingerprint",
    "journal_path",
    "list_run_ids",
    "new_run_id",
    "backoff_delay",
    "backoff_delays",
    *_CAMPAIGN_EXPORTS,
]


def __getattr__(name: str):
    if name in _CAMPAIGN_EXPORTS:
        from . import campaign

        return getattr(campaign, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
