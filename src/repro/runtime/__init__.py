"""repro.runtime — crash-safe, resumable campaign execution.

Layers, bottom-up:

* :mod:`~repro.runtime.atomic` — temp+rename+fsync file writes.
* :mod:`~repro.runtime.retry` — bounded exponential backoff with
  deterministic jitter.
* :mod:`~repro.runtime.errors` — the transient/deterministic failure
  taxonomy threaded through :class:`~repro.core.session.ParallelSuiteRunner`.
* :mod:`~repro.runtime.journal` — the append-only JSONL run journal.
* :mod:`~repro.runtime.heartbeat` — clocks, heartbeat boards and the lease
  protocol the campaign service's work stealing is built on.
* :mod:`~repro.runtime.store` — the shared content-addressed result store
  (the persistent L2 under each worker's in-process session).
* :mod:`~repro.runtime.campaign` — specs, run/resume orchestration.
* :mod:`~repro.runtime.service` — the supervised multi-worker campaign
  service (leases, work stealing, pool rebuilds, serial degradation).

``campaign``, ``store`` and ``service`` are exposed lazily (module-level
``__getattr__``): they import :mod:`repro.core` modules, which themselves
import this package's ``errors`` and ``retry`` modules, so importing them
eagerly here would create an import cycle through a half-initialized
package.
"""

from .atomic import (
    atomic_write_json,
    atomic_write_text,
    ensure_durable_directory,
    fsync_directory,
)
from .heartbeat import (
    DEFAULT_LEASE_DURATION,
    FileHeartbeatBoard,
    HeartbeatBoard,
    Lease,
    LeaseError,
    LeaseTable,
    ManualClock,
    MonotonicClock,
)
from .errors import (
    DETERMINISTIC,
    TRANSIENT,
    BudgetExceeded,
    CampaignError,
    DeterministicError,
    LeaseExpired,
    TransientError,
    WorkerCrashed,
    classify_failure,
    is_timeout,
)
from .journal import (
    JOURNAL_SCHEMA,
    JournalError,
    RunJournal,
    config_fingerprint,
    journal_path,
    list_run_ids,
    new_run_id,
)
from .retry import backoff_delay, backoff_delays

#: Names resolved lazily from .campaign (see module docstring).
_CAMPAIGN_EXPORTS = (
    "CampaignSpec",
    "CampaignReport",
    "MACHINE_FACTORIES",
    "deliver_sigterm_as_interrupt",
    "run_campaign",
    "resume_campaign",
)

#: Names resolved lazily from .store (imports repro.core.metrics).
_STORE_EXPORTS = (
    "ResultStore",
    "StoreError",
    "cell_store_key",
    "result_digest",
)

#: Names resolved lazily from .service (imports repro.core.session).
_SERVICE_EXPORTS = (
    "CampaignSupervisor",
    "ServiceStats",
    "run_service_campaign",
    "resume_service_campaign",
)

__all__ = [
    "atomic_write_json",
    "atomic_write_text",
    "ensure_durable_directory",
    "fsync_directory",
    "DETERMINISTIC",
    "TRANSIENT",
    "BudgetExceeded",
    "CampaignError",
    "DeterministicError",
    "LeaseExpired",
    "TransientError",
    "WorkerCrashed",
    "classify_failure",
    "is_timeout",
    "JOURNAL_SCHEMA",
    "JournalError",
    "RunJournal",
    "config_fingerprint",
    "journal_path",
    "list_run_ids",
    "new_run_id",
    "backoff_delay",
    "backoff_delays",
    "DEFAULT_LEASE_DURATION",
    "FileHeartbeatBoard",
    "HeartbeatBoard",
    "Lease",
    "LeaseError",
    "LeaseTable",
    "ManualClock",
    "MonotonicClock",
    *_CAMPAIGN_EXPORTS,
    *_STORE_EXPORTS,
    *_SERVICE_EXPORTS,
]


def __getattr__(name: str):
    if name in _CAMPAIGN_EXPORTS:
        from . import campaign

        return getattr(campaign, name)
    if name in _STORE_EXPORTS:
        from . import store

        return getattr(store, name)
    if name in _SERVICE_EXPORTS:
        from . import service

        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
