"""Crash-safe, resumable experiment campaigns.

A *campaign* is one (workload × config × recovery) grid executed through
:class:`~repro.core.session.ParallelSuiteRunner`, checkpointed cell-by-cell
into a :class:`~repro.runtime.journal.RunJournal`.  The contract:

* **Crash-safe.**  Every terminal cell state (``ok`` with the serialized
  result, ``failed``/``timeout`` with the diagnostic and its taxonomy kind)
  is fsynced before the campaign moves on.  SIGINT and SIGTERM cancel queued
  cells without waiting on running ones and flush the journal first; SIGKILL
  at worst tears the final journal line, which replay tolerates.
* **Resumable.**  ``resume_campaign`` re-opens the journal, verifies the
  stored config fingerprint (the journal header is the source of truth for
  the grid — a changed grid is an error, not a merge), restores every ``ok``
  cell from its stored payload without re-simulating, and re-executes only
  the non-``ok`` cells.  A campaign killed at 50% therefore finishes the
  remaining 50% and produces the identical
  :class:`~repro.core.results.ResultTable` an uninterrupted run would have.

The machine configuration is referenced *by name* (``table1`` /
``aggressive``) so it participates in the config fingerprint; everything
else in the spec is plain numbers and strings for the same reason.
"""

from __future__ import annotations

import json
import os
import signal
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.experiment import ExperimentResult
from ..core.session import ParallelSuiteRunner, SuiteCell, get_session
from ..uarch.config import MachineConfig, aggressive_config, table1_config
from .atomic import atomic_write_json
from .journal import OK, PENDING, RunJournal, new_run_id

#: Machine configurations a campaign can name (names go into the fingerprint).
MACHINE_FACTORIES: Dict[str, Callable[[], MachineConfig]] = {
    "table1": table1_config,
    "aggressive": aggressive_config,
}


@dataclass(frozen=True)
class CampaignSpec:
    """The complete, fingerprintable description of one campaign grid."""

    workloads: Tuple[str, ...]
    configs: Tuple[str, ...]
    recoveries: Tuple[str, ...] = ("selective",)
    machine: str = "table1"
    max_instructions: int = 40_000
    threshold: float = 0.8
    scale: float = 1.0
    jobs: int = 1

    def __post_init__(self) -> None:
        if self.machine not in MACHINE_FACTORIES:
            raise ValueError(
                f"unknown machine {self.machine!r}; choose from {sorted(MACHINE_FACTORIES)}"
            )

    # -- identity -------------------------------------------------------
    def config_dict(self) -> Dict[str, object]:
        """The canonical payload stored (and fingerprinted) in the journal.

        ``jobs`` is deliberately excluded: parallelism changes scheduling,
        never results, so resuming with a different ``--jobs`` is legal.
        """
        return {
            "workloads": list(self.workloads),
            "configs": list(self.configs),
            "recoveries": list(self.recoveries),
            "machine": self.machine,
            "max_instructions": self.max_instructions,
            "threshold": self.threshold,
            "scale": self.scale,
        }

    @classmethod
    def from_config(cls, config: Dict[str, object], jobs: int = 1) -> "CampaignSpec":
        """Rebuild a spec from a journal header or a spooled spec file.

        Journal headers (written by :meth:`config_dict`) always carry every
        key; hand-written spool specs may omit anything with a dataclass
        default, so only the grid axes are required.
        """
        return cls(
            workloads=tuple(config["workloads"]),
            configs=tuple(config["configs"]),
            recoveries=tuple(config.get("recoveries", ("selective",))),
            machine=str(config.get("machine", "table1")),
            max_instructions=int(config.get("max_instructions", 40_000)),
            threshold=float(config.get("threshold", 0.8)),
            scale=float(config.get("scale", 1.0)),
            jobs=jobs,
        )

    # -- materialization ------------------------------------------------
    def cells(self) -> List[SuiteCell]:
        return [
            SuiteCell(workload, config, recovery)
            for workload in self.workloads
            for config in self.configs
            for recovery in self.recoveries
        ]

    def cell_ids(self) -> List[str]:
        return [cell.cell_id for cell in self.cells()]

    def build_machine(self) -> MachineConfig:
        return MACHINE_FACTORIES[self.machine]()

    def with_jobs(self, jobs: int) -> "CampaignSpec":
        return replace(self, jobs=jobs)


def batch_sidecar_path(out_dir: str, run_id: str) -> str:
    """Path of the fused-batch digest sidecar for one campaign run."""
    return os.path.join(out_dir, f"{run_id}.batches.json")


def compute_batch_digests(spec: CampaignSpec) -> Dict[str, Dict[str, Dict[str, object]]]:
    """Fused per-workload functional digests for every workload in the grid.

    All of a campaign's cells for one workload share the same base program
    and inputs — only the predictor/recovery configuration varies — so their
    functional outcome is one shared artifact.  A single
    :func:`~repro.sim.batched.run_batch` call per workload (inputs as lanes)
    replaces N scalar warm-up runs, and the resulting digests pin the
    workload's architectural behaviour for the run's lifetime: a resume
    recomputes them and refuses to continue into a grid whose programs or
    inputs no longer produce the journaled results.
    """
    session = get_session()
    return {
        workload: session.batch_digests(
            workload,
            spec.scale,
            spec.max_instructions,
            threshold=spec.threshold,
        )
        for workload in spec.workloads
    }


def _write_batch_sidecar(out_dir: str, run_id: str, spec: CampaignSpec) -> Dict:
    digests = compute_batch_digests(spec)
    atomic_write_json(batch_sidecar_path(out_dir, run_id), digests)
    return digests


def _verify_batch_sidecar(out_dir: str, run_id: str, spec: CampaignSpec) -> Dict:
    """On resume: recompute the fused digests and compare with the sidecar.

    A missing sidecar (campaign predates the feature, or was killed before
    the write) is backfilled silently; a *divergent* one means the programs
    or inputs drifted between run and resume, which would silently mix
    incompatible results — that is an error, mirroring the journal's config
    fingerprint check.
    """
    digests = compute_batch_digests(spec)
    path = batch_sidecar_path(out_dir, run_id)
    if not os.path.exists(path):
        atomic_write_json(path, digests)
        return digests
    with open(path, "r", encoding="utf-8") as handle:
        stored = json.load(handle)
    if stored != digests:
        drifted = sorted(
            name for name in set(stored) | set(digests) if stored.get(name) != digests.get(name)
        )
        raise ValueError(
            f"batch digest mismatch on resume of run {run_id!r}: workload(s) "
            f"{', '.join(drifted)} no longer reproduce the journaled functional "
            f"state; refusing to mix incompatible results"
        )
    return digests


@dataclass
class CampaignReport:
    """What one (possibly resumed) campaign run produced."""

    run_id: str
    journal_path: str
    spec: CampaignSpec
    #: Completed results in grid order (restored + freshly executed).
    results: List[ExperimentResult] = field(default_factory=list)
    #: cell id -> terminal status (``pending`` for never-reached cells).
    statuses: Dict[str, str] = field(default_factory=dict)
    #: cell id -> diagnostic for every non-``ok`` cell that failed.
    failures: Dict[str, str] = field(default_factory=dict)
    #: cell id -> ``transient`` / ``deterministic`` for failed cells.
    failure_kinds: Dict[str, str] = field(default_factory=dict)
    restored: int = 0
    executed: int = 0
    resumed: bool = False
    used_processes: bool = False
    #: workload -> input -> fused-batch digest record (see
    #: :func:`compute_batch_digests`).
    batch_digests: Dict[str, Dict[str, Dict[str, object]]] = field(default_factory=dict)
    #: Cells satisfied by the shared content-addressed result store without
    #: any simulation (distinct from ``restored``, which replays the journal).
    store_hits: int = 0

    @property
    def complete(self) -> bool:
        return bool(self.statuses) and all(status == OK for status in self.statuses.values())

    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for status in self.statuses.values():
            tally[status] = tally.get(status, 0) + 1
        return tally


@contextmanager
def deliver_sigterm_as_interrupt():
    """Route SIGTERM through the KeyboardInterrupt unwind path.

    The runner's interrupt handling (cancel queued futures, flush the
    journal, re-raise) is written once against ``KeyboardInterrupt``; this
    makes a polite ``kill`` take the same exit ramp as Ctrl-C.  Outside the
    main thread (or where signals are unavailable) it is a no-op.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    def _raise_interrupt(signum, frame):
        raise KeyboardInterrupt(f"signal {signum}")

    try:
        previous = signal.getsignal(signal.SIGTERM)
        signal.signal(signal.SIGTERM, _raise_interrupt)
    except (ValueError, OSError, AttributeError):
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def build_report(
    spec: CampaignSpec,
    journal: RunJournal,
    restored: Dict[str, ExperimentResult],
    fresh: Dict[str, ExperimentResult],
    resumed: bool,
    executed: int,
    used_processes: bool,
    store_hits: int = 0,
) -> CampaignReport:
    """Assemble a :class:`CampaignReport` from journal state + in-memory results.

    Shared by the in-process campaign path (:func:`run_campaign`) and the
    supervised service path (:mod:`repro.runtime.service`): the journal's
    replayed states are authoritative for statuses and diagnostics, while
    ``restored``/``fresh`` supply the deserialized result objects in grid
    order.
    """
    report = CampaignReport(
        run_id=journal.run_id,
        journal_path=journal.path,
        spec=spec,
        resumed=resumed,
        restored=len(restored),
        executed=executed,
        used_processes=used_processes,
        store_hits=store_hits,
    )
    states = journal.states()
    for cell in spec.cells():
        cell_id = cell.cell_id
        entry = states.get(cell_id)
        report.statuses[cell_id] = str(entry["status"]) if entry else PENDING
        result = fresh.get(cell_id) or restored.get(cell_id)
        if result is None and entry and entry.get("status") == OK and entry.get("result"):
            # Journal has a committed payload the caller never materialized
            # (e.g. a store hit committed straight to the journal).
            result = ExperimentResult.from_dict(entry["result"])
        if result is not None:
            report.results.append(result)
        elif entry and entry.get("error"):
            report.failures[cell_id] = str(entry["error"])
            if entry.get("error_kind"):
                report.failure_kinds[cell_id] = str(entry["error_kind"])
    return report


def _execute(
    spec: CampaignSpec,
    journal: RunJournal,
    cells_to_run: Sequence[SuiteCell],
    restored: Dict[str, ExperimentResult],
    resumed: bool,
    machine: Optional[MachineConfig],
    retries: int,
    cell_timeout: Optional[float],
    executor_factory,
    store=None,
) -> CampaignReport:
    runner = ParallelSuiteRunner(
        machine=machine if machine is not None else spec.build_machine(),
        max_instructions=spec.max_instructions,
        threshold=spec.threshold,
        scale=spec.scale,
        jobs=spec.jobs,
        retries=retries,
        cell_timeout=cell_timeout,
        journal=journal,
        cells=list(cells_to_run),
        store=store,
    )
    if executor_factory is not None:
        runner.executor_factory = executor_factory
    try:
        with deliver_sigterm_as_interrupt():
            suite_report = runner.run()
    except KeyboardInterrupt:
        # The runner already cancelled queued futures and flushed every
        # committed record; closing releases the append handle so the next
        # process can resume from exactly this point.
        journal.close()
        raise
    fresh: Dict[str, ExperimentResult] = {
        SuiteCell(r.workload, r.config, r.recovery).cell_id: r for r in suite_report.results
    }
    report = build_report(
        spec, journal, restored, fresh, resumed=resumed,
        executed=len(cells_to_run), used_processes=suite_report.used_processes,
        store_hits=suite_report.store_hits,
    )
    journal.close()
    return report


def run_campaign(
    spec: CampaignSpec,
    out_dir: str,
    run_id: Optional[str] = None,
    machine: Optional[MachineConfig] = None,
    retries: int = 2,
    cell_timeout: Optional[float] = None,
    executor_factory=None,
    store=None,
) -> CampaignReport:
    """Execute a fresh campaign with a new journal under ``out_dir``."""
    run_id = run_id if run_id is not None else new_run_id()
    journal = RunJournal.create(out_dir, run_id, spec.config_dict(), spec.cell_ids())
    digests = _write_batch_sidecar(out_dir, run_id, spec)
    report = _execute(
        spec, journal, spec.cells(), restored={}, resumed=False,
        machine=machine, retries=retries, cell_timeout=cell_timeout,
        executor_factory=executor_factory, store=store,
    )
    report.batch_digests = digests
    return report


def resume_campaign(
    out_dir: str,
    run_id: str,
    spec: Optional[CampaignSpec] = None,
    jobs: Optional[int] = None,
    machine: Optional[MachineConfig] = None,
    retries: int = 2,
    cell_timeout: Optional[float] = None,
    executor_factory=None,
    store=None,
) -> CampaignReport:
    """Finish an interrupted campaign: restore ``ok`` cells, run the rest.

    The journal header is authoritative for the grid.  A caller-supplied
    ``spec`` is *verified* against the stored fingerprint (and rejected on
    mismatch) rather than trusted; with no spec, the grid is reconstructed
    from the header, so ``repro run --resume <id>`` needs nothing but the id.
    """
    journal = RunJournal.find(out_dir, run_id)
    header_spec = CampaignSpec.from_config(journal.config, jobs=jobs if jobs is not None else 1)
    if spec is not None:
        journal.verify_config(spec.config_dict())
        header_spec = header_spec.with_jobs(jobs if jobs is not None else spec.jobs)
    restored: Dict[str, ExperimentResult] = {}
    for cell_id, entry in journal.states().items():
        if entry.get("status") == OK and entry.get("result"):
            restored[cell_id] = ExperimentResult.from_dict(entry["result"])
    pending_ids = set(journal.pending_cells())
    cells_to_run = [cell for cell in header_spec.cells() if cell.cell_id in pending_ids]
    digests = _verify_batch_sidecar(out_dir, run_id, header_spec)
    report = _execute(
        header_spec, journal, cells_to_run, restored=restored, resumed=True,
        machine=machine, retries=retries, cell_timeout=cell_timeout,
        executor_factory=executor_factory, store=store,
    )
    report.batch_digests = digests
    return report
