"""Shared content-addressed result store: the campaign layer's persistent L2.

:class:`~repro.core.session.SimSession` memoizes traces and program variants
*per process* (the L1); this module adds the layer below it — a directory of
completed :class:`~repro.core.experiment.ExperimentResult` payloads keyed by
the SHA-256 of the cell's *complete effective configuration*, shared by every
campaign, supervisor and user that points at the same ``--store DIR``.  A
cell whose key is present is **never re-simulated**: the runner commits the
stored payload as ``ok`` without constructing an ``ExperimentRunner`` at all.

Key discipline
--------------

A store key covers exactly what determines a cell's result and nothing that
does not (mirroring the journal's config-fingerprint rules):

* the cell identity — ``workload/config/recovery`` (the same canonical id
  the journal uses),
* the full machine configuration (as a dict, so custom machines key
  correctly, not just the named ``table1``/``aggressive`` presets),
* ``max_instructions``, ``threshold``, ``scale``.

``jobs``, lease durations, worker counts and journal ids are excluded —
parallelism and supervision never change results.  The canonical-JSON +
SHA-256 encoding is shared with :func:`repro.runtime.journal.config_fingerprint`.

Crash and concurrency model
---------------------------

Entries are single JSON files written through :mod:`repro.runtime.atomic`
(temp + rename + fsync file and directory), so a reader never observes a
torn entry *at the filesystem level*.  Defence in depth for everything else:

* every entry embeds a ``digest`` — SHA-256 over the canonical encoding of
  its ``result`` payload — verified on read; a corrupt or truncated entry
  (e.g. hand-edited, or torn by a non-atomic copy between machines) is
  treated as a **miss** and deleted best-effort, never returned;
* concurrent supervisors may race on the same key; writes take a
  best-effort advisory ``flock`` on ``<root>/.lock`` and the rename makes
  the race benign — last writer wins, and both writers' payloads are
  byte-identical by construction (same key ⇒ same deterministic result);
* :meth:`ResultStore.prune` evicts oldest-first (entry mtime) so a
  long-lived service can bound the store.
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager
from dataclasses import asdict
from typing import Dict, Iterator, List, Optional

from ..core.metrics import get_metrics
from .atomic import atomic_write_text, ensure_durable_directory
from .errors import CampaignError

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None

#: Schema tag embedded in every store entry.
STORE_SCHEMA = "repro-store/1"


class StoreError(CampaignError):
    """A result-store invariant violation (bad root, unwritable entry)."""


def _canonical(payload: object) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def result_digest(result: Dict[str, object]) -> str:
    """SHA-256 over the canonical encoding of one result payload."""
    return hashlib.sha256(_canonical(result).encode("utf-8")).hexdigest()


def cell_store_key(
    cell_id: str,
    machine: object,
    max_instructions: int,
    threshold: float,
    scale: float,
) -> str:
    """The content address of one cell's result.

    ``machine`` may be a :class:`~repro.uarch.config.MachineConfig` (encoded
    field-by-field) or an already-canonical dict.
    """
    machine_payload = asdict(machine) if not isinstance(machine, dict) else dict(machine)
    identity = {
        "schema": STORE_SCHEMA,
        "cell": cell_id,
        "machine": machine_payload,
        "max_instructions": int(max_instructions),
        "threshold": float(threshold),
        "scale": float(scale),
    }
    return hashlib.sha256(_canonical(identity).encode("utf-8")).hexdigest()


@contextmanager
def _advisory_lock(lock_path: str):
    """Best-effort cross-process write lock (no-op where flock is missing)."""
    if fcntl is None:
        yield
        return
    try:
        fd = os.open(lock_path, os.O_RDWR | os.O_CREAT, 0o644)
    except OSError:
        yield
        return
    try:
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
        except OSError:
            pass
        yield
    finally:
        try:
            fcntl.flock(fd, fcntl.LOCK_UN)
        except OSError:
            pass
        os.close(fd)


class ResultStore:
    """A directory of digest-verified, content-addressed cell results."""

    def __init__(self, root: str, writer: Optional[str] = None) -> None:
        self.root = ensure_durable_directory(root)
        if not os.path.isdir(self.root):
            raise StoreError(f"store root {root!r} is not a directory")
        self.writer = writer if writer is not None else f"pid{os.getpid()}"
        self._lock_path = os.path.join(self.root, ".lock")

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> str:
        """``<root>/<key[:2]>/<key>.json`` — two-level sharding."""
        return os.path.join(self.root, key[:2], f"{key}.json")

    def keys(self) -> List[str]:
        """Every key with an entry file, sorted (integrity not yet checked)."""
        found = []
        try:
            shards = sorted(os.listdir(self.root))
        except OSError:
            return []
        for shard in shards:
            shard_dir = os.path.join(self.root, shard)
            if len(shard) != 2 or not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    found.append(name[: -len(".json")])
        return found

    def __len__(self) -> int:
        return len(self.keys())

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self.path_for(key))

    # ------------------------------------------------------------------
    # Read path (digest-verified; corrupt == miss)
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The stored result payload for ``key``, or ``None`` on miss.

        Any defect — unreadable file, bad JSON, wrong schema, key/digest
        mismatch — counts as a miss: a store can only ever *save* work,
        never corrupt a campaign.  Defective entries are unlinked
        best-effort so the next writer repairs the slot.
        """
        metrics = get_metrics()
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            metrics.inc("store.misses")
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            metrics.inc("store.corrupt")
            self._discard(path)
            return None
        result = entry.get("result") if isinstance(entry, dict) else None
        if (
            not isinstance(entry, dict)
            or entry.get("schema") != STORE_SCHEMA
            or entry.get("key") != key
            or not isinstance(result, dict)
            or entry.get("digest") != result_digest(result)
        ):
            metrics.inc("store.corrupt")
            self._discard(path)
            return None
        metrics.inc("store.hits")
        return result

    @staticmethod
    def _discard(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Write path (atomic, advisory-locked, last-writer-wins)
    # ------------------------------------------------------------------
    def put(
        self,
        key: str,
        result: Dict[str, object],
        cell_id: Optional[str] = None,
        meta: Optional[Dict[str, object]] = None,
    ) -> str:
        """Persist one result under ``key``; returns the entry path."""
        entry: Dict[str, object] = {
            "schema": STORE_SCHEMA,
            "key": key,
            "digest": result_digest(result),
            "writer": self.writer,
            "result": result,
        }
        if cell_id is not None:
            entry["cell"] = cell_id
        if meta:
            entry["meta"] = dict(meta)
        path = self.path_for(key)
        ensure_durable_directory(os.path.dirname(path))
        with _advisory_lock(self._lock_path):
            atomic_write_text(path, json.dumps(entry, sort_keys=True, indent=2) + "\n")
        get_metrics().inc("store.puts")
        return path

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Process-wide store traffic counters (shared metrics registry)."""
        metrics = get_metrics()
        return {
            "hits": metrics.get("store.hits"),
            "misses": metrics.get("store.misses"),
            "puts": metrics.get("store.puts"),
            "corrupt": metrics.get("store.corrupt"),
            "entries": len(self),
        }

    def _entries_by_age(self) -> Iterator[tuple]:
        for key in self.keys():
            path = self.path_for(key)
            try:
                mtime = os.stat(path).st_mtime
            except OSError:
                continue
            yield mtime, key, path

    def prune(self, max_entries: Optional[int] = None, max_age_s: Optional[float] = None) -> int:
        """Evict entries oldest-first; returns how many were removed.

        ``max_entries`` keeps at most that many newest entries;
        ``max_age_s`` removes entries older than the cutoff (entry mtime vs
        the filesystem's clock).  Both may be combined.
        """
        import time as _time

        entries = sorted(self._entries_by_age())
        removed = 0
        if max_age_s is not None:
            cutoff = _time.time() - max_age_s
            for mtime, _key, path in list(entries):
                if mtime < cutoff:
                    self._discard(path)
                    entries.remove((mtime, _key, path))
                    removed += 1
        if max_entries is not None and len(entries) > max_entries:
            excess = len(entries) - max_entries
            for _mtime, _key, path in entries[:excess]:
                self._discard(path)
                removed += 1
        if removed:
            get_metrics().inc("store.evictions", removed)
        return removed
