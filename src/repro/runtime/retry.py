"""Bounded exponential backoff with deterministic jitter.

Transient campaign failures (worker timeouts, poisoned cells, pool hiccups)
are retried on a ``base * 2**attempt`` schedule, capped at ``cap`` seconds.
The jitter that decorrelates retries is *deterministic*: it is derived from a
stable seed (the cell key) rather than wall-clock entropy, so a failing
campaign replays the exact same schedule on every run — a requirement for the
fault-injection tests, which assert the schedule, and in keeping with the
repository-wide no-hidden-randomness rule.
"""

from __future__ import annotations

import random
import zlib
from typing import Iterator, Optional

#: Default schedule parameters used by :class:`~repro.core.session.ParallelSuiteRunner`.
DEFAULT_BACKOFF_BASE = 0.05
DEFAULT_BACKOFF_CAP = 2.0


def _stable_seed(key: object) -> int:
    """A process-independent integer seed for any printable key."""
    return zlib.crc32(repr(key).encode("utf-8"))


def backoff_delay(
    attempt: int,
    base: float = DEFAULT_BACKOFF_BASE,
    cap: float = DEFAULT_BACKOFF_CAP,
    seed: object = 0,
) -> float:
    """Delay before retry number ``attempt`` (0-based), in seconds.

    ``min(cap, base * 2**attempt)`` scaled by a deterministic jitter factor
    in ``[0.5, 1.0)`` ("decorrelated halved jitter"): retries of different
    cells spread out, retries of the same cell are reproducible.
    """
    if attempt < 0:
        raise ValueError("attempt must be >= 0")
    raw = min(cap, base * (2.0 ** attempt))
    jitter = random.Random((_stable_seed(seed) << 16) ^ attempt).uniform(0.5, 1.0)
    return raw * jitter


def backoff_delays(
    attempts: int,
    base: float = DEFAULT_BACKOFF_BASE,
    cap: float = DEFAULT_BACKOFF_CAP,
    seed: object = 0,
    deadline: Optional[float] = None,
) -> Iterator[float]:
    """The full schedule for ``attempts`` retries of one cell.

    ``deadline`` caps the *total elapsed backoff* across the whole schedule:
    once the cumulative delay reaches it, the schedule ends — retrying past
    a cell's wall-clock budget would just trade a transient failure for a
    timeout.  The delay that would cross the deadline is clipped to the
    remaining budget (a shortened retry beats no retry), and later delays
    are dropped.  ``deadline=None`` preserves the unbounded schedule.
    """
    total = 0.0
    for attempt in range(attempts):
        delay = backoff_delay(attempt, base=base, cap=cap, seed=seed)
        if deadline is not None:
            remaining = deadline - total
            if remaining <= 0:
                return
            delay = min(delay, remaining)
        total += delay
        yield delay
