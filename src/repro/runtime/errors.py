"""Structured failure taxonomy for campaign cells.

The paper distinguishes its recovery schemes by *what must be replayed* after
a value misprediction (refetch / reissue / selective, §5); the campaign layer
applies the same discipline to cell failures — replay only what a retry can
actually fix:

``transient``
    The *environment* failed, not the experiment: a worker timed out, a cell
    result was poisoned in transit (unpicklable state), the process pool
    collapsed, an OS-level hiccup.  Rerunning the identical cell can succeed,
    so transient failures get bounded exponential backoff with deterministic
    jitter (:mod:`repro.runtime.retry`).

``deterministic``
    The *experiment* failed: a simulator fault (:class:`SimulationError`,
    including :class:`BudgetExceeded`), a verifier diagnostic
    (:class:`VerificationError`), or any other repeatable error raised by
    deterministic code on deterministic inputs.  Retrying replays the same
    failure, so the cell fails fast — exactly one attempt — and the
    diagnostic is preserved verbatim in the run journal.

Classification is structural, not exhaustive: a known-transient type (or any
exception whose class sets ``transient = True``, the hook the fault injector
uses) is transient; *everything else* is deterministic, because the
simulators, compilers and verifiers below this layer are all seeded and
wall-clock-free — an unknown exception from them will recur on replay.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor, TimeoutError as FutureTimeout

# Re-exported so campaign code has one import point for the whole taxonomy.
from ..sim.functional import BudgetExceeded, SimulationError  # noqa: F401

#: Classification labels recorded in journals and reports.
TRANSIENT = "transient"
DETERMINISTIC = "deterministic"


class CampaignError(RuntimeError):
    """Base class for campaign-layer failures (journal, resume, orchestration)."""


class TransientError(CampaignError):
    """A retryable environment failure, wrapping the original cause."""


class WorkerCrashed(TransientError):
    """A worker process died (SIGKILL, OOM-kill) while holding a cell.

    The environment failed, not the experiment: the same cell re-dispatched
    to a surviving worker is expected to succeed, so the supervisor treats a
    crash exactly like any other transient — re-dispatch with backoff,
    bounded by the retry budget and the cell's wall-clock deadline.
    """


class LeaseExpired(TransientError):
    """A worker stopped heartbeating past its lease deadline.

    Raised *on the worker's behalf* by the supervisor when it reclaims the
    lease of a wedged or silently-dead worker (work stealing).  Transient by
    the same argument as :class:`WorkerCrashed`; the stale worker's late
    result, if one ever arrives, is discarded by the cell's dispatch epoch.
    """


class DeterministicError(CampaignError):
    """A repeatable experiment failure; retrying would replay it."""


#: Exception types that indicate the environment (not the experiment) failed.
#: ``BrokenExecutor`` covers ``BrokenProcessPool``; ``FutureTimeout`` is an
#: alias of the builtin ``TimeoutError`` on Python >= 3.11 and a distinct
#: class before that, so both spellings are listed.
_TRANSIENT_TYPES = (
    FutureTimeout,
    TimeoutError,
    BrokenExecutor,
    ConnectionError,
    EOFError,
    InterruptedError,
    TransientError,
)


def classify_failure(exc: BaseException) -> str:
    """``TRANSIENT`` or ``DETERMINISTIC`` for one raised exception.

    The explicit ``transient`` class attribute wins over the type tables in
    either direction, so test doubles (and future error types in other
    packages) can declare their class without this module importing them.
    """
    explicit = getattr(type(exc), "transient", None)
    if explicit is not None:
        return TRANSIENT if explicit else DETERMINISTIC
    if isinstance(exc, DeterministicError):
        return DETERMINISTIC
    if isinstance(exc, _TRANSIENT_TYPES):
        return TRANSIENT
    if isinstance(exc, OSError):
        return TRANSIENT
    return DETERMINISTIC


def is_timeout(exc: BaseException) -> bool:
    """Was this failure a worker deadline expiry (journal status ``timeout``)?"""
    return isinstance(exc, (FutureTimeout, TimeoutError))
