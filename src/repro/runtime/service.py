"""Fault-tolerant campaign service: a supervisor over a pool of workers.

:func:`~repro.runtime.campaign.run_campaign` executes a grid in-process and
survives *its own* crash via the journal.  This module adds the layer the
journal alone cannot provide: surviving **worker** failure mid-campaign.  A
:class:`CampaignSupervisor` owns the grid and dispatches cells to a pool of
worker processes under a lease protocol:

* every dispatched cell carries a **lease** (:mod:`repro.runtime.heartbeat`)
  that the worker must keep renewing by heartbeating; a worker that is
  SIGKILLed, wedged, or silently dead stops renewing, the lease expires, and
  the supervisor *steals the cell back* and re-dispatches it to a surviving
  worker;
* a **dispatch epoch** per cell makes redelivery exactly-once: if the
  original worker was merely slow and its result arrives after the steal,
  the stale epoch is discarded — each cell reaches exactly one terminal
  journal state;
* worker death that breaks the whole ``ProcessPoolExecutor`` (POSIX kills
  any sibling futures with ``BrokenProcessPool``) triggers a bounded **pool
  rebuild**; past the rebuild budget the supervisor **degrades to serial**
  execution in its own process — a collapsed pool costs throughput, never
  results;
* failures are routed through the existing taxonomy
  (:func:`~repro.runtime.errors.classify_failure`): transient ones
  (:class:`~repro.runtime.errors.WorkerCrashed`,
  :class:`~repro.runtime.errors.LeaseExpired`, timeouts) re-dispatch behind
  the deterministic backoff schedule (:func:`~repro.runtime.retry.backoff_delays`,
  elapsed-capped); deterministic ones fail fast with the diagnostic
  preserved;
* every terminal state goes through the same
  :class:`~repro.runtime.journal.RunJournal` as the in-process path, plus
  ``note`` event records (dispatches, steals, rebuilds, degradation) so a
  post-mortem can replay the supervisor's decisions; supervisor SIGKILL is
  therefore just another resume (:func:`resume_service_campaign`).

All time flows through an injectable clock and all waiting through an
injectable ``sleep``, so the chaos harness (:mod:`repro.testing.faults`)
scripts kills, stalls and races deterministically instead of racing the
wall clock.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, process
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.experiment import ExperimentResult
from ..core.metrics import get_metrics
from ..core.session import SuiteCell, _run_cell, derive_cell_timeout
from ..uarch.config import MachineConfig
from .campaign import (
    CampaignReport,
    CampaignSpec,
    _verify_batch_sidecar,
    _write_batch_sidecar,
    build_report,
    deliver_sigterm_as_interrupt,
)
from .errors import (
    DETERMINISTIC,
    LeaseExpired,
    WorkerCrashed,
    classify_failure,
    is_timeout,
)
from .heartbeat import (
    DEFAULT_LEASE_DURATION,
    FileHeartbeatBoard,
    HeartbeatBoard,
    LeaseTable,
    MonotonicClock,
)
from .journal import OK, RunJournal, new_run_id
from .retry import backoff_delays
from .store import ResultStore, cell_store_key

#: Supervisor poll cadence (seconds): how often futures, heartbeats and
#: lease deadlines are re-examined.  Chaos tests replace ``_sleep`` so this
#: is wall-clock cost only, never a correctness parameter.
DEFAULT_POLL_INTERVAL = 0.05

#: Workers heartbeat at a quarter of the lease duration: four consecutive
#: missed beats before the supervisor presumes death.
BEAT_FRACTION = 0.25


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _beat_loop(board: HeartbeatBoard, cell_id: str, worker: str, interval: float, stop: threading.Event) -> None:
    while not stop.wait(interval):
        board.beat(cell_id, worker)


def _service_cell_worker(
    cell: SuiteCell,
    machine: Optional[MachineConfig],
    max_instructions: int,
    threshold: float,
    scale: float,
    heartbeat_dir: Optional[str],
    worker_tag: str,
    beat_interval: float,
    store_root: Optional[str],
    store_key: Optional[str],
) -> Tuple[str, object]:
    """Top-level (picklable) pool worker: heartbeat + L2 check + run one cell.

    A daemon thread publishes liveness to the file heartbeat board for the
    duration of the cell; the main thread consults the shared result store
    (the L2 under this process's :class:`~repro.core.session.SimSession` L1)
    before simulating, and publishes fresh results back.  Returns a tagged
    pair so the supervisor can count store traffic: ``("store", payload)``
    for an L2 hit, ``("ran", ExperimentResult)`` for fresh work.
    """
    stop = threading.Event()
    board: Optional[HeartbeatBoard] = None
    if heartbeat_dir:
        board = FileHeartbeatBoard(heartbeat_dir)
        board.beat(cell.cell_id, worker_tag)
        beater = threading.Thread(
            target=_beat_loop,
            args=(board, cell.cell_id, worker_tag, beat_interval, stop),
            daemon=True,
        )
        beater.start()
    try:
        store = ResultStore(store_root, writer=worker_tag) if store_root else None
        if store is not None and store_key:
            payload = store.get(store_key)
            if payload is not None:
                return ("store", payload)
        result = _run_cell(cell, machine, max_instructions, threshold, scale)
        if store is not None and store_key:
            try:
                store.put(store_key, result.to_dict(), cell_id=cell.cell_id)
            except OSError:
                pass  # the store accelerates; it never fails a cell
        return ("ran", result)
    finally:
        stop.set()


# ----------------------------------------------------------------------
# Supervisor side
# ----------------------------------------------------------------------
@dataclass
class _Pending:
    """One cell waiting for (re-)dispatch."""

    cell: SuiteCell
    attempts: int = 0
    not_before: float = 0.0
    #: Remaining backoff schedule (filled on first transient failure).
    schedule: Optional[List[float]] = None
    first_error: Optional[str] = None


@dataclass
class _Dispatch:
    """One in-flight (cell, future) pairing under a lease."""

    cell: SuiteCell
    future: object
    epoch: int
    worker_tag: str
    started: float
    attempts: int


@dataclass
class ServiceStats:
    """Supervisor-side counters, journaled at shutdown and asserted by chaos tests."""

    dispatched: int = 0
    completed: int = 0
    store_hits: int = 0
    steals: int = 0
    stale_results_discarded: int = 0
    pool_rebuilds: int = 0
    degraded_serial: bool = False
    lease: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "dispatched": self.dispatched,
            "completed": self.completed,
            "store_hits": self.store_hits,
            "steals": self.steals,
            "stale_results_discarded": self.stale_results_discarded,
            "pool_rebuilds": self.pool_rebuilds,
            "degraded_serial": self.degraded_serial,
            "lease": dict(self.lease),
        }


class CampaignSupervisor:
    """Supervise one campaign over a pool of leased, heartbeating workers."""

    #: Executor factory, ``callable(max_workers=n)``; the chaos harness
    #: substitutes a scripted executor here.
    executor_factory = ProcessPoolExecutor

    #: Injectable wait primitive — the chaos harness replaces this with a
    #: function that advances a :class:`ManualClock` and emits scripted beats.
    _sleep = staticmethod(time.sleep)

    def __init__(
        self,
        spec: CampaignSpec,
        out_dir: str,
        workers: Optional[int] = None,
        store: Optional[ResultStore] = None,
        lease_duration: float = DEFAULT_LEASE_DURATION,
        machine: Optional[MachineConfig] = None,
        retries: int = 2,
        cell_timeout: Optional[float] = None,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        max_pool_rebuilds: int = 2,
        clock: Optional[MonotonicClock] = None,
        heartbeats: Optional[HeartbeatBoard] = None,
        executor_factory=None,
        use_heartbeat_files: bool = True,
    ) -> None:
        self.spec = spec
        self.out_dir = out_dir
        self.workers = workers if workers is not None else max(1, spec.jobs)
        self.store = store
        self.machine = machine if machine is not None else spec.build_machine()
        self.retries = max(0, retries)
        self.cell_timeout = (
            derive_cell_timeout(spec.max_instructions) if cell_timeout is None else cell_timeout
        )
        self.retry_deadline = self.cell_timeout
        self.poll_interval = poll_interval
        self.max_pool_rebuilds = max(0, max_pool_rebuilds)
        self.clock = clock if clock is not None else MonotonicClock()
        self.lease_duration = lease_duration
        self.leases = LeaseTable(duration=lease_duration, clock=self.clock)
        self.stats = ServiceStats()
        if executor_factory is not None:
            self.executor_factory = executor_factory
        self._heartbeats = heartbeats
        self._use_heartbeat_files = use_heartbeat_files
        self._heartbeat_dir: Optional[str] = None
        self._epochs: Dict[str, int] = {}
        self._abandoned: List[_Dispatch] = []
        self._dispatch_counter = 0

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def run(self, run_id: Optional[str] = None) -> CampaignReport:
        """Execute a fresh supervised campaign (new journal under ``out_dir``)."""
        run_id = run_id if run_id is not None else new_run_id()
        journal = RunJournal.create(
            self.out_dir, run_id, self.spec.config_dict(), self.spec.cell_ids()
        )
        digests = _write_batch_sidecar(self.out_dir, run_id, self.spec)
        report = self._supervise(journal, self.spec.cells(), restored={}, resumed=False)
        report.batch_digests = digests
        return report

    def resume(self, run_id: str) -> CampaignReport:
        """Resume a supervised campaign after supervisor death (SIGKILL, crash).

        The journal is authoritative: ``ok`` cells are restored from their
        stored payloads, every other cell re-enters the dispatch queue.  The
        spec this supervisor was built with is verified against the header
        fingerprint, so a drifted grid is refused, not merged.
        """
        journal = RunJournal.find(self.out_dir, run_id)
        journal.verify_config(self.spec.config_dict())
        restored: Dict[str, ExperimentResult] = {}
        for cell_id, entry in journal.states().items():
            if entry.get("status") == OK and entry.get("result"):
                restored[cell_id] = ExperimentResult.from_dict(entry["result"])
        pending_ids = set(journal.pending_cells())
        cells = [cell for cell in self.spec.cells() if cell.cell_id in pending_ids]
        digests = _verify_batch_sidecar(self.out_dir, run_id, self.spec)
        report = self._supervise(journal, cells, restored=restored, resumed=True)
        report.batch_digests = digests
        return report

    # ------------------------------------------------------------------
    # Store addressing
    # ------------------------------------------------------------------
    def store_key(self, cell: SuiteCell) -> str:
        return cell_store_key(
            cell.cell_id,
            self.machine,
            self.spec.max_instructions,
            self.spec.threshold,
            self.spec.scale,
        )

    # ------------------------------------------------------------------
    # Core supervision loop
    # ------------------------------------------------------------------
    def _supervise(
        self,
        journal: RunJournal,
        cells: Sequence[SuiteCell],
        restored: Dict[str, ExperimentResult],
        resumed: bool,
    ) -> CampaignReport:
        metrics = get_metrics()
        self._heartbeat_dir = (
            os.path.join(self.out_dir, f"{journal.run_id}.heartbeats")
            if self._use_heartbeat_files
            else None
        )
        board = self._heartbeats
        if board is None and self._heartbeat_dir is not None:
            board = FileHeartbeatBoard(self._heartbeat_dir, clock=self.clock)
        journal.note(
            "service_start",
            workers=self.workers,
            lease_duration=self.lease_duration,
            resumed=resumed,
            cells=len(cells),
        )
        pending: "OrderedDict[str, _Pending]" = OrderedDict(
            (cell.cell_id, _Pending(cell=cell)) for cell in cells
        )
        inflight: Dict[str, _Dispatch] = {}
        fresh: Dict[str, ExperimentResult] = {}
        pool = None
        rebuilds = 0
        used_processes = False

        # Store pre-pass: hit cells never enter the queue at all.
        if self.store is not None:
            for cell_id in list(pending):
                payload = self.store.get(self.store_key(pending[cell_id].cell))
                if payload is None:
                    continue
                try:
                    result = ExperimentResult.from_dict(payload)
                except (KeyError, TypeError, ValueError):
                    continue
                entry = pending.pop(cell_id)
                fresh[cell_id] = result
                self.stats.store_hits += 1
                journal.record(entry.cell.cell_id, "ok", attempts=0, elapsed_s=0.0, result=payload)

        serial = self.workers <= 1
        try:
            with deliver_sigterm_as_interrupt():
                while pending or inflight:
                    if not serial and pool is None:
                        try:
                            pool = self.executor_factory(max_workers=self.workers)
                            used_processes = True
                        except (OSError, RuntimeError) as exc:
                            journal.note("pool_unavailable", error=repr(exc))
                            serial = True
                    if serial:
                        self._drain_serial(journal, pending, fresh)
                        break
                    try:
                        # Both submitting into a broken pool and harvesting a
                        # dead worker's future raise BrokenProcessPool; the
                        # kill can land between polls, so dispatch needs the
                        # same collapse handling as the harvest.
                        self._dispatch_ready(pool, board, journal, pending, inflight)
                        self._poll_inflight(journal, pending, inflight, fresh)
                    except process.BrokenProcessPool as exc:
                        rebuilds += 1
                        self.stats.pool_rebuilds += 1
                        metrics.inc("service.pool_rebuilds")
                        self._reclaim_all(journal, pending, inflight, exc)
                        self._abandon_pool(pool)
                        pool = None
                        if rebuilds > self.max_pool_rebuilds:
                            journal.note("degrade_serial", rebuilds=rebuilds)
                            self.stats.degraded_serial = True
                            metrics.inc("service.degraded_serial")
                            serial = True
                        continue
                    self._renew_from_heartbeats(board, inflight)
                    self._steal_expired(journal, pending, inflight)
                    self._reap_abandoned(journal)
                    if pending or inflight:
                        self._sleep(self.poll_interval)
        except KeyboardInterrupt:
            journal.note("interrupted", inflight=len(inflight), pending=len(pending))
            journal.flush()
            journal.close()
            if pool is not None:
                self._abandon_pool(pool)
            raise
        finally:
            if board is not None:
                for cell_id in list(self._epochs):
                    board.clear(cell_id)

        if pool is not None:
            pool.shutdown(wait=True)
        self.stats.lease = self.leases.stats.to_dict()
        journal.note("service_done", **self.stats.to_dict())
        report = build_report(
            self.spec, journal, restored, fresh, resumed=resumed,
            executed=len(cells), used_processes=used_processes,
            store_hits=self.stats.store_hits,
        )
        journal.close()
        return report

    # ------------------------------------------------------------------
    # Loop pieces
    # ------------------------------------------------------------------
    @staticmethod
    def _abandon_pool(pool) -> None:
        """Tear down an executor we are done with, without blocking on corpses.

        A SIGKILLed worker can die holding the shared call-queue lock,
        leaving its siblings deadlocked inside ``call_queue.get``; a plain
        ``shutdown`` would then hang (or leak the deadlocked processes past
        interpreter exit). The pool is already broken or being discarded, so
        no result can be lost: kill the survivors first, then shut down
        without waiting.
        """
        for proc in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                proc.kill()
            except (AttributeError, OSError):
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except TypeError:  # executors without cancel_futures
            pool.shutdown(wait=False)

    def _next_tag(self) -> str:
        self._dispatch_counter += 1
        return f"d{self._dispatch_counter}"

    def _dispatch_ready(self, pool, board, journal, pending, inflight) -> None:
        """Submit every dispatchable pending cell to a free worker slot."""
        now = self.clock.now()
        for cell_id in list(pending):
            if len(inflight) >= self.workers:
                return
            entry = pending[cell_id]
            if entry.not_before > now:
                continue
            tag = self._next_tag()
            epoch = self._epochs.get(cell_id, 0) + 1
            self._epochs[cell_id] = epoch
            self.leases.claim(cell_id, owner=tag)
            if board is not None:
                board.beat(cell_id, tag)  # dispatch counts as the first beat
            try:
                future = pool.submit(
                    _service_cell_worker,
                    entry.cell,
                    self.machine,
                    self.spec.max_instructions,
                    self.spec.threshold,
                    self.spec.scale,
                    self._heartbeat_dir,
                    tag,
                    self.lease_duration * BEAT_FRACTION,
                    self.store.root if self.store is not None else None,
                    self.store_key(entry.cell) if self.store is not None else None,
                )
            except Exception:
                # The cell never left pending; free its lease so the
                # re-dispatch after pool recovery can claim it again.
                self.leases.release(cell_id)
                raise
            del pending[cell_id]
            inflight[cell_id] = _Dispatch(
                cell=entry.cell, future=future, epoch=epoch, worker_tag=tag,
                started=now, attempts=entry.attempts + 1,
            )
            # Carry the retry context through the dispatch record.
            inflight[cell_id].pending = entry  # type: ignore[attr-defined]
            self.stats.dispatched += 1
            get_metrics().inc("service.dispatches")
            journal.note("dispatch", cell=cell_id, worker=tag, epoch=epoch, attempt=entry.attempts + 1)

    def _poll_inflight(self, journal, pending, inflight, fresh) -> None:
        """Harvest completed futures; raise ``BrokenProcessPool`` upward."""
        for cell_id in list(inflight):
            dispatch = inflight[cell_id]
            future = dispatch.future
            if not future.done():
                continue
            del inflight[cell_id]
            if self._epochs.get(cell_id) != dispatch.epoch:
                # A steal already re-dispatched this cell; this result is
                # from a superseded epoch and must not double-commit.
                self._discard_stale(journal, dispatch)
                continue
            try:
                outcome = future.result()
            except process.BrokenProcessPool:
                inflight[cell_id] = dispatch  # reclaimed by the rebuild path
                raise
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                self.leases.release(cell_id)
                self._handle_failure(journal, pending, dispatch, exc)
                continue
            self.leases.release(cell_id)
            self._commit_outcome(journal, fresh, dispatch, outcome, pending=pending)

    def _commit_outcome(self, journal, fresh, dispatch: _Dispatch, outcome, pending=None) -> None:
        cell = dispatch.cell
        if isinstance(outcome, tuple) and len(outcome) == 2:
            origin, value = outcome
        else:  # plain result (chaos executors may skip the worker wrapper)
            origin, value = "ran", outcome
        if origin == "store":
            try:
                result = ExperimentResult.from_dict(value)
            except (KeyError, TypeError, ValueError):
                # Corrupt hit surfaced by a worker: treat as transient miss
                # and re-run rather than committing garbage.
                self._handle_failure(
                    journal, pending if pending is not None else {}, dispatch,
                    WorkerCrashed("store payload undecodable"),
                )
                return
            self.stats.store_hits += 1
        else:
            result = value
        payload = result.to_dict() if hasattr(result, "to_dict") else None
        elapsed = self.clock.now() - dispatch.started
        journal.record(cell.cell_id, "ok", attempts=dispatch.attempts, elapsed_s=elapsed, result=payload)
        fresh[cell.cell_id] = result
        self.stats.completed += 1
        if self.store is not None and origin == "ran" and payload is not None:
            try:
                self.store.put(self.store_key(cell), payload, cell_id=cell.cell_id)
            except OSError:
                pass

    def _handle_failure(self, journal, pending, dispatch: _Dispatch, exc: Exception) -> None:
        """Route one failed attempt through the taxonomy: retry or commit."""
        cell = dispatch.cell
        kind = classify_failure(exc)
        prior: _Pending = getattr(dispatch, "pending", None) or _Pending(cell=cell)
        if kind == DETERMINISTIC:
            self._commit_failure(journal, dispatch, f"{exc!r}", kind, timed_out=is_timeout(exc))
            return
        if prior.schedule is None:
            prior.schedule = list(
                backoff_delays(
                    self.retries,
                    seed=(cell.workload, cell.config, cell.recovery),
                    deadline=self.retry_deadline,
                )
            )
            prior.first_error = f"{exc!r}"
        if dispatch.attempts > len(prior.schedule):
            message = (
                f"first: {prior.first_error}; retry: {exc!r}"
                if prior.first_error and prior.first_error != f"{exc!r}"
                else f"{exc!r}"
            )
            self._commit_failure(journal, dispatch, message, kind, timed_out=is_timeout(exc))
            return
        delay = prior.schedule[dispatch.attempts - 1]
        prior.attempts = dispatch.attempts
        prior.not_before = self.clock.now() + delay
        pending[cell.cell_id] = prior
        get_metrics().inc("service.redispatches")
        journal.note(
            "redispatch_scheduled", cell=cell.cell_id, attempt=dispatch.attempts,
            delay_s=round(delay, 6), error=repr(exc),
        )

    def _commit_failure(self, journal, dispatch: _Dispatch, message, kind, timed_out=False) -> None:
        status = "timeout" if timed_out else "failed"
        elapsed = self.clock.now() - dispatch.started
        journal.record(
            dispatch.cell.cell_id, status, attempts=dispatch.attempts,
            elapsed_s=elapsed, error=message, error_kind=kind,
        )
        self.stats.completed += 1

    def _renew_from_heartbeats(self, board, inflight) -> None:
        if board is None:
            return
        for cell_id, dispatch in inflight.items():
            beat = board.last_beat(cell_id)
            if beat is None:
                continue
            worker, at = beat
            lease = self.leases.active().get(cell_id)
            if lease is None or worker != lease.owner:
                continue  # a superseded worker's beat never renews the new lease
            if at > lease.renewed_at:
                self.leases.renew(cell_id, owner=worker, at=at)

    def _steal_expired(self, journal, pending, inflight) -> None:
        """Reclaim every expired lease and requeue its cell (work stealing).

        Also enforces the hard per-cell wall-clock cap: a worker that keeps
        heartbeating while livelocked still loses its cell at
        ``cell_timeout``.
        """
        now = self.clock.now()
        expired = {lease.cell_id for lease in self.leases.expired_leases()}
        for cell_id in list(inflight):
            dispatch = inflight[cell_id]
            timed_out = now - dispatch.started > self.cell_timeout
            if cell_id not in expired and not timed_out:
                continue
            self.leases.reclaim(cell_id)
            del inflight[cell_id]
            self._epochs[cell_id] = self._epochs.get(cell_id, 0) + 1  # invalidate late results
            self._abandoned.append(dispatch)
            self.stats.steals += 1
            get_metrics().inc("service.steals")
            journal.note(
                "lease_stolen", cell=cell_id, worker=dispatch.worker_tag,
                epoch=dispatch.epoch, timed_out=timed_out,
            )
            error: Exception = (
                TimeoutError(f"cell exceeded {self.cell_timeout:.1f}s wall-clock cap")
                if timed_out
                else LeaseExpired(
                    f"worker {dispatch.worker_tag!r} stopped heartbeating on {cell_id!r}"
                )
            )
            self._handle_failure(journal, pending, dispatch, error)

    def _reclaim_all(self, journal, pending, inflight, cause: Exception) -> None:
        """Pool collapse: every in-flight lease is reclaimed and requeued."""
        journal.note("pool_broken", inflight=len(inflight), error=repr(cause))
        for cell_id in list(inflight):
            dispatch = inflight.pop(cell_id)
            if cell_id in self.leases:
                self.leases.reclaim(cell_id)
            self._epochs[cell_id] = self._epochs.get(cell_id, 0) + 1
            self._handle_failure(
                journal, pending, dispatch,
                WorkerCrashed(f"pool broken while running {cell_id!r}: {cause!r}"),
            )

    def _discard_stale(self, journal, dispatch: _Dispatch) -> None:
        self.stats.stale_results_discarded += 1
        get_metrics().inc("service.stale_discards")
        journal.note(
            "stale_result_discarded", cell=dispatch.cell.cell_id,
            worker=dispatch.worker_tag, epoch=dispatch.epoch,
        )

    def _reap_abandoned(self, journal) -> None:
        """Drain completed futures from stolen dispatches (discard-only)."""
        still_open: List[_Dispatch] = []
        for dispatch in self._abandoned:
            try:
                done = dispatch.future.done()
            except Exception:
                done = True
            if done:
                self._discard_stale(journal, dispatch)
            else:
                still_open.append(dispatch)
        self._abandoned = still_open

    # ------------------------------------------------------------------
    # Serial degradation
    # ------------------------------------------------------------------
    def _drain_serial(self, journal, pending, fresh) -> None:
        """Run every remaining cell in the supervisor process (pool collapsed).

        Cells requeued by transient failures re-enter ``pending`` and are
        picked up by the same loop, so serial mode still honours the retry
        schedule before reaching a terminal state for every cell.
        """
        while pending:
            cell_id = next(iter(pending))
            entry = pending.pop(cell_id)
            wait = entry.not_before - self.clock.now()
            if wait > 0:
                self._sleep(wait)
            started = self.clock.now()
            dispatch = _Dispatch(
                cell=entry.cell, future=None, epoch=self._epochs.get(cell_id, 0) + 1,
                worker_tag="serial", started=started, attempts=entry.attempts + 1,
            )
            dispatch.pending = entry  # type: ignore[attr-defined]
            try:
                if self.store is not None:
                    payload = self.store.get(self.store_key(entry.cell))
                    if payload is not None:
                        self._commit_outcome(journal, fresh, dispatch, ("store", payload), pending=pending)
                        continue
                result = _run_cell(
                    entry.cell, self.machine, self.spec.max_instructions,
                    self.spec.threshold, self.spec.scale,
                )
            except KeyboardInterrupt:
                pending[cell_id] = entry  # still pending for the resume
                raise
            except Exception as exc:
                self._handle_failure(journal, pending, dispatch, exc)
                continue
            self._commit_outcome(journal, fresh, dispatch, ("ran", result))


# ----------------------------------------------------------------------
# Functional entry points (mirror run_campaign / resume_campaign)
# ----------------------------------------------------------------------
def run_service_campaign(
    spec: CampaignSpec,
    out_dir: str,
    run_id: Optional[str] = None,
    workers: Optional[int] = None,
    store: Optional[ResultStore] = None,
    **kwargs,
) -> CampaignReport:
    """Run one campaign under supervision (leases, stealing, shared store)."""
    supervisor = CampaignSupervisor(spec, out_dir, workers=workers, store=store, **kwargs)
    return supervisor.run(run_id=run_id)


def resume_service_campaign(
    out_dir: str,
    run_id: str,
    spec: Optional[CampaignSpec] = None,
    workers: Optional[int] = None,
    store: Optional[ResultStore] = None,
    **kwargs,
) -> CampaignReport:
    """Resume a supervised campaign after supervisor death or interrupt.

    With no ``spec`` the grid is reconstructed from the journal header, so a
    restarted service needs nothing but the run id; a caller-supplied spec is
    verified against the header fingerprint (and rejected on drift) exactly
    like the in-process resume path.
    """
    if spec is None:
        journal = RunJournal.find(out_dir, run_id)
        try:
            spec = CampaignSpec.from_config(journal.config)
        finally:
            journal.close()
    supervisor = CampaignSupervisor(spec, out_dir, workers=workers, store=store, **kwargs)
    return supervisor.resume(run_id)
