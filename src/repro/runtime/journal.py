"""Durable append-only run journal: the checkpoint substrate for campaigns.

One campaign run = one JSONL file, ``<out_dir>/<run_id>.journal.jsonl``:

* **Line 1 — header.**  Schema-versioned (``repro-journal/1``), carrying the
  run id, creation time, the full campaign config, a SHA-256 **fingerprint**
  of that config, and the ordered cell-id list.  Written atomically
  (temp + rename, :mod:`repro.runtime.atomic`), so a journal either exists
  complete or not at all.
* **Lines 2.. — cell records.**  One JSON object per state change:
  ``{"type": "cell", "id": ..., "status": "ok|failed|timeout|skipped|pending",
  "attempts": n, "elapsed_s": t, "error": ..., "error_kind":
  "transient|deterministic", "result": {...}}``.  Each *committed* record is
  flushed and fsynced before the campaign moves on, so a SIGKILL loses at
  most the cell in flight.  ``ok`` records embed the serialized
  :class:`~repro.core.experiment.ExperimentResult`, which is what makes
  resume free: completed cells are *restored*, never re-run.

Crash model: an interrupted append leaves a torn **final** line.
:meth:`RunJournal.open` tolerates exactly that (the torn line is dropped and
reported via :attr:`RunJournal.torn_tail`); a torn line anywhere *else* means
real corruption and raises :class:`JournalError`.  The last record per cell
wins, so re-executing a previously failed cell simply appends its new state.

Resume contract: :func:`RunJournal.open` + :meth:`RunJournal.verify_config`
check the stored fingerprint against the resuming campaign's config — a
journal from a different grid (other workloads, budgets, thresholds) is
rejected instead of silently merging incompatible cells.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from collections import Counter
from typing import Dict, IO, Iterable, List, Optional, Sequence

from .atomic import atomic_write_text
from .errors import CampaignError

#: Schema tag written into every journal header.
JOURNAL_SCHEMA = "repro-journal/1"

#: The journal cell-status vocabulary.
OK = "ok"
FAILED = "failed"
TIMEOUT = "timeout"
SKIPPED = "skipped"
PENDING = "pending"
STATUSES = (OK, FAILED, TIMEOUT, SKIPPED, PENDING)

#: Statuses a resume re-executes (everything that is not a committed result).
RERUN_STATUSES = (FAILED, TIMEOUT, SKIPPED, PENDING)


class JournalError(CampaignError):
    """Malformed journal, schema/fingerprint mismatch, or unknown run id."""


def config_fingerprint(config: Dict[str, object]) -> str:
    """SHA-256 over the canonical JSON encoding of a campaign config."""
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def new_run_id() -> str:
    """A fresh, filesystem-safe run id (UTC timestamp + random suffix)."""
    return time.strftime("%Y%m%dT%H%M%SZ", time.gmtime()) + "-" + os.urandom(3).hex()


def journal_path(out_dir: str, run_id: str) -> str:
    """Canonical journal location for a run id."""
    return os.path.join(out_dir, f"{run_id}.journal.jsonl")


def list_run_ids(out_dir: str) -> List[str]:
    """Run ids with a journal in ``out_dir`` (newest last, by name)."""
    try:
        names = sorted(os.listdir(out_dir))
    except OSError:
        return []
    suffix = ".journal.jsonl"
    return [name[: -len(suffix)] for name in names if name.endswith(suffix)]


class RunJournal:
    """One campaign's append-only state, already durable on every commit."""

    def __init__(self, path: str, header: Dict[str, object]) -> None:
        self.path = path
        self.header = header
        self.torn_tail = False
        self._states: Dict[str, Dict[str, object]] = {}
        self._events: List[Dict[str, object]] = []
        self._fh: Optional[IO[str]] = None
        #: Byte length of the valid prefix when a torn tail was detected;
        #: the file is truncated to this before the first new append, so a
        #: resume never writes after a partial line (which would corrupt
        #: the record boundary permanently).
        self._truncate_to: Optional[int] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        out_dir: str,
        run_id: str,
        config: Dict[str, object],
        cells: Sequence[str],
    ) -> "RunJournal":
        """Start a new journal; refuses to overwrite an existing run id."""
        from .atomic import ensure_durable_directory

        # A freshly created out_dir must itself survive a crash: every new
        # directory entry on the path is fsynced in its parent, or the
        # journal could vanish with the directory after power loss.
        ensure_durable_directory(out_dir)
        path = journal_path(out_dir, run_id)
        if os.path.exists(path):
            raise JournalError(f"run id {run_id!r} already exists at {path}")
        header = {
            "type": "header",
            "schema": JOURNAL_SCHEMA,
            "run_id": run_id,
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "fingerprint": config_fingerprint(config),
            "config": config,
            "cells": list(cells),
        }
        atomic_write_text(path, json.dumps(header, sort_keys=True) + "\n")
        return cls(path, header)

    @classmethod
    def open(cls, path: str) -> "RunJournal":
        """Replay an existing journal, tolerating a torn final line."""
        try:
            with open(path, "r") as handle:
                raw = handle.read()
        except OSError as exc:
            raise JournalError(f"cannot open journal {path}: {exc}") from exc
        lines = raw.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        if not lines:
            raise JournalError(f"{path}: empty journal (no header)")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise JournalError(f"{path}: unreadable header: {exc}") from exc
        if header.get("type") != "header" or header.get("schema") != JOURNAL_SCHEMA:
            raise JournalError(
                f"{path}: not a {JOURNAL_SCHEMA} journal (schema={header.get('schema')!r})"
            )
        journal = cls(path, header)
        for index, line in enumerate(lines[1:], start=2):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if index == len(lines):
                    # A SIGKILL mid-append leaves exactly one torn final line;
                    # the cell it described was never committed, so drop it
                    # (and chop it off before any future append).
                    journal.torn_tail = True
                    journal._truncate_to = len(raw.encode("utf-8")) - len(line.encode("utf-8"))
                    break
                raise JournalError(f"{path}: corrupt record at line {index}") from None
            if record.get("type") == "cell" and "id" in record:
                journal._states[str(record["id"])] = record
            elif record.get("type") == "event":
                journal._events.append(record)
        return journal

    @classmethod
    def find(cls, out_dir: str, run_id: str) -> "RunJournal":
        """Open the journal for ``run_id`` under ``out_dir``."""
        path = journal_path(out_dir, run_id)
        if not os.path.exists(path):
            known = ", ".join(list_run_ids(out_dir)) or "none"
            raise JournalError(
                f"no journal for run id {run_id!r} in {out_dir} (known runs: {known})"
            )
        return cls.open(path)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def _verify_header_on_disk(self) -> None:
        """Refuse to append if the on-disk header is no longer ours.

        A resume replays the journal, then appends; if another process (or a
        stray editor) rewrote line 1 in between, appending would attach our
        cell records to a *different* run's identity — silent corruption.
        Checked once per append-handle open, i.e. exactly at the
        replay→append transition the race targets.
        """
        try:
            with open(self.path, "r") as handle:
                first = handle.readline()
        except OSError as exc:
            raise JournalError(f"cannot re-read journal header {self.path}: {exc}") from exc
        try:
            on_disk = json.loads(first)
        except json.JSONDecodeError as exc:
            raise JournalError(
                f"{self.path}: header was rewritten underneath an active resume and is "
                f"no longer valid JSON ({exc}); refusing to append — restore the journal "
                f"from a backup or start a new run"
            ) from exc
        for field in ("run_id", "fingerprint"):
            if on_disk.get(field) != self.header.get(field):
                raise JournalError(
                    f"{self.path}: header {field} changed underneath an active resume "
                    f"(journal opened with {self.header.get(field)!r}, disk now has "
                    f"{on_disk.get(field)!r}); refusing to append to a journal that no "
                    f"longer describes this run"
                )

    def _handle(self) -> IO[str]:
        if self._fh is None:
            self._verify_header_on_disk()
            if self._truncate_to is not None:
                os.truncate(self.path, self._truncate_to)
                self._truncate_to = None
            self._fh = open(self.path, "a")
        return self._fh

    def record(
        self,
        cell_id: str,
        status: str,
        attempts: int = 1,
        elapsed_s: Optional[float] = None,
        error: Optional[str] = None,
        error_kind: Optional[str] = None,
        result: Optional[Dict[str, object]] = None,
        fsync: bool = True,
    ) -> Dict[str, object]:
        """Append one cell state change; fsynced before returning by default."""
        if status not in STATUSES:
            raise ValueError(f"unknown cell status {status!r}; choose from {STATUSES}")
        entry: Dict[str, object] = {"type": "cell", "id": cell_id, "status": status, "attempts": attempts}
        if elapsed_s is not None:
            entry["elapsed_s"] = round(elapsed_s, 6)
        if error is not None:
            entry["error"] = error
        if error_kind is not None:
            entry["error_kind"] = error_kind
        if result is not None:
            entry["result"] = result
        handle = self._handle()
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
        self._states[cell_id] = entry
        return entry

    def note(self, event: str, fsync: bool = False, **fields: object) -> Dict[str, object]:
        """Append a supervisor *event* record (lease steal, pool rebuild, ...).

        Events are observability, not cell state: replay ignores every
        record whose ``type`` is not ``cell``, so notes never change what a
        resume restores or re-executes.  They are flushed (ordering with the
        surrounding cell commits is preserved) but not fsynced by default.
        """
        entry: Dict[str, object] = {"type": "event", "event": event, **fields}
        handle = self._handle()
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
        return entry

    def events(self) -> List[Dict[str, object]]:
        """Replayed event records, in append order (never affects resume)."""
        return list(self._events)

    def mark_pending(self, cell_ids: Iterable[str]) -> None:
        """Batch-record ``pending`` for cells about to execute (single fsync)."""
        cell_ids = [cid for cid in cell_ids if self._states.get(cid, {}).get("status") != OK]
        for cell_id in cell_ids[:-1]:
            self.record(cell_id, PENDING, fsync=False)
        if cell_ids:
            self.record(cell_ids[-1], PENDING, fsync=True)

    def flush(self) -> None:
        """Flush + fsync any buffered appends (interrupt path)."""
        if self._fh is not None:
            self._fh.flush()
            try:
                os.fsync(self._fh.fileno())
            except OSError:
                pass

    def close(self) -> None:
        self.flush()
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Replay / inspection
    # ------------------------------------------------------------------
    @property
    def run_id(self) -> str:
        return str(self.header.get("run_id"))

    @property
    def config(self) -> Dict[str, object]:
        return dict(self.header.get("config") or {})

    @property
    def cells(self) -> List[str]:
        return list(self.header.get("cells") or [])

    def states(self) -> Dict[str, Dict[str, object]]:
        """Latest record per cell id (last writer wins)."""
        return dict(self._states)

    def status_of(self, cell_id: str) -> Optional[str]:
        entry = self._states.get(cell_id)
        return str(entry["status"]) if entry else None

    def counts(self) -> Counter:
        """Cells per status; header cells never touched count as ``pending``."""
        tally: Counter = Counter()
        for cell_id in self.cells:
            entry = self._states.get(cell_id)
            tally[str(entry["status"]) if entry else PENDING] += 1
        for cell_id, entry in self._states.items():
            if cell_id not in self.header.get("cells", ()):
                tally[str(entry["status"])] += 1
        return tally

    def pending_cells(self) -> List[str]:
        """Header cells a resume must (re-)execute, in campaign order."""
        return [
            cell_id
            for cell_id in self.cells
            if (self._states.get(cell_id) or {}).get("status") != OK
        ]

    def verify_config(self, config: Dict[str, object]) -> None:
        """Raise unless ``config`` fingerprints to the header's fingerprint."""
        expected = self.header.get("fingerprint")
        actual = config_fingerprint(config)
        if expected != actual:
            raise JournalError(
                f"config fingerprint mismatch for run {self.run_id!r}: journal has "
                f"{expected}, resuming campaign computes {actual} — the campaign "
                "grid changed; start a new run instead of resuming"
            )
