"""Liveness primitives for the campaign service: clocks, heartbeats, leases.

The supervisor (:mod:`repro.runtime.service`) never trusts a worker to be
alive — it requires *proof of liveness* per claimed cell, renewed on a
deadline.  Three cooperating pieces:

Clocks
    Every time comparison in the service layer goes through an injectable
    clock.  Production uses :class:`MonotonicClock`; the chaos harness
    (:mod:`repro.testing.faults`) uses :class:`ManualClock`, which only moves
    when the test advances it — so lease-expiry races are *scripted*, never
    raced against the wall clock, and every recovery path replays
    deterministically.

Heartbeats
    A :class:`HeartbeatBoard` is the one-way channel from workers to the
    supervisor: ``beat(cell_id, worker)`` publishes "worker W is still
    making progress on cell C at time T".  :class:`FileHeartbeatBoard` backs
    it with one tiny file per cell so real pool workers (separate processes)
    can publish across the process boundary; the in-memory base class serves
    the deterministic chaos tests.

Leases
    A :class:`Lease` is the supervisor-side claim record: worker W owns cell
    C until ``deadline``.  Fresh heartbeats renew the lease; a lease whose
    deadline passes without a renewal is *expired* — the worker is presumed
    dead or wedged — and :meth:`LeaseTable.reclaim` hands the cell back for
    re-dispatch to a surviving worker (work stealing).  The table keeps
    running stats (claims / renewals / expirations / reclaims) that the
    supervisor journals and the chaos tests assert.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .errors import CampaignError

#: Default lease duration (seconds) when the caller does not derive one from
#: the cell budget.  Long enough for a real profiling pass, short enough that
#: a SIGSTOPped worker is detected within a coffee-sip.
DEFAULT_LEASE_DURATION = 30.0


class LeaseError(CampaignError):
    """A lease-protocol violation (double claim, renewing an unheld lease)."""


# ----------------------------------------------------------------------
# Clocks
# ----------------------------------------------------------------------
class MonotonicClock:
    """Wall-clock-free production time source (``time.monotonic``)."""

    def now(self) -> float:
        return time.monotonic()


class ManualClock:
    """A clock that moves only when told to — the chaos tests' time source."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("clocks do not run backwards")
        self._now += seconds
        return self._now


# ----------------------------------------------------------------------
# Heartbeats
# ----------------------------------------------------------------------
class HeartbeatBoard:
    """In-memory heartbeat channel: cell id -> (worker, last beat time)."""

    def __init__(self, clock: Optional[MonotonicClock] = None) -> None:
        self.clock = clock if clock is not None else MonotonicClock()
        self._beats: Dict[str, Tuple[str, float]] = {}

    def beat(self, cell_id: str, worker: str) -> None:
        self._beats[cell_id] = (worker, self.clock.now())

    def last_beat(self, cell_id: str) -> Optional[Tuple[str, float]]:
        return self._beats.get(cell_id)

    def clear(self, cell_id: str) -> None:
        self._beats.pop(cell_id, None)


def _cell_file_name(cell_id: str) -> str:
    """A filesystem-safe file name for one cell's heartbeat file."""
    return cell_id.replace("/", "__") + ".hb"


class FileHeartbeatBoard(HeartbeatBoard):
    """Heartbeats as files: workers in *other processes* publish liveness.

    One file per cell under ``directory``; a beat rewrites the file with the
    worker name and the publishing side's clock reading.  The supervisor
    reads the payload back rather than trusting mtimes (mtime granularity
    and clock domains differ across filesystems).  Beats are advisory
    liveness traffic, not state — they are not fsynced, and a torn beat file
    simply reads as "no beat yet".
    """

    def __init__(self, directory: str, clock: Optional[MonotonicClock] = None) -> None:
        super().__init__(clock)
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, cell_id: str) -> str:
        return os.path.join(self.directory, _cell_file_name(cell_id))

    def beat(self, cell_id: str, worker: str) -> None:
        payload = f"{worker} {self.clock.now():.6f}\n"
        try:
            with open(self._path(cell_id), "w") as handle:
                handle.write(payload)
        except OSError:
            # A failed beat is indistinguishable from a missed one; the
            # lease protocol treats both as evidence of trouble.
            pass

    def last_beat(self, cell_id: str) -> Optional[Tuple[str, float]]:
        try:
            with open(self._path(cell_id), "r") as handle:
                text = handle.read()
        except OSError:
            return None
        parts = text.split()
        if len(parts) != 2:
            return None  # torn write: no usable beat
        try:
            return parts[0], float(parts[1])
        except ValueError:
            return None

    def clear(self, cell_id: str) -> None:
        try:
            os.unlink(self._path(cell_id))
        except OSError:
            pass


# ----------------------------------------------------------------------
# Leases
# ----------------------------------------------------------------------
@dataclass
class Lease:
    """One worker's renewable claim on one cell."""

    cell_id: str
    owner: str
    granted_at: float
    duration: float
    renewed_at: float = 0.0
    renewals: int = 0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("lease duration must be positive")
        if not self.renewed_at:
            self.renewed_at = self.granted_at

    @property
    def deadline(self) -> float:
        return self.renewed_at + self.duration

    def expired(self, now: float) -> bool:
        return now > self.deadline


@dataclass
class LeaseStats:
    """Lifetime lease-protocol counters for one supervisor run."""

    claims: int = 0
    renewals: int = 0
    expirations: int = 0
    reclaims: int = 0
    releases: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "claims": self.claims,
            "renewals": self.renewals,
            "expirations": self.expirations,
            "reclaims": self.reclaims,
            "releases": self.releases,
        }


class LeaseTable:
    """The supervisor's authoritative map of who owns which cell until when."""

    def __init__(
        self,
        duration: float = DEFAULT_LEASE_DURATION,
        clock: Optional[MonotonicClock] = None,
    ) -> None:
        if duration <= 0:
            raise ValueError("lease duration must be positive")
        self.duration = duration
        self.clock = clock if clock is not None else MonotonicClock()
        self.stats = LeaseStats()
        self._leases: Dict[str, Lease] = {}

    # -- protocol -------------------------------------------------------
    def claim(self, cell_id: str, owner: str) -> Lease:
        """Grant ``owner`` a fresh lease on ``cell_id``.

        An *expired* prior lease is silently superseded (that is the steal);
        an unexpired one held by a different owner is a protocol violation —
        two workers must never both believe they own a cell.
        """
        now = self.clock.now()
        current = self._leases.get(cell_id)
        if current is not None and not current.expired(now) and current.owner != owner:
            raise LeaseError(
                f"cell {cell_id!r} is leased to {current.owner!r} until "
                f"{current.deadline:.3f} (now {now:.3f}); reclaim it first"
            )
        lease = Lease(cell_id=cell_id, owner=owner, granted_at=now, duration=self.duration)
        self._leases[cell_id] = lease
        self.stats.claims += 1
        return lease

    def renew(self, cell_id: str, owner: Optional[str] = None, at: Optional[float] = None) -> Lease:
        """Extend a held lease (a heartbeat arrived).  Owner must match."""
        lease = self._leases.get(cell_id)
        if lease is None:
            raise LeaseError(f"cell {cell_id!r} has no lease to renew")
        if owner is not None and lease.owner != owner:
            raise LeaseError(
                f"cell {cell_id!r} is leased to {lease.owner!r}, not {owner!r}"
            )
        lease.renewed_at = self.clock.now() if at is None else max(lease.renewed_at, at)
        lease.renewals += 1
        self.stats.renewals += 1
        return lease

    def release(self, cell_id: str) -> None:
        """Drop a lease on normal completion (ok or terminal failure)."""
        if self._leases.pop(cell_id, None) is not None:
            self.stats.releases += 1

    def expired_leases(self) -> List[Lease]:
        """Leases past their deadline right now (candidates for stealing)."""
        now = self.clock.now()
        stale = [lease for lease in self._leases.values() if lease.expired(now)]
        return sorted(stale, key=lambda lease: lease.cell_id)

    def reclaim(self, cell_id: str) -> Lease:
        """Take an expired (or orphaned) lease back for re-dispatch."""
        lease = self._leases.pop(cell_id, None)
        if lease is None:
            raise LeaseError(f"cell {cell_id!r} has no lease to reclaim")
        if lease.expired(self.clock.now()):
            self.stats.expirations += 1
        self.stats.reclaims += 1
        return lease

    # -- inspection -----------------------------------------------------
    def holder(self, cell_id: str) -> Optional[str]:
        lease = self._leases.get(cell_id)
        return lease.owner if lease is not None else None

    def active(self) -> Dict[str, Lease]:
        return dict(self._leases)

    def __len__(self) -> int:
        return len(self._leases)

    def __contains__(self, cell_id: str) -> bool:
        return cell_id in self._leases
