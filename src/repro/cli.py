"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``      Run one or more configurations on a workload and print a table::

                 python -m repro run --workload m88ksim \\
                     --config no_predict lvp_all drvp_all_dead

``suite``    Run configurations across all nine workloads (a figure row),
             optionally fanned out over worker processes::

                 python -m repro suite --config no_predict lvp_all drvp_all_dead_lv --jobs 4

``metrics``  Run configurations, then emit results + execution metrics
             (session-cache hit rates, sim wall time, pool utilization) as
             structured JSON::

                 python -m repro metrics --workload m88ksim --config no_predict drvp_all

``profile``  Show a workload's register-reuse profile and the four lists::

                 python -m repro profile --workload li --threshold 0.8

``realloc``  Run the Section 7.3 reallocator and show the rewritten
             instructions::

                 python -m repro realloc --workload mgrid

``list``     List available workloads and configuration names.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from .core.experiment import CONFIG_NAMES, ExperimentRunner
from .core.results import ResultTable, render_metrics
from .core.session import ParallelSuiteRunner
from .uarch.config import aggressive_config, table1_config
from .uarch.recovery import RecoveryScheme
from .workloads.suite import WORKLOAD_CLASSES


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--max-insts", type=int, default=40_000, help="committed-instruction budget per run")
    parser.add_argument("--threshold", type=float, default=0.8, help="profile predictability threshold")
    parser.add_argument("--wide", action="store_true", help="use the Section 7.4 16-wide machine")
    parser.add_argument(
        "--recovery",
        choices=[s.value for s in RecoveryScheme],
        default="selective",
        help="value-misprediction recovery scheme",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print execution metrics (cache hit rates, sim wall time) as JSON afterwards",
    )


def _maybe_profile(args: argparse.Namespace) -> None:
    if getattr(args, "profile", False):
        print(render_metrics())


def _runner(args: argparse.Namespace, workload: str) -> ExperimentRunner:
    machine = aggressive_config() if args.wide else table1_config()
    return ExperimentRunner(workload, machine=machine, max_instructions=args.max_insts, threshold=args.threshold)


def _cmd_run(args: argparse.Namespace) -> int:
    runner = _runner(args, args.workload)
    table = ResultTable()
    scheme = RecoveryScheme.parse(args.recovery)
    for config in args.config:
        table.add(runner.run(config, recovery=scheme))
    print(table.render_ipc(f"{args.workload} (IPC, {scheme.value} recovery)"))
    if "no_predict" in args.config:
        print(table.render_speedup("speedups"))
    print(table.render_coverage("coverage/accuracy"))
    _maybe_profile(args)
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    table = ResultTable()
    scheme = RecoveryScheme.parse(args.recovery)
    machine = aggressive_config() if args.wide else table1_config()
    if args.jobs > 1:
        runner = ParallelSuiteRunner(
            workloads=tuple(WORKLOAD_CLASSES),
            configs=tuple(args.config),
            recoveries=(scheme,),
            machine=machine,
            max_instructions=args.max_insts,
            threshold=args.threshold,
            jobs=args.jobs,
        )
        report = runner.run()
        for result in report.results:
            table.add(result)
        mode = "processes" if report.used_processes else "serial fallback"
        print(f"  {len(report.results)}/{len(runner.cells)} cells done ({args.jobs} jobs, {mode})")
        for cell, error in report.failures.items():
            print(f"  FAILED {cell.workload}/{cell.config}/{cell.recovery}: {error}")
    else:
        for name in WORKLOAD_CLASSES:
            runner = _runner(args, name)
            for config in args.config:
                table.add(runner.run(config, recovery=scheme))
            print(f"  {name} done")
    print()
    print(table.render_speedup(f"suite speedups ({scheme.value} recovery)"))
    print(table.render_coverage("coverage/accuracy"))
    _maybe_profile(args)
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Run configurations, then emit results + metrics as structured JSON."""
    runner = _runner(args, args.workload)
    table = ResultTable()
    scheme = RecoveryScheme.parse(args.recovery)
    for config in args.config:
        table.add(runner.run(config, recovery=scheme))
    print(table.render_json(include_metrics=True))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    runner = _runner(args, args.workload)
    profile = runner.train_profile()
    lists = runner.profile_lists()
    program = runner.workload.program
    fractions = profile.fig1.fractions()
    print(f"{args.workload}: load reuse (train input) — same {fractions['same']:.1%}, "
          f"dead {fractions['dead']:.1%}, any {fractions['any']:.1%}, any|lvp {fractions['any_or_lvp']:.1%}\n")
    print(f"{'pc':>4s}  {'instruction':30s} {'count':>7s} {'same':>6s} {'lv':>6s}  lists")
    for pc, site in sorted(profile.sites.items()):
        if site.count < 8:
            continue
        tags = [
            name
            for name, member in (
                ("same", pc in lists.same),
                ("dead", pc in lists.dead),
                ("live", pc in lists.live),
                ("lv", pc in lists.last_value),
            )
            if member
        ]
        hint = ""
        if pc in lists.dead:
            hint = f" <- {lists.dead[pc].reg.name}"
        print(
            f"{pc:4d}  {program[pc].render():30s} {site.count:7d} {site.same_rate():6.1%} "
            f"{site.lv_rate():6.1%}  {','.join(tags)}{hint}"
        )
    return 0


def _cmd_realloc(args: argparse.Namespace) -> int:
    runner = _runner(args, args.workload)
    new_program = runner.program_variant("realloc")
    report = runner.realloc_report
    print(f"{args.workload}: dead {report.dead_applied}/{report.dead_attempted} applied, "
          f"lvr {report.lvr_applied}/{report.lvr_attempted} applied")
    changed = 0
    for before, after in zip(runner.workload.program, new_program):
        if before.render() != after.render():
            print(f"  pc {before.pc:3d}:  {before.render():30s} ->  {after.render()}")
            changed += 1
    if not changed:
        print("  (no instructions rewritten)")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    print("workloads:")
    for name, cls in WORKLOAD_CLASSES.items():
        print(f"  {name:10s} [{cls.category}]  {cls.description}")
    print("\nconfigurations:")
    for config in CONFIG_NAMES:
        print(f"  {config}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Storageless Value Prediction Using Prior Register Values (ISCA 1999) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run configurations on one workload")
    run_parser.add_argument("--workload", required=True, choices=sorted(WORKLOAD_CLASSES))
    run_parser.add_argument("--config", nargs="+", default=["no_predict", "lvp_all", "drvp_all_dead_lv"])
    _add_common(run_parser)
    run_parser.set_defaults(fn=_cmd_run)

    suite_parser = sub.add_parser("suite", help="run configurations across all workloads")
    suite_parser.add_argument("--config", nargs="+", default=["no_predict", "lvp_all", "drvp_all_dead_lv"])
    suite_parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes for (workload x config) fan-out (1 = serial)"
    )
    _add_common(suite_parser)
    suite_parser.set_defaults(fn=_cmd_suite)

    metrics_parser = sub.add_parser("metrics", help="run configurations and emit results + metrics JSON")
    metrics_parser.add_argument("--workload", default="m88ksim", choices=sorted(WORKLOAD_CLASSES))
    metrics_parser.add_argument("--config", nargs="+", default=["no_predict", "drvp_all_dead_lv"])
    _add_common(metrics_parser)
    metrics_parser.set_defaults(fn=_cmd_metrics)

    profile_parser = sub.add_parser("profile", help="show a workload's reuse profile")
    profile_parser.add_argument("--workload", required=True, choices=sorted(WORKLOAD_CLASSES))
    _add_common(profile_parser)
    profile_parser.set_defaults(fn=_cmd_profile)

    realloc_parser = sub.add_parser("realloc", help="run the Section 7.3 reallocator")
    realloc_parser.add_argument("--workload", required=True, choices=sorted(WORKLOAD_CLASSES))
    _add_common(realloc_parser)
    realloc_parser.set_defaults(fn=_cmd_realloc)

    list_parser = sub.add_parser("list", help="list workloads and configurations")
    list_parser.set_defaults(fn=_cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # e.g. `python -m repro list | head`
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
